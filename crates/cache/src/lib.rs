//! `tt-cache` — a sharded, bounded, deterministic semantic result
//! cache for tolerance-tier serving.
//!
//! The cache is keyed by a caller-computed *semantic key* (for the
//! serving stack: objective + payload index) and stores, per key, the
//! single best answer seen so far along with the input's bit-exact
//! fingerprint, the answer's **achieved degradation** (quality error
//! beyond the premium baseline, in milli-tolerance units), and the
//! tier it was executed under. The admissibility rule is the paper's
//! tolerance contract turned into a reuse rule:
//!
//! > a lookup hits iff `request.tolerance >= entry.achieved_degradation`,
//! > and a strict (tolerance-0) request only hits an entry whose input
//! > fingerprint is bit-equal **and** whose achieved degradation is 0.
//!
//! Everything is deterministic by construction — the repo's
//! signature. There is no wall clock anywhere: recency is a per-shard
//! logical access tick, TTL (when enabled) is measured in shard
//! accesses, admission is a pure seeded hash of the semantic key, and
//! the per-key replacement policy is *keep-best* — a join-semilattice
//! min over `(achieved, rank, fingerprint)` — so the converged cache
//! state is independent of insert order and thread interleaving.
//!
//! Invalidation is fenced by the cluster's versioned rules epoch:
//! [`SemanticCache::purge_to_epoch`] advances the cache's epoch
//! monotonically and clears every shard exactly once per new epoch.
//! Lookups and inserts carry the caller's epoch and are refused when
//! it differs from the cache's, and each entry is additionally stamped
//! with its insert epoch, so even a racing stale insert can never be
//! served after a purge.
//!
//! The crate is dependency-free (std only) and `forbid(unsafe_code)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning knobs for a [`SemanticCache`]. Every field is part of the
/// deterministic contract: two caches with the same config and the
/// same (serialized) operation sequence hold bit-identical state.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total entry budget across all shards.
    pub capacity: usize,
    /// Number of independent shards (each with its own lock, tick
    /// counter, and `capacity / shards` slice of the budget).
    pub shards: usize,
    /// Seed for the admission hash. Changing it changes *which* keys
    /// are cacheable, never how a cached key behaves.
    pub seed: u64,
    /// Per-mille of semantic keys admitted on insert (1000 = admit
    /// everything). Admission is `hash(seed, key) % 1000 <
    /// admit_permille` — a pure function of the key, so it is
    /// order-independent.
    pub admit_permille: u16,
    /// Optional logical TTL: an entry expires once more than this
    /// many *shard accesses* have happened since it was stored. `None`
    /// disables expiry (entries live until evicted or purged).
    pub ttl_accesses: Option<u64>,
}

impl CacheConfig {
    /// Defaults sized for the demo services: 4096 entries over 8
    /// shards, admit everything, no TTL.
    pub fn defaults() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 8,
            seed: 42,
            admit_permille: 1000,
            ttl_accesses: None,
        }
    }
}

/// Outcome of a [`SemanticCache::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup<V> {
    /// Hit on a bit-equal input fingerprint.
    Exact(V),
    /// Hit on the semantic admissibility rule (tolerance covers the
    /// entry's achieved degradation) with a *different* input.
    Semantic(V),
    /// No admissible entry.
    Miss,
    /// The caller's epoch does not match the cache's — the caller is
    /// fenced (stale rules) and must not be served from cache.
    Stale,
}

/// Outcome of a [`SemanticCache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// The value was stored (fresh key, or it beat the incumbent).
    Stored,
    /// An incumbent entry was at least as good; the insert was folded
    /// into a keep-best no-op (LRU recency still refreshed).
    Kept,
    /// The seeded admission filter excludes this key.
    NotAdmitted,
    /// The caller's epoch does not match the cache's.
    StaleEpoch,
}

/// Counter snapshot for `/stats` and tests. All values are lifetime
/// totals; `entries` and `epoch` are instantaneous.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Current rules epoch the cache is fenced to.
    pub epoch: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Hits on a bit-equal fingerprint.
    pub hits_exact: u64,
    /// Hits via the semantic admissibility rule.
    pub hits_semantic: u64,
    /// Lookups that found no admissible entry.
    pub misses: u64,
    /// Lookups refused because the caller's epoch was stale.
    pub stale_lookups: u64,
    /// Entries dropped by the logical TTL.
    pub expired: u64,
    /// Inserts that stored a value.
    pub inserts: u64,
    /// Inserts folded into keep-best no-ops.
    pub kept: u64,
    /// Inserts refused by the admission filter.
    pub rejected_admission: u64,
    /// Inserts refused because the caller's epoch was stale.
    pub rejected_stale: u64,
    /// Entries evicted by per-shard LRU.
    pub evictions: u64,
    /// Epoch purges that actually cleared the cache.
    pub purges: u64,
}

struct Entry<V> {
    fingerprint: u64,
    achieved_milli: u32,
    executed_tier_milli: u32,
    rank: u64,
    epoch: u64,
    inserted_tick: u64,
    touched_tick: u64,
    value: V,
}

struct Shard<V> {
    entries: BTreeMap<u64, Entry<V>>,
    tick: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            entries: BTreeMap::new(),
            tick: 0,
        }
    }
}

/// The sharded, bounded, epoch-fenced semantic cache. `V` is the
/// stored answer; it must be `Clone` because hits hand out copies.
pub struct SemanticCache<V> {
    config: CacheConfig,
    shards: Vec<Mutex<Shard<V>>>,
    per_shard: usize,
    epoch: AtomicU64,
    hits_exact: AtomicU64,
    hits_semantic: AtomicU64,
    misses: AtomicU64,
    stale_lookups: AtomicU64,
    expired: AtomicU64,
    inserts: AtomicU64,
    kept: AtomicU64,
    rejected_admission: AtomicU64,
    rejected_stale: AtomicU64,
    evictions: AtomicU64,
    purges: AtomicU64,
}

impl<V: Clone> SemanticCache<V> {
    /// Build a cache starting at rules epoch 1 (the epoch every
    /// freshly constructed service and fleet starts from).
    pub fn new(config: CacheConfig) -> Self {
        let shard_count = config.shards.max(1);
        let per_shard = config.capacity.div_ceil(shard_count).max(1);
        SemanticCache {
            shards: (0..shard_count).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard,
            config,
            epoch: AtomicU64::new(1),
            hits_exact: AtomicU64::new(0),
            hits_semantic: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_lookups: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            rejected_admission: AtomicU64::new(0),
            rejected_stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            purges: AtomicU64::new(0),
        }
    }

    /// The epoch this cache is currently fenced to.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advance the fence to `epoch` and clear every shard. Monotonic
    /// and idempotent: calls with an epoch at or below the current one
    /// are no-ops, so every node in a fleet can purge on adopt and
    /// only the first arrival clears. The epoch is published *before*
    /// the shards are cleared; combined with the per-entry epoch
    /// stamp, a concurrent old-epoch insert can land but can never be
    /// served (its stamp no longer matches).
    pub fn purge_to_epoch(&self, epoch: u64) {
        let mut current = self.epoch.load(Ordering::SeqCst);
        loop {
            if epoch <= current {
                return;
            }
            match self
                .epoch
                .compare_exchange(current, epoch, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.entries.clear();
        }
        self.purges.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(mix64(key) as usize) % self.shards.len()]
    }

    /// Does the seeded admission filter accept this key? Pure function
    /// of `(seed, key)`, so the answer is identical on every node and
    /// at any interleaving.
    pub fn admits(&self, key: u64) -> bool {
        u16::try_from(mix64(self.config.seed ^ key) % 1000).expect("mod 1000 fits u16")
            < self.config.admit_permille
    }

    /// Look up `key` for a request at `tolerance_milli` (tolerance ×
    /// 1000, rounded — the same fixed-point the billing matrix keys
    /// use) whose input hashes to `fingerprint`, under the caller's
    /// rules `epoch`.
    pub fn lookup(
        &self,
        key: u64,
        fingerprint: u64,
        tolerance_milli: u32,
        epoch: u64,
    ) -> Lookup<V> {
        if epoch != self.epoch.load(Ordering::SeqCst) {
            self.stale_lookups.fetch_add(1, Ordering::Relaxed);
            return Lookup::Stale;
        }
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let ttl = self.config.ttl_accesses;
        let verdict = match shard.entries.get_mut(&key) {
            None => Lookup::Miss,
            Some(entry) if entry.epoch != epoch => {
                // A pre-purge insert that raced the fence: drop it.
                shard.entries.remove(&key);
                Lookup::Miss
            }
            Some(entry)
                if ttl.is_some_and(|ttl| tick.saturating_sub(entry.inserted_tick) > ttl) =>
            {
                shard.entries.remove(&key);
                self.expired.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
            Some(entry) => {
                let exact = entry.fingerprint == fingerprint;
                let admissible = if tolerance_milli == 0 {
                    // Strict contract: bit-equal input AND an answer
                    // with zero achieved degradation.
                    exact && entry.achieved_milli == 0
                } else {
                    entry.achieved_milli <= tolerance_milli
                };
                if admissible {
                    entry.touched_tick = tick;
                    if exact {
                        Lookup::Exact(entry.value.clone())
                    } else {
                        Lookup::Semantic(entry.value.clone())
                    }
                } else {
                    Lookup::Miss
                }
            }
        };
        match &verdict {
            Lookup::Exact(_) => self.hits_exact.fetch_add(1, Ordering::Relaxed),
            Lookup::Semantic(_) => self.hits_semantic.fetch_add(1, Ordering::Relaxed),
            Lookup::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
            Lookup::Stale => unreachable!("stale handled before shard lock"),
        };
        verdict
    }

    /// Store an answer for `key`. `achieved_milli` is the answer's
    /// degradation beyond the premium baseline, `executed_tier_milli`
    /// the tier it was computed under, and `rank` a caller-supplied
    /// deterministic total order used to break achieved-degradation
    /// ties (lower wins), so permuted insert orders converge to the
    /// same entry.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        key: u64,
        fingerprint: u64,
        achieved_milli: u32,
        executed_tier_milli: u32,
        rank: u64,
        value: V,
        epoch: u64,
    ) -> Inserted {
        if epoch != self.epoch.load(Ordering::SeqCst) {
            self.rejected_stale.fetch_add(1, Ordering::Relaxed);
            return Inserted::StaleEpoch;
        }
        if !self.admits(key) {
            self.rejected_admission.fetch_add(1, Ordering::Relaxed);
            return Inserted::NotAdmitted;
        }
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.entries.get_mut(&key) {
            let newer = (achieved_milli, rank, fingerprint);
            let incumbent = (entry.achieved_milli, entry.rank, entry.fingerprint);
            if newer < incumbent || entry.epoch != epoch {
                entry.fingerprint = fingerprint;
                entry.achieved_milli = achieved_milli;
                entry.executed_tier_milli = executed_tier_milli;
                entry.rank = rank;
                entry.epoch = epoch;
                entry.inserted_tick = tick;
                entry.touched_tick = tick;
                entry.value = value;
                self.inserts.fetch_add(1, Ordering::Relaxed);
                return Inserted::Stored;
            }
            entry.touched_tick = tick;
            self.kept.fetch_add(1, Ordering::Relaxed);
            return Inserted::Kept;
        }
        if shard.entries.len() >= self.per_shard {
            // Per-shard ticks are unique, so the LRU victim is unique;
            // key order breaks the (impossible) tie deterministically.
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.touched_tick, **k))
                .map(|(k, _)| *k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                fingerprint,
                achieved_milli,
                executed_tier_milli,
                rank,
                epoch,
                inserted_tick: tick,
                touched_tick: tick,
                value,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Inserted::Stored
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot every counter.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            epoch: self.epoch(),
            entries: self.len() as u64,
            hits_exact: self.hits_exact.load(Ordering::Relaxed),
            hits_semantic: self.hits_semantic.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale_lookups: self.stale_lookups.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            rejected_admission: self.rejected_admission.load(Ordering::Relaxed),
            rejected_stale: self.rejected_stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            purges: self.purges.load(Ordering::Relaxed),
        }
    }
}

impl<V> std::fmt::Debug for SemanticCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticCache")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .finish()
    }
}

/// FNV-1a over raw bytes — the workspace's stable input fingerprint
/// (identical constants to the payload hasher in `tt-net`).
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer — used for shard selection and the admission
/// hash so nearby keys don't collide into one shard.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(config: CacheConfig) -> SemanticCache<&'static str> {
        SemanticCache::new(config)
    }

    fn one_shard(capacity: usize) -> CacheConfig {
        CacheConfig {
            capacity,
            shards: 1,
            ..CacheConfig::defaults()
        }
    }

    #[test]
    fn semantic_admissibility_follows_the_tolerance_rule() {
        let c = cache(CacheConfig::defaults());
        c.insert(7, 0xAAAA, 50, 100, 0, "balanced", 1);
        // Tolerance covers achieved degradation: semantic hit for a
        // different input, exact hit for the same one.
        assert_eq!(c.lookup(7, 0xBBBB, 100, 1), Lookup::Semantic("balanced"));
        assert_eq!(c.lookup(7, 0xBBBB, 50, 1), Lookup::Semantic("balanced"));
        assert_eq!(c.lookup(7, 0xAAAA, 50, 1), Lookup::Exact("balanced"));
        // Tolerance below achieved degradation: miss.
        assert_eq!(c.lookup(7, 0xBBBB, 49, 1), Lookup::Miss);
        let stats = c.stats();
        assert_eq!(stats.hits_exact, 1);
        assert_eq!(stats.hits_semantic, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn strict_requests_only_hit_bit_equal_zero_degradation_entries() {
        let c = cache(CacheConfig::defaults());
        c.insert(1, 0xAAAA, 0, 0, 0, "premium", 1);
        c.insert(2, 0xCCCC, 1, 100, 0, "nearly", 1);
        // Bit-equal input with achieved == 0: allowed.
        assert_eq!(c.lookup(1, 0xAAAA, 0, 1), Lookup::Exact("premium"));
        // Same semantic key, different input bytes: refused.
        assert_eq!(c.lookup(1, 0xBBBB, 0, 1), Lookup::Miss);
        // Bit-equal input but nonzero achieved degradation: refused.
        assert_eq!(c.lookup(2, 0xCCCC, 0, 1), Lookup::Miss);
    }

    #[test]
    fn keep_best_converges_regardless_of_insert_order() {
        let answers: [(u32, u64, u64, &str); 3] = [
            (120, 2, 0x1, "cheap"),
            (0, 0, 0x2, "premium"),
            (40, 1, 0x3, "balanced"),
        ];
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 0, 2]];
        let mut winners = Vec::new();
        for order in orders {
            let c = cache(CacheConfig::defaults());
            for i in order {
                let (achieved, rank, fp, v) = answers[i];
                c.insert(9, fp, achieved, achieved, rank, v, 1);
            }
            winners.push(c.lookup(9, 0x2, 500, 1));
        }
        assert!(winners.iter().all(|w| *w == Lookup::Exact("premium")));
    }

    #[test]
    fn lru_eviction_is_deterministic_with_logical_ticks() {
        let c = cache(one_shard(2));
        c.insert(1, 0x1, 0, 0, 0, "a", 1);
        c.insert(2, 0x2, 0, 0, 0, "b", 1);
        // Touch key 1 so key 2 is the LRU victim.
        assert_eq!(c.lookup(1, 0x1, 100, 1), Lookup::Exact("a"));
        c.insert(3, 0x3, 0, 0, 0, "c", 1);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup(2, 0x2, 100, 1), Lookup::Miss);
        assert_eq!(c.lookup(1, 0x1, 100, 1), Lookup::Exact("a"));
        assert_eq!(c.lookup(3, 0x3, 100, 1), Lookup::Exact("c"));
    }

    #[test]
    fn epoch_purge_fences_lookups_and_inserts() {
        let c = cache(CacheConfig::defaults());
        c.insert(5, 0x5, 0, 0, 0, "old", 1);
        c.purge_to_epoch(2);
        assert!(c.is_empty(), "purge clears every shard");
        assert_eq!(c.epoch(), 2);
        // Current-epoch callers miss (entry is gone), fenced callers
        // are told they are stale, stale inserts are refused.
        assert_eq!(c.lookup(5, 0x5, 100, 2), Lookup::Miss);
        assert_eq!(c.lookup(5, 0x5, 100, 1), Lookup::Stale);
        assert_eq!(c.insert(5, 0x5, 0, 0, 0, "late", 1), Inserted::StaleEpoch);
        // Purge is monotonic and idempotent.
        c.insert(6, 0x6, 0, 0, 0, "new", 2);
        c.purge_to_epoch(2);
        c.purge_to_epoch(1);
        assert_eq!(c.lookup(6, 0x6, 100, 2), Lookup::Exact("new"));
        assert_eq!(c.stats().purges, 1);
    }

    #[test]
    fn logical_ttl_expires_entries_by_access_count() {
        let c = cache(CacheConfig {
            ttl_accesses: Some(2),
            ..one_shard(8)
        });
        c.insert(1, 0x1, 0, 0, 0, "a", 1); // tick 1
        assert_eq!(c.lookup(1, 0x1, 100, 1), Lookup::Exact("a")); // tick 2
        assert_eq!(c.lookup(1, 0x1, 100, 1), Lookup::Exact("a")); // tick 3
        assert_eq!(c.lookup(1, 0x1, 100, 1), Lookup::Miss); // tick 4 > ttl
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn admission_filter_is_a_pure_seeded_function_of_the_key() {
        let closed = cache(CacheConfig {
            admit_permille: 0,
            ..CacheConfig::defaults()
        });
        assert_eq!(
            closed.insert(1, 0x1, 0, 0, 0, "a", 1),
            Inserted::NotAdmitted
        );
        assert_eq!(closed.stats().rejected_admission, 1);

        let half = cache(CacheConfig {
            admit_permille: 500,
            ..CacheConfig::defaults()
        });
        let admitted = (0..1000u64).filter(|&k| half.admits(k)).count();
        assert!(
            (350..=650).contains(&admitted),
            "seeded admission near the configured rate, got {admitted}"
        );
        // Same key, same verdict, every time.
        for k in 0..100u64 {
            assert_eq!(half.admits(k), half.admits(k));
        }
    }

    #[test]
    fn duplicate_insert_is_folded_into_keep_best() {
        let c = cache(CacheConfig::defaults());
        assert_eq!(c.insert(3, 0x3, 10, 50, 1, "first", 1), Inserted::Stored);
        assert_eq!(c.insert(3, 0x3, 10, 50, 1, "same", 1), Inserted::Kept);
        assert_eq!(c.insert(3, 0x3, 20, 100, 1, "worse", 1), Inserted::Kept);
        assert_eq!(c.insert(3, 0x3, 0, 0, 0, "better", 1), Inserted::Stored);
        assert_eq!(c.lookup(3, 0x3, 100, 1), Lookup::Exact("better"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fingerprint_matches_the_net_payload_hasher_constants() {
        // Locked values so the wire-level fingerprint can never drift
        // silently between crates.
        assert_eq!(fingerprint64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64(b"payload-7"), fingerprint64(b"payload-7"));
        assert_ne!(fingerprint64(b"payload-7"), fingerprint64(b"payload-8"));
    }
}
