//! Named fault scenarios for resilience experiments.
//!
//! Each scenario expands to per-pool [`FaultRates`] over a deployment's
//! version pools, so experiments can say "run the representative mix
//! under a flaky cheap backend" without hand-assembling rate tables.
//! Scenarios are deterministic: the same scenario, pool count, and seed
//! always produce the same [`FaultPlan`].

use tt_sim::{FaultPlan, FaultRates};

/// A named cluster-health situation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultScenario {
    /// No faults at all — the control arm.
    Healthy,
    /// One pool suffers crashes and transient errors at `rate` each
    /// (split evenly); every other pool is healthy. Models a single bad
    /// deployment or node group.
    FlakyPool {
        /// Which version pool is unhealthy.
        pool: usize,
        /// Combined fault probability in `[0, 1]`.
        rate: f64,
    },
    /// Every pool crashes invocations at `crash`. Models an
    /// infrastructure-wide incident.
    Brownout {
        /// Per-invocation crash probability in `[0, 1]`.
        crash: f64,
    },
    /// Every pool stragglers at `rate` with service times inflated by
    /// `factor`. Models interference / noisy neighbours rather than
    /// hard failures.
    Stragglers {
        /// Per-invocation straggler probability in `[0, 1]`.
        rate: f64,
        /// Multiplicative service-time inflation (>= 1).
        factor: f64,
    },
    /// One pool stragglers; the rest are healthy. Models a single
    /// interference-afflicted node group — the case hedging targets.
    SlowPool {
        /// Which version pool stragglers.
        pool: usize,
        /// Per-invocation straggler probability in `[0, 1]`.
        rate: f64,
        /// Multiplicative service-time inflation (>= 1).
        factor: f64,
    },
}

impl FaultScenario {
    /// The per-pool rates this scenario induces on `pools` pools.
    ///
    /// # Panics
    ///
    /// Panics if a `FlakyPool` scenario names a pool out of range, or
    /// any rate is invalid for [`FaultRates`].
    pub fn rates(&self, pools: usize) -> Vec<FaultRates> {
        match *self {
            FaultScenario::Healthy => vec![FaultRates::NONE; pools],
            FaultScenario::FlakyPool { pool, rate } => {
                assert!(
                    pool < pools,
                    "flaky pool {pool} out of range ({pools} pools)"
                );
                let mut rates = vec![FaultRates::NONE; pools];
                rates[pool] = FaultRates {
                    crash: rate / 2.0,
                    transient: rate / 2.0,
                    straggler: 0.0,
                    straggler_factor: 1.0,
                };
                rates
            }
            FaultScenario::Brownout { crash } => vec![FaultRates::crash_only(crash); pools],
            FaultScenario::Stragglers { rate, factor } => {
                vec![
                    FaultRates {
                        crash: 0.0,
                        transient: 0.0,
                        straggler: rate,
                        straggler_factor: factor,
                    };
                    pools
                ]
            }
            FaultScenario::SlowPool { pool, rate, factor } => {
                assert!(
                    pool < pools,
                    "slow pool {pool} out of range ({pools} pools)"
                );
                let mut rates = vec![FaultRates::NONE; pools];
                rates[pool] = FaultRates {
                    crash: 0.0,
                    transient: 0.0,
                    straggler: rate,
                    straggler_factor: factor,
                };
                rates
            }
        }
    }

    /// A seeded, deterministic fault plan for a `pools`-pool cluster.
    pub fn plan(&self, pools: usize, seed: u64) -> FaultPlan {
        FaultPlan::new(seed, self.rates(pools))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_is_fault_free() {
        let plan = FaultScenario::Healthy.plan(4, 1);
        assert!(plan.is_disabled());
    }

    #[test]
    fn flaky_pool_afflicts_exactly_one_pool() {
        let rates = FaultScenario::FlakyPool { pool: 2, rate: 0.2 }.rates(4);
        for (i, r) in rates.iter().enumerate() {
            if i == 2 {
                assert!((r.crash - 0.1).abs() < 1e-12);
                assert!((r.transient - 0.1).abs() < 1e-12);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flaky_pool_out_of_range_panics() {
        let _ = FaultScenario::FlakyPool { pool: 4, rate: 0.1 }.rates(4);
    }

    #[test]
    fn brownout_hits_every_pool() {
        let rates = FaultScenario::Brownout { crash: 0.05 }.rates(3);
        assert!(rates.iter().all(|r| (r.crash - 0.05).abs() < 1e-12));
    }

    #[test]
    fn stragglers_only_slow_things_down() {
        let rates = FaultScenario::Stragglers {
            rate: 0.1,
            factor: 8.0,
        }
        .rates(2);
        assert!(rates
            .iter()
            .all(|r| r.crash == 0.0 && r.transient == 0.0 && r.straggler == 0.1));
    }

    #[test]
    fn slow_pool_stragglers_exactly_one_pool() {
        let rates = FaultScenario::SlowPool {
            pool: 0,
            rate: 0.25,
            factor: 10.0,
        }
        .rates(3);
        assert_eq!(rates[0].straggler, 0.25);
        assert_eq!(rates[0].straggler_factor, 10.0);
        assert!(rates[1].is_none() && rates[2].is_none());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let scenario = FaultScenario::Brownout { crash: 0.3 };
        let mut a = scenario.plan(2, 9);
        let mut b = scenario.plan(2, 9);
        for _ in 0..100 {
            assert_eq!(a.draw(0), b.draw(0));
            assert_eq!(a.draw(1), b.draw(1));
        }
    }
}
