//! The image-classification service as a Tolerance Tiers workload.

use tt_core::profile::{Observation, ProfileMatrix, ProfileMatrixBuilder};
use tt_vision::dataset::DatasetConfig;
use tt_vision::latency::Device;
use tt_vision::service::VisionService;

/// Fraction of an hour per microsecond (for IaaS cost conversion).
const HOURS_PER_US: f64 = 1.0 / 3.6e9;

/// The IC workload: every dataset image classified by every zoo model
/// on a given device, assembled into a profile matrix.
///
/// Invocation cost is the node's IaaS charge for the inference time —
/// GPU nodes are faster per request but ~4.5× the hourly price, which
/// is exactly the trade-off the paper's cost tiers exploit.
#[derive(Debug, Clone)]
pub struct VisionWorkload {
    service: VisionService,
    device: Device,
    matrix: ProfileMatrix,
}

impl VisionWorkload {
    /// Classify the dataset under the full zoo on `device` and profile
    /// it.
    pub fn build(config: DatasetConfig, device: Device) -> Self {
        Self::from_service(VisionService::synthesize(config), device)
    }

    /// Same, over an explicit service (e.g. one built with
    /// [`tt_vision::zoo::extended_zoo`]).
    pub fn from_service(service: VisionService, device: Device) -> Self {
        let price = match device {
            Device::Cpu => tt_sim::InstanceType::cpu_node().price_per_hour(),
            Device::Gpu => tt_sim::InstanceType::gpu_node().price_per_hour(),
        };

        let per_model: Vec<Vec<tt_vision::service::ClassifyOutcome>> = service
            .zoo()
            .iter()
            .map(|m| service.classify_dataset(m, device))
            .collect();

        let mut builder =
            ProfileMatrixBuilder::new(service.zoo().iter().map(|m| m.name().to_string()).collect());
        for r in 0..service.dataset().images().len() {
            let row: Vec<Observation> = per_model
                .iter()
                .map(|outs| {
                    let o = &outs[r];
                    Observation {
                        quality_err: o.top1_err,
                        latency_us: o.latency_us,
                        cost: o.latency_us as f64 * HOURS_PER_US * price,
                        confidence: o.confidence,
                    }
                })
                .collect();
            builder.push_request(row);
        }
        let matrix = builder.build().expect("non-empty dataset and zoo");
        VisionWorkload {
            service,
            device,
            matrix,
        }
    }

    /// The profile matrix (requests × models).
    pub fn matrix(&self) -> &ProfileMatrix {
        &self.matrix
    }

    /// The underlying service.
    pub fn service(&self) -> &VisionService {
        &self.service
    }

    /// Which device this workload profiled.
    pub fn device(&self) -> Device {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dimensions_match_dataset_and_zoo() {
        let w = VisionWorkload::build(DatasetConfig::small(), Device::Cpu);
        assert_eq!(w.matrix().versions(), 6);
        assert_eq!(w.matrix().requests(), 300);
    }

    #[test]
    fn most_accurate_model_is_the_calibrated_best() {
        let w = VisionWorkload::build(DatasetConfig::evaluation().with_images(2000), Device::Cpu);
        let best = w.matrix().best_version().unwrap();
        assert_eq!(w.matrix().version_names()[best], "res152-x");
    }

    #[test]
    fn gpu_workload_is_faster_but_pricier_per_hour() {
        let cpu = VisionWorkload::build(DatasetConfig::small(), Device::Cpu);
        let gpu = VisionWorkload::build(DatasetConfig::small(), Device::Gpu);
        let v = cpu.matrix().versions() - 1;
        let cpu_lat = cpu.matrix().version_latency(v, None).unwrap();
        let gpu_lat = gpu.matrix().version_latency(v, None).unwrap();
        assert!(cpu_lat > gpu_lat * 2.0);
        // Per-request cost on GPU is nonetheless *lower* here because the
        // speedup (~12×) exceeds the price ratio (~4.5×).
        let cpu_cost = cpu.matrix().version_cost(v, None).unwrap();
        let gpu_cost = gpu.matrix().version_cost(v, None).unwrap();
        assert!(gpu_cost < cpu_cost);
    }

    #[test]
    fn quality_err_is_binary() {
        let w = VisionWorkload::build(DatasetConfig::small(), Device::Gpu);
        let m = w.matrix();
        for r in 0..m.requests() {
            for v in 0..m.versions() {
                let e = m.get(r, v).quality_err;
                assert!(e == 0.0 || e == 1.0);
            }
        }
    }
}
