//! Annotated request streams for serving experiments.
//!
//! A [`RequestMix`] turns profiled payloads into a stream of
//! [`ServiceRequest`]s whose tolerance/objective annotations follow a
//! configurable distribution — the population of API consumers hitting
//! a tiered deployment.

use crate::keyspace::Keyspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_core::objective::Objective;
use tt_core::request::{ServiceRequest, Tolerance};

/// A weighted set of (tolerance, objective) consumer profiles.
#[derive(Debug, Clone)]
pub struct RequestMix {
    /// `(weight, tolerance, objective)` entries; weights need not sum
    /// to 1.
    entries: Vec<(f64, Tolerance, Objective)>,
    total_weight: f64,
}

impl RequestMix {
    /// Build a mix from weighted entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is non-positive.
    pub fn new(entries: Vec<(f64, Tolerance, Objective)>) -> Self {
        assert!(!entries.is_empty(), "request mix needs entries");
        assert!(
            entries.iter().all(|(w, _, _)| *w > 0.0),
            "weights must be positive"
        );
        let total_weight = entries.iter().map(|(w, _, _)| w).sum();
        RequestMix {
            entries,
            total_weight,
        }
    }

    /// A representative consumer population: half latency-sensitive at
    /// various tolerances, a third cost-sensitive, the rest
    /// accuracy-critical (zero tolerance).
    pub fn representative() -> Self {
        let t = |v: f64| Tolerance::new(v).expect("valid tolerance");
        RequestMix::new(vec![
            (0.17, t(0.0), Objective::ResponseTime),
            (0.25, t(0.01), Objective::ResponseTime),
            (0.15, t(0.05), Objective::ResponseTime),
            (0.10, t(0.10), Objective::ResponseTime),
            (0.13, t(0.01), Objective::Cost),
            (0.12, t(0.05), Objective::Cost),
            (0.08, t(0.10), Objective::Cost),
        ])
    }

    /// Draw a stream of `n` requests over `payloads` profiled payloads
    /// with uniform key draws — equivalent to
    /// [`RequestMix::sample_keyed`] with [`Keyspace::Uniform`], and
    /// bit-compatible with the pre-keyspace sampler.
    ///
    /// # Panics
    ///
    /// Panics if `payloads == 0`.
    pub fn sample(&self, n: usize, payloads: usize, seed: u64) -> Vec<ServiceRequest> {
        self.sample_keyed(n, payloads, seed, &Keyspace::Uniform)
    }

    /// Draw a stream of `n` requests whose payload indices follow
    /// `keyspace` (Zipf, repeat-heavy, …) while tolerances/objectives
    /// follow this mix. One seed drives both draws, so the stream is
    /// fully deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `payloads == 0`.
    pub fn sample_keyed(
        &self,
        n: usize,
        payloads: usize,
        seed: u64,
        keyspace: &Keyspace,
    ) -> Vec<ServiceRequest> {
        assert!(payloads > 0, "need at least one payload");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = keyspace.sampler(payloads, seed);
        (0..n)
            .map(|_| {
                let mut u = rng.gen::<f64>() * self.total_weight;
                let mut chosen = &self.entries[self.entries.len() - 1];
                for e in &self.entries {
                    if u < e.0 {
                        chosen = e;
                        break;
                    }
                    u -= e.0;
                }
                ServiceRequest::new(sampler.draw(&mut rng), chosen.1, chosen.2)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_has_requested_shape() {
        let mix = RequestMix::representative();
        let reqs = mix.sample(500, 100, 7);
        assert_eq!(reqs.len(), 500);
        assert!(reqs.iter().all(|r| r.payload < 100));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = RequestMix::representative();
        assert_eq!(mix.sample(50, 10, 1), mix.sample(50, 10, 1));
        assert_ne!(mix.sample(50, 10, 1), mix.sample(50, 10, 2));
    }

    #[test]
    fn weights_shape_the_distribution() {
        let t = |v: f64| Tolerance::new(v).unwrap();
        let mix = RequestMix::new(vec![
            (9.0, t(0.0), Objective::ResponseTime),
            (1.0, t(0.10), Objective::Cost),
        ]);
        let reqs = mix.sample(5_000, 10, 3);
        let zero_tol =
            reqs.iter().filter(|r| r.tolerance.value() == 0.0).count() as f64 / reqs.len() as f64;
        assert!((zero_tol - 0.9).abs() < 0.03, "observed {zero_tol}");
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn empty_mix_panics() {
        let _ = RequestMix::new(vec![]);
    }
}
