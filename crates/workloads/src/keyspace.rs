//! Payload-index (key) distributions for request streams.
//!
//! The serving stack's semantic cache ([`tt-cache`]) only has a hit
//! curve to show if the workload actually repeats keys, so a
//! [`Keyspace`] shapes *which payload* each sampled request carries
//! while [`crate::RequestMix`] keeps shaping *who* is asking
//! (tolerance/objective). All distributions are seeded and
//! deterministic: the same `(keyspace, payloads, seed)` triple yields
//! the same key sequence on every host and at any concurrency.

use rand::rngs::StdRng;
use rand::Rng;

/// How payload indices are drawn for a request stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Keyspace {
    /// Independent uniform draws over `0..payloads` — the historical
    /// default, bit-compatible with the pre-keyspace sampler.
    Uniform,
    /// Strictly cycling `0, 1, 2, …` — a repeat-free stream (for
    /// `requests <= payloads`), the billing-parity baseline for the
    /// cache.
    Sequential,
    /// Zipf-distributed ranks: key `k` drawn with weight
    /// `1 / (k+1)^s`. Larger `s` skews harder toward a few hot keys.
    Zipf {
        /// The skew exponent (`s > 0`); web-like traffic sits near 1.
        s: f64,
    },
    /// A hot set of `hot` keys receives `hot_share` of the traffic
    /// (uniform within it), the rest goes uniform over the whole
    /// space. Every `churn_every` draws the hot set rotates to a
    /// fresh seeded selection, modelling trending-content turnover.
    RepeatHeavy {
        /// Hot-set cardinality.
        hot: usize,
        /// Fraction of draws served from the hot set (0..=1).
        hot_share: f64,
        /// Draws between hot-set rotations; 0 disables churn.
        churn_every: usize,
    },
}

impl Keyspace {
    /// Parse a loadgen `--keyspace` flag value: `uniform`,
    /// `sequential`, `zipf:S`, or `repeat:HOT,SHARE,CHURN`.
    pub fn parse(flag: &str) -> Result<Keyspace, String> {
        let flag = flag.trim();
        if flag.eq_ignore_ascii_case("uniform") {
            return Ok(Keyspace::Uniform);
        }
        if flag.eq_ignore_ascii_case("sequential") {
            return Ok(Keyspace::Sequential);
        }
        if let Some(s) = flag.strip_prefix("zipf:") {
            let s: f64 = s.parse().map_err(|_| format!("bad zipf exponent {s:?}"))?;
            if s <= 0.0 {
                return Err("zipf exponent must be positive".into());
            }
            return Ok(Keyspace::Zipf { s });
        }
        if let Some(rest) = flag.strip_prefix("repeat:") {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 3 {
                return Err(format!("repeat wants HOT,SHARE,CHURN, got {rest:?}"));
            }
            let hot: usize = parts[0]
                .parse()
                .map_err(|_| "bad hot-set size".to_string())?;
            let hot_share: f64 = parts[1].parse().map_err(|_| "bad hot share".to_string())?;
            let churn_every: usize = parts[2].parse().map_err(|_| "bad churn".to_string())?;
            if hot == 0 || !(0.0..=1.0).contains(&hot_share) {
                return Err("repeat wants hot >= 1 and share in 0..=1".into());
            }
            return Ok(Keyspace::RepeatHeavy {
                hot,
                hot_share,
                churn_every,
            });
        }
        Err(format!(
            "unknown keyspace {flag:?} (want uniform | sequential | zipf:S | repeat:HOT,SHARE,CHURN)"
        ))
    }

    /// Build the stateful sampler for a space of `payloads` keys.
    ///
    /// # Panics
    ///
    /// Panics if `payloads == 0`.
    pub fn sampler(&self, payloads: usize, seed: u64) -> KeyspaceSampler {
        assert!(payloads > 0, "need at least one payload");
        let cdf = match self {
            Keyspace::Zipf { s } => {
                let mut acc = 0.0;
                Some(
                    (0..payloads)
                        .map(|k| {
                            acc += 1.0 / ((k + 1) as f64).powf(*s);
                            acc
                        })
                        .collect::<Vec<f64>>(),
                )
            }
            _ => None,
        };
        KeyspaceSampler {
            kind: self.clone(),
            payloads,
            seed,
            draws: 0,
            cdf,
        }
    }
}

/// Stateful, seeded key sampler produced by [`Keyspace::sampler`].
#[derive(Debug, Clone)]
pub struct KeyspaceSampler {
    kind: Keyspace,
    payloads: usize,
    seed: u64,
    draws: u64,
    cdf: Option<Vec<f64>>,
}

impl KeyspaceSampler {
    /// Draw the next payload index. `rng` is the stream's shared
    /// seeded generator (uniform/zipf/repeat consume from it;
    /// sequential does not), so the full request stream stays a pure
    /// function of the seed.
    pub fn draw(&mut self, rng: &mut StdRng) -> usize {
        let n = self.payloads;
        let drawn = self.draws;
        self.draws += 1;
        match &self.kind {
            Keyspace::Uniform => rng.gen_range(0..n),
            Keyspace::Sequential => (drawn as usize) % n,
            Keyspace::Zipf { .. } => {
                let cdf = self.cdf.as_ref().expect("zipf cdf precomputed");
                let total = *cdf.last().expect("non-empty cdf");
                let u = rng.gen::<f64>() * total;
                cdf.partition_point(|&c| c < u).min(n - 1)
            }
            Keyspace::RepeatHeavy {
                hot,
                hot_share,
                churn_every,
            } => {
                let generation = if *churn_every == 0 {
                    0
                } else {
                    drawn / *churn_every as u64
                };
                if rng.gen::<f64>() < *hot_share {
                    let slot = rng.gen_range(0..*hot) as u64;
                    // The hot set is a pure function of (seed,
                    // generation, slot): no stored state to drift.
                    (mix(self.seed ^ generation.wrapping_mul(0x9e37_79b9) ^ slot) as usize) % n
                } else {
                    rng.gen_range(0..n)
                }
            }
        }
    }
}

/// SplitMix64 finalizer for hot-set membership.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw_n(ks: &Keyspace, n: usize, payloads: usize, seed: u64) -> Vec<usize> {
        let mut sampler = ks.sampler(payloads, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| sampler.draw(&mut rng)).collect()
    }

    #[test]
    fn parse_round_trips_every_form() {
        assert_eq!(Keyspace::parse("uniform").unwrap(), Keyspace::Uniform);
        assert_eq!(Keyspace::parse("sequential").unwrap(), Keyspace::Sequential);
        assert_eq!(
            Keyspace::parse("zipf:1.2").unwrap(),
            Keyspace::Zipf { s: 1.2 }
        );
        assert_eq!(
            Keyspace::parse("repeat:16,0.9,5000").unwrap(),
            Keyspace::RepeatHeavy {
                hot: 16,
                hot_share: 0.9,
                churn_every: 5000
            }
        );
        assert!(Keyspace::parse("zipf:-1").is_err());
        assert!(Keyspace::parse("pareto").is_err());
    }

    #[test]
    fn every_keyspace_is_deterministic_per_seed() {
        for ks in [
            Keyspace::Uniform,
            Keyspace::Sequential,
            Keyspace::Zipf { s: 1.1 },
            Keyspace::RepeatHeavy {
                hot: 8,
                hot_share: 0.9,
                churn_every: 100,
            },
        ] {
            assert_eq!(draw_n(&ks, 500, 64, 7), draw_n(&ks, 500, 64, 7));
            assert!(draw_n(&ks, 500, 64, 7).iter().all(|&k| k < 64));
        }
    }

    #[test]
    fn sequential_is_repeat_free_within_one_cycle() {
        let keys = draw_n(&Keyspace::Sequential, 64, 64, 3);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "one full repeat-free cycle");
    }

    #[test]
    fn zipf_skews_mass_onto_low_ranks() {
        let keys = draw_n(&Keyspace::Zipf { s: 1.2 }, 10_000, 100, 11);
        let head = keys.iter().filter(|&&k| k < 10).count() as f64 / keys.len() as f64;
        let uniform_head = 0.10;
        assert!(
            head > 3.0 * uniform_head,
            "zipf head share {head} should dwarf uniform {uniform_head}"
        );
    }

    #[test]
    fn repeat_heavy_concentrates_then_churns() {
        let ks = Keyspace::RepeatHeavy {
            hot: 4,
            hot_share: 0.9,
            churn_every: 1_000,
        };
        let keys = draw_n(&ks, 2_000, 1_000, 5);
        let distinct = |window: &[usize]| {
            let mut w = window.to_vec();
            w.sort_unstable();
            w.dedup();
            w.len()
        };
        // Each generation leans on ~4 hot keys out of 1000...
        assert!(distinct(&keys[..1_000]) < 150);
        // ...and the two generations' hot sets differ.
        let first: Vec<usize> = keys[..1_000].to_vec();
        let second: Vec<usize> = keys[1_000..].to_vec();
        assert_ne!(first, second);
    }
}
