//! Workload builders bridging the ASR and image-classification
//! substrates to Tolerance Tiers [`tt_core::ProfileMatrix`] form, plus
//! annotated request streams and named fault scenarios ([`faults`])
//! for the serving layer.
//!
//! # Examples
//!
//! ```
//! use tt_asr::CorpusConfig;
//! use tt_workloads::AsrWorkload;
//!
//! let workload = AsrWorkload::build(CorpusConfig::small());
//! assert_eq!(workload.matrix().versions(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asr_workload;
pub mod faults;
pub mod keyspace;
pub mod mix;
pub mod vision_workload;

pub use asr_workload::AsrWorkload;
pub use faults::FaultScenario;
pub use keyspace::{Keyspace, KeyspaceSampler};
pub use mix::RequestMix;
pub use vision_workload::VisionWorkload;
