//! The ASR service as a Tolerance Tiers workload.

use tt_asr::decoder::BeamConfig;
use tt_asr::service::AsrEngine;
use tt_asr::CorpusConfig;
use tt_core::profile::{Observation, ProfileMatrix, ProfileMatrixBuilder};

/// Fraction of an hour per microsecond (for IaaS cost conversion).
const HOURS_PER_US: f64 = 1.0 / 3.6e9;

/// The ASR workload: every corpus utterance decoded under every beam
/// configuration, assembled into a profile matrix.
///
/// Invocation cost is the CPU node's IaaS charge for the decode time
/// (the paper's ASR engine is CPU-only).
#[derive(Debug, Clone)]
pub struct AsrWorkload {
    engine: AsrEngine,
    versions: Vec<BeamConfig>,
    matrix: ProfileMatrix,
}

impl AsrWorkload {
    /// Decode the corpus under the seven paper versions and profile it.
    pub fn build(config: CorpusConfig) -> Self {
        Self::build_with_versions(config, BeamConfig::paper_versions())
    }

    /// Same, with an explicit version ladder.
    ///
    /// # Panics
    ///
    /// Panics if `versions` is empty.
    pub fn build_with_versions(config: CorpusConfig, versions: Vec<BeamConfig>) -> Self {
        assert!(!versions.is_empty(), "need at least one service version");
        let engine = AsrEngine::synthesize(config);
        let cpu_price = tt_sim::InstanceType::cpu_node().price_per_hour();

        // Decode once per version, then transpose into request rows.
        let per_version: Vec<Vec<tt_asr::service::DecodeOutcome>> = versions
            .iter()
            .map(|cfg| engine.decode_corpus(cfg))
            .collect();

        let mut builder =
            ProfileMatrixBuilder::new(versions.iter().map(|v| v.name.clone()).collect());
        for r in 0..engine.corpus().utterances().len() {
            let row: Vec<Observation> = per_version
                .iter()
                .map(|outs| {
                    let o = &outs[r];
                    Observation {
                        quality_err: o.wer,
                        latency_us: o.latency_us,
                        cost: o.latency_us as f64 * HOURS_PER_US * cpu_price,
                        confidence: o.confidence,
                    }
                })
                .collect();
            builder.push_request(row);
        }
        let matrix = builder.build().expect("non-empty corpus and versions");
        AsrWorkload {
            engine,
            versions,
            matrix,
        }
    }

    /// The profile matrix (requests × versions).
    pub fn matrix(&self) -> &ProfileMatrix {
        &self.matrix
    }

    /// The underlying engine.
    pub fn engine(&self) -> &AsrEngine {
        &self.engine
    }

    /// The version ladder.
    pub fn versions(&self) -> &[BeamConfig] {
        &self.versions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dimensions_match_corpus_and_ladder() {
        let w = AsrWorkload::build(CorpusConfig::small());
        assert_eq!(w.matrix().versions(), 7);
        assert_eq!(
            w.matrix().requests(),
            w.engine().corpus().utterances().len()
        );
    }

    #[test]
    fn cost_scales_with_latency() {
        let w = AsrWorkload::build(CorpusConfig::small());
        let m = w.matrix();
        for r in 0..m.requests() {
            for v in 0..m.versions() {
                let o = m.get(r, v);
                let expected =
                    o.latency_us as f64 / 3.6e9 * tt_sim::InstanceType::cpu_node().price_per_hour();
                assert!((o.cost - expected).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn most_accurate_version_is_near_the_wide_end() {
        let w = AsrWorkload::build(CorpusConfig::small().with_utterances(120));
        let best = w.matrix().best_version().unwrap();
        assert!(best >= 4, "expected a wide beam to win, got v{}", best + 1);
    }

    #[test]
    fn build_is_deterministic() {
        let a = AsrWorkload::build(CorpusConfig::small());
        let b = AsrWorkload::build(CorpusConfig::small());
        assert_eq!(a.matrix(), b.matrix());
    }
}
