//! Property: a bounded [`TraceRecorder`] fed the same event stream as
//! an unbounded one reports identical per-tier request counts, mean
//! errors within fixed-point rounding, and latency quantiles within
//! the bounded histogram's relative-error bound — while retaining only
//! its ring's worth of raw events.

use proptest::prelude::*;
use tt_core::objective::Objective;
use tt_serve::trace::{TraceEvent, TraceRecorder};
use tt_sim::SimTime;

fn event(seed: (u8, u8, u32, u32)) -> TraceEvent {
    let (tol_pick, obj_pick, at_us, took_us) = seed;
    TraceEvent {
        arrival: SimTime::from_micros(u64::from(at_us)),
        responded: SimTime::from_micros(u64::from(at_us) + u64::from(took_us)),
        tolerance: [0.0, 0.01, 0.05, 0.10][usize::from(tol_pick) % 4],
        objective: if obj_pick % 2 == 0 {
            Objective::ResponseTime
        } else {
            Objective::Cost
        },
        answered_by: usize::from(obj_pick % 3),
        quality_err: f64::from(took_us % 100) / 100.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bounded_aggregates_match_unbounded(
        seeds in prop::collection::vec(
            (0u8..4, 0u8..6, 0u32..1_000_000, 1u32..200_000),
            1..120,
        ),
        retain in 1usize..16,
    ) {
        let mut unbounded = TraceRecorder::new();
        let mut bounded = TraceRecorder::bounded(retain);
        for seed in &seeds {
            unbounded.record(event(*seed));
            bounded.record(event(*seed));
        }

        prop_assert_eq!(bounded.total_recorded(), seeds.len());
        prop_assert_eq!(bounded.events().len(), seeds.len().min(retain));
        // The ring holds exactly the newest events, in order.
        let tail: Vec<TraceEvent> = seeds
            .iter()
            .skip(seeds.len().saturating_sub(retain))
            .map(|s| event(*s))
            .collect();
        let ring: Vec<TraceEvent> = bounded.events().iter().cloned().collect();
        prop_assert_eq!(ring, tail);

        let full = unbounded.by_tier();
        let agg = bounded.by_tier();
        prop_assert_eq!(full.len(), agg.len());
        for (key, exact) in &full {
            let approx = &agg[key];
            prop_assert_eq!(exact.requests, approx.requests);
            prop_assert!(
                (exact.mean_err - approx.mean_err).abs() < 1e-6,
                "mean_err {} vs {}", exact.mean_err, approx.mean_err
            );
            prop_assert_eq!(exact.latency.len(), approx.latency.len());
            // Quantiles agree with the nearest-rank order statistic
            // (the sample the histogram targets) within its
            // relative-error bound, plus the microsecond the integer
            // conversion may shave off.
            let mut sorted = exact.latency.samples_ms().to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
            for q in [0.5, 0.99, 1.0] {
                let rank = (q * (sorted.len() - 1) as f64).round() as usize;
                let nearest = sorted[rank];
                let approx_q = approx.latency.quantiles(&[q]).expect("non-empty tier")[0];
                prop_assert!(
                    (approx_q - nearest).abs() <= nearest * 0.02 + 2e-3,
                    "q={}: bounded {} vs nearest-rank {}", q, approx_q, nearest
                );
            }
        }
    }
}
