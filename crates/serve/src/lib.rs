//! The serving layer: a Tolerance Tiers deployment.
//!
//! This crate assembles the pieces the paper's Fig. 4/§IV architecture
//! describes around the core library:
//!
//! * [`pricing`] — the IaaS/API price catalog.
//! * [`frontend`] — parsing consumer annotations (`Tolerance:` /
//!   `Objective:` headers) and mapping requests to deployed routing
//!   rules.
//! * [`cluster`] — a discrete-event cluster: per-version node pools fed
//!   by a load balancer executing the tier policies, with genuine
//!   queueing, concurrent dispatch and early-termination cancellation,
//!   plus cost accounting.
//! * [`resilience`] — the fault-tolerance policy layer: retry budgets
//!   with capped exponential backoff, per-pool circuit breakers,
//!   deadlines, hedging, and graceful degradation, plus the statistics
//!   the cluster reports about them.
//! * [`live`] — a real thread-pool executor (crossbeam channels) for
//!   running actual model code behind the same tiered API, used by the
//!   examples; live-resizable with drain-before-reap semantics.
//! * [`planner`] — continuous capacity planning: a low-frequency
//!   forecast-driven planner (pool resizes, forecast-mix rule regen)
//!   plus a high-frequency tuner (admission/batching nudges), both
//!   pure deterministic automatons.
//!
//! # Examples
//!
//! ```
//! use tt_serve::frontend::parse_annotations;
//!
//! let (tol, obj) = parse_annotations("Tolerance: 0.05\nObjective: cost").unwrap();
//! assert_eq!(tol.value(), 0.05);
//! assert_eq!(obj, tt_core::Objective::Cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod cluster;
pub mod frontend;
pub mod live;
pub mod planner;
pub mod pricing;
pub mod resilience;
pub mod supervisor;
pub mod trace;

pub use billing::{BillingReport, TierPriceSchedule};
pub use cluster::{ClusterConfig, ClusterSim, ServingReport};
pub use frontend::{parse_annotations, AnnotationError, TieredFrontend};
pub use planner::{
    Planner, PlannerAction, PlannerConfig, PlannerInput, PlannerStatus, ServiceTotals, Tuner,
    TunerConfig, TunerDecision,
};
pub use pricing::PricingCatalog;
pub use resilience::{
    BreakerPolicy, BreakerState, CircuitBreaker, ResilienceConfig, ResilienceStats, RetryPolicy,
};
pub use supervisor::{
    Supervisor, SupervisorAction, SupervisorConfig, SupervisorPhase, Transition, TransitionKind,
    VersionWindow, WindowObservation,
};
pub use trace::{TraceEvent, TraceRecorder};
