//! Tier pricing and provider economics.
//!
//! The paper's motivation includes cost-critical consumers ("API
//! consumers pay per use of the cloud service API each time it is
//! invoked — cutting into their application's revenue") and frames
//! Tolerance Tiers like EC2 instance families: differentiated products
//! at differentiated prices. This module closes that loop: a
//! [`TierPriceSchedule`] maps tolerance to a per-invocation price
//! (looser tolerance = cheaper calls), and a [`BillingReport`] folds a
//! serving trace into provider revenue, compute cost and margin per
//! tier.

use crate::trace::TraceRecorder;
use std::collections::BTreeMap;
use tt_sim::Money;

/// Per-invocation prices by tolerance tier (descending price as
/// tolerance loosens).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierPriceSchedule {
    /// `(tolerance, price)` sorted ascending by tolerance.
    prices: Vec<(f64, Money)>,
}

impl TierPriceSchedule {
    /// Build a schedule from `(tolerance, price)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `prices` is empty, tolerances are not strictly
    /// ascending from 0.0, or prices are not non-increasing (a looser
    /// tier must not cost more — nobody would buy the stricter one
    /// otherwise... the other way around: a looser tier costing more
    /// would never be bought).
    pub fn new(mut prices: Vec<(f64, Money)>) -> Self {
        assert!(!prices.is_empty(), "schedule needs at least one tier");
        prices.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite tolerances"));
        assert_eq!(prices[0].0, 0.0, "schedule must anchor the 0% tier");
        for w in prices.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate tier tolerance");
            assert!(
                w[1].1 <= w[0].1,
                "looser tiers must not cost more than stricter ones"
            );
        }
        TierPriceSchedule { prices }
    }

    /// A default schedule mirroring the paper's headline tiers: full
    /// price at 0%, ~20% off at 1%, ~50% off at 5%, ~65% off at 10%.
    pub fn list_prices(base: Money) -> Self {
        TierPriceSchedule::new(vec![
            (0.0, base),
            (0.01, base.scaled(0.8)),
            (0.05, base.scaled(0.5)),
            (0.10, base.scaled(0.35)),
        ])
    }

    /// Price for a requested tolerance: the *largest* tier tolerance
    /// not exceeding the request's (same downward-compatibility rule
    /// the routing tables use).
    pub fn price_for(&self, tolerance: f64) -> Money {
        let mut price = self.prices[0].1;
        for &(tol, p) in &self.prices {
            if tol <= tolerance + 1e-12 {
                price = p;
            } else {
                break;
            }
        }
        price
    }

    /// The schedule's `(tolerance, price)` pairs.
    pub fn tiers(&self) -> &[(f64, Money)] {
        &self.prices
    }
}

/// Provider economics for one tier.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierEconomics {
    /// Requests billed.
    pub requests: usize,
    /// Revenue collected.
    pub revenue: Money,
}

/// Revenue per tier plus the run's compute cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BillingReport {
    /// Economics keyed by `(objective, tolerance-in-tenths-of-percent)`.
    pub tiers: BTreeMap<(String, u32), TierEconomics>,
    /// Total revenue.
    pub revenue: Money,
    /// Compute cost of the run (from the serving ledger).
    pub compute_cost: Money,
}

impl BillingReport {
    /// Fold a serving trace and its compute cost into tier economics.
    pub fn from_trace(
        trace: &TraceRecorder,
        schedule: &TierPriceSchedule,
        compute_cost: Money,
    ) -> Self {
        let mut tiers: BTreeMap<(String, u32), TierEconomics> = BTreeMap::new();
        for e in trace.events() {
            let price = schedule.price_for(e.tolerance);
            let key = (
                e.objective.to_string(),
                (e.tolerance * 1000.0).round() as u32,
            );
            let slot = tiers.entry(key).or_insert(TierEconomics {
                requests: 0,
                revenue: Money::ZERO,
            });
            slot.requests += 1;
            slot.revenue += price;
        }
        // Total the tiers in key order, not trace order: live traces
        // record events in thread-completion order, and summing f64
        // prices in a varying order varies the total by an ulp.
        let mut revenue = Money::ZERO;
        for econ in tiers.values() {
            revenue += econ.revenue;
        }
        BillingReport {
            tiers,
            revenue,
            compute_cost,
        }
    }

    /// Build from pre-accumulated per-tier economics — the shape a
    /// live server keeps incrementally so billing stays exact even
    /// when its trace ring has evicted old events. Revenue totals in
    /// key order for the same ulp-determinism as
    /// [`BillingReport::from_trace`].
    pub fn from_parts(tiers: BTreeMap<(String, u32), TierEconomics>, compute_cost: Money) -> Self {
        let mut revenue = Money::ZERO;
        for econ in tiers.values() {
            revenue += econ.revenue;
        }
        BillingReport {
            tiers,
            revenue,
            compute_cost,
        }
    }

    /// Gross margin: revenue minus compute cost.
    pub fn margin(&self) -> Money {
        self.revenue + self.compute_cost.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use tt_core::objective::Objective;
    use tt_sim::SimTime;

    fn schedule() -> TierPriceSchedule {
        TierPriceSchedule::list_prices(Money::from_dollars(0.001))
    }

    #[test]
    fn price_lookup_uses_downward_compatibility() {
        let s = schedule();
        assert_eq!(s.price_for(0.0), Money::from_dollars(0.001));
        // 3% tolerance is served (and billed) as the 1% tier.
        assert_eq!(s.price_for(0.03), Money::from_dollars(0.0008));
        assert_eq!(s.price_for(0.10), Money::from_dollars(0.00035));
        assert_eq!(s.price_for(5.0), Money::from_dollars(0.00035));
    }

    #[test]
    #[should_panic(expected = "anchor the 0% tier")]
    fn schedule_requires_zero_anchor() {
        TierPriceSchedule::new(vec![(0.01, Money::from_dollars(1.0))]);
    }

    #[test]
    #[should_panic(expected = "must not cost more")]
    fn schedule_rejects_inverted_prices() {
        TierPriceSchedule::new(vec![
            (0.0, Money::from_dollars(1.0)),
            (0.05, Money::from_dollars(2.0)),
        ]);
    }

    #[test]
    fn billing_folds_traces_into_margin() {
        let mut trace = TraceRecorder::new();
        for (tol, n) in [(0.0, 3usize), (0.05, 2)] {
            for i in 0..n {
                trace.record(TraceEvent {
                    arrival: SimTime::from_micros(i as u64),
                    responded: SimTime::from_micros(i as u64 + 10),
                    tolerance: tol,
                    objective: Objective::ResponseTime,
                    answered_by: 0,
                    quality_err: 0.0,
                });
            }
        }
        let report = BillingReport::from_trace(&trace, &schedule(), Money::from_dollars(0.001));
        // 3 × 0.001 + 2 × 0.0005.
        assert!((report.revenue.as_dollars() - 0.004).abs() < 1e-12);
        assert!((report.margin().as_dollars() - 0.003).abs() < 1e-12);
        assert_eq!(report.tiers.len(), 2);
        assert_eq!(report.tiers[&("response-time".to_string(), 0)].requests, 3);
    }
}
