//! A real thread-pool executor for tiered serving.
//!
//! The cluster simulator reasons about time analytically; this module
//! actually *runs* model code on worker threads, so the examples can
//! demonstrate the full consumer experience — annotated request in,
//! result out — with genuine concurrency (crossbeam channels) and
//! early-ish termination (a cancellation flag the expensive invocation
//! checks; compute cannot be preempted mid-call, matching how real
//! serving frameworks cancel between batches).
//!
//! The executor mirrors the simulator's resilience layer in wall-clock
//! terms: [`WorkerPool::call_with_retry`] re-submits failed calls with
//! the same capped exponential backoff schedule
//! ([`crate::resilience::RetryPolicy`]), and
//! [`WorkerPool::cascade_with_deadline`] bounds a cascade by a real
//! deadline, cancelling whatever is still queued when it expires.

use crate::resilience::RetryPolicy;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A counting semaphore bounding in-flight model calls.
///
/// Both execution paths — queued jobs picked up by pool workers and
/// [`WorkerPool::run_inline`] calls on the caller's thread — hold one
/// permit per running call, so the pool's concurrency bound is the
/// number of permits regardless of which path a call takes. (Uses the
/// std primitives directly: the vendored `parking_lot` shim has no
/// `Condvar`.)
#[derive(Debug)]
struct Permits {
    state: std::sync::Mutex<PermitState>,
    freed: std::sync::Condvar,
}

/// `available` counts free permits; `deficit` counts permits scheduled
/// for removal that are currently held by running calls. A shrink never
/// waits for in-flight work: it takes what is free immediately and
/// books the remainder as deficit, which future releases pay down
/// before any permit becomes available again.
#[derive(Debug)]
struct PermitState {
    available: usize,
    deficit: usize,
}

impl Permits {
    fn new(count: usize) -> Self {
        Permits {
            state: std::sync::Mutex::new(PermitState {
                available: count,
                deficit: 0,
            }),
            freed: std::sync::Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while s.available == 0 {
            s = self
                .freed
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.available -= 1;
    }

    fn release(&self) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.deficit > 0 {
            s.deficit -= 1;
            return;
        }
        s.available += 1;
        drop(s);
        self.freed.notify_one();
    }

    /// Grow capacity by `count` permits (paying down any deficit
    /// first).
    fn add(&self, count: usize) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let paid = count.min(s.deficit);
        s.deficit -= paid;
        s.available += count - paid;
        drop(s);
        self.freed.notify_all();
    }

    /// Shrink capacity by `count` permits without waiting for running
    /// calls: free permits are removed immediately, the remainder is
    /// booked as deficit and absorbed by future releases.
    fn remove(&self, count: usize) {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let taken = count.min(s.available);
        s.available -= taken;
        s.deficit += count - taken;
    }
}

/// A unit of model work: returns `(result, confidence)`.
pub type ModelCall<T> = Box<dyn FnOnce() -> (T, f64) + Send + 'static>;

enum Job<T> {
    Run {
        call: ModelCall<T>,
        cancelled: Arc<AtomicBool>,
        reply: Sender<(T, f64)>,
    },
    Shutdown,
}

/// A fixed-size worker pool executing model calls.
///
/// ```
/// use tt_serve::live::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let rx = pool.submit(Box::new(|| (21 * 2, 0.99)));
/// assert_eq!(rx.recv().unwrap(), (42, 0.99));
/// pool.shutdown();
/// ```
#[derive(Debug)]
pub struct WorkerPool<T: Send + 'static> {
    tx: Sender<Job<T>>,
    /// Retained so [`WorkerPool::resize`] can hand new workers the
    /// same MPMC job stream.
    rx: Receiver<Job<T>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    permits: Arc<Permits>,
    /// The provisioned worker count (the resize target). Workers being
    /// drained out by a shrink are no longer counted even while they
    /// finish their in-flight call.
    provisioned: std::sync::atomic::AtomicUsize,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let (tx, rx) = unbounded::<Job<T>>();
        let permits = Arc::new(Permits::new(workers));
        let handles = (0..workers)
            .map(|_| Self::spawn_worker(&rx, &permits))
            .collect();
        WorkerPool {
            tx,
            rx,
            workers: Mutex::new(handles),
            permits,
            provisioned: std::sync::atomic::AtomicUsize::new(workers),
        }
    }

    fn spawn_worker(rx: &Receiver<Job<T>>, permits: &Arc<Permits>) -> JoinHandle<()> {
        let rx: Receiver<Job<T>> = rx.clone();
        let permits = Arc::clone(permits);
        std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Run {
                        call,
                        cancelled,
                        reply,
                    } => {
                        if cancelled.load(Ordering::Relaxed) {
                            continue; // cancelled while queued
                        }
                        permits.acquire();
                        let out = call();
                        permits.release();
                        let _ = reply.send(out);
                    }
                    Job::Shutdown => break,
                }
            }
        })
    }

    /// The provisioned worker count (the most recent resize target).
    pub fn workers(&self) -> usize {
        self.provisioned.load(Ordering::SeqCst)
    }

    /// Live-resize the pool to `target` workers.
    ///
    /// Growing spawns fresh workers on the shared job stream and adds
    /// permits immediately. Shrinking enqueues one shutdown job per
    /// retired worker and books the permit removal as a deficit paid
    /// by completing calls — a worker always finishes its in-flight
    /// call before exiting (drain-before-reap), so no request is ever
    /// dropped by a resize. Returns the previous provisioned count.
    ///
    /// # Panics
    ///
    /// Panics if `target == 0`.
    pub fn resize(&self, target: usize) -> usize {
        assert!(target > 0, "pool needs at least one worker");
        let mut workers = self.workers.lock();
        let current = self.provisioned.load(Ordering::SeqCst);
        if target > current {
            self.permits.add(target - current);
            for _ in current..target {
                workers.push(Self::spawn_worker(&self.rx, &self.permits));
            }
        } else if target < current {
            let retire = current - target;
            self.permits.remove(retire);
            for _ in 0..retire {
                let _ = self.tx.send(Job::Shutdown);
            }
        }
        self.provisioned.store(target, Ordering::SeqCst);
        // Reap workers that have already drained out of earlier
        // shrinks; exited threads join instantly.
        let mut alive = Vec::with_capacity(workers.len());
        for handle in workers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                alive.push(handle);
            }
        }
        *workers = alive;
        current
    }

    /// Submit a call; the receiver yields its result.
    pub fn submit(&self, call: ModelCall<T>) -> Receiver<(T, f64)> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Job::Run {
                call,
                cancelled: Arc::new(AtomicBool::new(false)),
                reply: reply_tx,
            })
            .expect("pool is alive");
        reply_rx
    }

    /// Run a call on the caller's thread under the pool's concurrency
    /// bound.
    ///
    /// Holds one permit from the same pool the queued path draws on,
    /// so capacity semantics are identical to [`WorkerPool::submit`] —
    /// but the dispatch round trip (a reply channel and two context
    /// switches) disappears, which matters when the call itself is a
    /// sub-millisecond simulated model invocation.
    pub fn run_inline(&self, call: ModelCall<T>) -> (T, f64) {
        self.permits.acquire();
        let out = call();
        self.permits.release();
        out
    }

    /// Submit a cancellable call: flipping the returned flag before a
    /// worker picks the job up skips it entirely.
    pub fn submit_cancellable(&self, call: ModelCall<T>) -> (Receiver<(T, f64)>, Arc<AtomicBool>) {
        let (reply_tx, reply_rx) = unbounded();
        let cancelled = Arc::new(AtomicBool::new(false));
        self.tx
            .send(Job::Run {
                call,
                cancelled: Arc::clone(&cancelled),
                reply: reply_tx,
            })
            .expect("pool is alive");
        (reply_rx, cancelled)
    }

    /// Execute a two-version concurrent cascade: launch both, answer
    /// with the cheap result if its confidence clears `threshold`
    /// (cancelling the accurate call if it is still queued), otherwise
    /// wait for the accurate result.
    pub fn cascade(&self, cheap: ModelCall<T>, accurate: ModelCall<T>, threshold: f64) -> (T, f64) {
        let (acc_rx, acc_cancel) = self.submit_cancellable(accurate);
        let (result, confidence) = self.run_inline(cheap);
        if confidence >= threshold {
            acc_cancel.store(true, Ordering::Relaxed);
            (result, confidence)
        } else {
            acc_rx.recv().expect("accurate call completes")
        }
    }

    /// Execute a two-version cascade under a wall-clock deadline.
    ///
    /// Both versions launch immediately. A confident cheap answer wins
    /// and cancels the accurate call; an unconfident one waits for the
    /// accurate result, but only until the deadline. `Err` carries the
    /// best available fallback when the deadline fires — the degraded
    /// unconfident cheap answer if one landed, mirroring how the
    /// simulated cluster answers from its stashed fallback under
    /// deadline pressure.
    pub fn cascade_with_deadline(
        &self,
        cheap: ModelCall<T>,
        accurate: ModelCall<T>,
        threshold: f64,
        deadline: Duration,
    ) -> Result<(T, f64), Option<(T, f64)>> {
        let started = Instant::now();
        let (acc_rx, acc_cancel) = self.submit_cancellable(accurate);
        let cheap_rx = self.submit(cheap);
        match cheap_rx.recv_timeout(deadline) {
            Ok((result, confidence)) if confidence >= threshold => {
                acc_cancel.store(true, Ordering::Relaxed);
                Ok((result, confidence))
            }
            Ok(fallback) => {
                let remaining = deadline.saturating_sub(started.elapsed());
                match acc_rx.recv_timeout(remaining) {
                    Ok(out) => Ok(out),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                        acc_cancel.store(true, Ordering::Relaxed);
                        Err(Some(fallback))
                    }
                }
            }
            Err(_) => {
                acc_cancel.store(true, Ordering::Relaxed);
                Err(None)
            }
        }
    }

    /// Stop all workers (idempotent; pending jobs may be dropped).
    pub fn shutdown(&self) {
        let mut workers = self.workers.lock();
        for _ in 0..workers.len() {
            let _ = self.tx.send(Job::Shutdown);
        }
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<R: Send + 'static, E: Send + 'static> WorkerPool<Result<R, E>> {
    /// Submit fresh attempts produced by `attempt` until one succeeds
    /// or the retry budget is exhausted, sleeping the policy's capped
    /// exponential backoff between attempts — the wall-clock twin of
    /// the simulated cluster's retry events. Returns the final error
    /// when every attempt fails.
    pub fn call_with_retry<F>(&self, mut attempt: F, retry: &RetryPolicy) -> Result<(R, f64), E>
    where
        F: FnMut() -> ModelCall<Result<R, E>>,
    {
        let mut used = 0u32;
        loop {
            match self.run_inline(attempt()) {
                (Ok(result), confidence) => return Ok((result, confidence)),
                (Err(e), _) => {
                    if used >= retry.max_retries {
                        return Err(e);
                    }
                    let delay = retry.backoff(used);
                    used += 1;
                    if delay > tt_sim::SimDuration::ZERO {
                        std::thread::sleep(Duration::from_secs_f64(delay.as_secs_f64()));
                    }
                }
            }
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_submitted_work() {
        let pool = WorkerPool::new(2);
        let rx = pool.submit(Box::new(|| ("hello", 0.8)));
        assert_eq!(rx.recv().unwrap(), ("hello", 0.8));
    }

    #[test]
    fn cascade_prefers_confident_cheap_answer() {
        let pool = WorkerPool::new(2);
        let (result, conf) = pool.cascade(
            Box::new(|| ("cheap", 0.95)),
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                ("accurate", 0.99)
            }),
            0.9,
        );
        assert_eq!(result, "cheap");
        assert!(conf >= 0.9);
    }

    #[test]
    fn cascade_escalates_on_low_confidence() {
        let pool = WorkerPool::new(2);
        let (result, _) = pool.cascade(
            Box::new(|| ("cheap", 0.1)),
            Box::new(|| ("accurate", 0.99)),
            0.9,
        );
        assert_eq!(result, "accurate");
    }

    #[test]
    fn parallel_throughput() {
        let pool = Arc::new(WorkerPool::new(4));
        let receivers: Vec<_> = (0..64)
            .map(|i| pool.submit(Box::new(move || (i * i, 1.0))))
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap().0, i * i);
        }
    }

    #[test]
    fn resize_grows_and_shrinks_the_provisioned_count() {
        let pool: WorkerPool<u32> = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.resize(6), 2);
        assert_eq!(pool.workers(), 6);
        assert_eq!(pool.resize(1), 6);
        assert_eq!(pool.workers(), 1);
        // The survivor still serves.
        let rx = pool.submit(Box::new(|| (7, 1.0)));
        assert_eq!(rx.recv().unwrap().0, 7);
    }

    #[test]
    fn shrink_drains_in_flight_work_before_reaping() {
        let pool: Arc<WorkerPool<u32>> = Arc::new(WorkerPool::new(4));
        let receivers: Vec<_> = (0..16u32)
            .map(|i| {
                pool.submit(Box::new(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    (i, 1.0)
                }))
            })
            .collect();
        // Shrink while all four workers are mid-call: every queued and
        // in-flight job must still complete.
        pool.resize(1);
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().0, i as u32);
        }
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn grow_restores_parallel_capacity_after_a_shrink() {
        let pool: Arc<WorkerPool<u64>> = Arc::new(WorkerPool::new(4));
        pool.resize(1);
        pool.resize(4);
        // Four concurrent sleeps finish in roughly one sleep's time
        // only if four workers (and permits) are genuinely live.
        let started = Instant::now();
        let receivers: Vec<_> = (0..4u64)
            .map(|i| {
                pool.submit(Box::new(move || {
                    std::thread::sleep(Duration::from_millis(40));
                    (i, 1.0)
                }))
            })
            .collect();
        for rx in receivers {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(
            started.elapsed() < Duration::from_millis(140),
            "four jobs must overlap after regrowth, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn shutdown_is_idempotent() {
        let pool: WorkerPool<u8> = WorkerPool::new(2);
        pool.shutdown();
        pool.shutdown();
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let pool: WorkerPool<Result<&'static str, &'static str>> = WorkerPool::new(2);
        let attempts = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let retry = RetryPolicy {
            max_retries: 3,
            base: tt_sim::SimDuration::from_millis(1),
            cap: tt_sim::SimDuration::from_millis(2),
            multiplier: 2.0,
        };
        let result = pool.call_with_retry(
            || {
                let attempts = Arc::clone(&attempts);
                Box::new(move || {
                    if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                        (Err("flaky"), 0.0)
                    } else {
                        (Ok("answer"), 0.9)
                    }
                })
            },
            &retry,
        );
        assert_eq!(result, Ok(("answer", 0.9)));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_budget_exhausts_to_the_final_error() {
        let pool: WorkerPool<Result<u8, &'static str>> = WorkerPool::new(1);
        let retry = RetryPolicy {
            max_retries: 2,
            base: tt_sim::SimDuration::ZERO,
            cap: tt_sim::SimDuration::ZERO,
            multiplier: 1.0,
        };
        let attempts = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let result = pool.call_with_retry(
            || {
                let attempts = Arc::clone(&attempts);
                Box::new(move || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    (Err("down"), 0.0)
                })
            },
            &retry,
        );
        assert_eq!(result, Err("down"));
        assert_eq!(attempts.load(Ordering::SeqCst), 3); // 1 try + 2 retries
    }

    #[test]
    fn deadline_cascade_answers_confidently_in_time() {
        let pool = WorkerPool::new(2);
        let out = pool.cascade_with_deadline(
            Box::new(|| ("cheap", 0.95)),
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                ("accurate", 0.99)
            }),
            0.9,
            Duration::from_secs(5),
        );
        assert_eq!(out, Ok(("cheap", 0.95)));
    }

    #[test]
    fn deadline_cascade_degrades_to_the_cheap_fallback() {
        let pool = WorkerPool::new(2);
        let out = pool.cascade_with_deadline(
            Box::new(|| ("cheap", 0.1)),
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(400));
                ("accurate", 0.99)
            }),
            0.9,
            Duration::from_millis(50),
        );
        // Deadline fires before the accurate answer: the unconfident
        // cheap result is handed back as the degraded fallback.
        assert_eq!(out, Err(Some(("cheap", 0.1))));
    }

    #[test]
    fn deadline_cascade_escalates_when_time_allows() {
        let pool = WorkerPool::new(2);
        let out = pool.cascade_with_deadline(
            Box::new(|| ("cheap", 0.1)),
            Box::new(|| ("accurate", 0.99)),
            0.9,
            Duration::from_secs(5),
        );
        assert_eq!(out, Ok(("accurate", 0.99)));
    }
}
