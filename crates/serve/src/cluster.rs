//! The discrete-event serving cluster.
//!
//! A load balancer in front of per-version node pools, executing each
//! request's tier policy with real queueing: sequential cascades admit
//! the accurate version only after a disappointing cheap answer,
//! concurrent cascades admit both at arrival, and early termination
//! cancels the in-flight accurate invocation the moment a confident
//! cheap answer lands — refunding the unused busy time, which is
//! exactly where the ET policy's IaaS savings come from (paper §IV-C).

use crate::frontend::TieredFrontend;
use crate::pricing::PricingCatalog;
use crate::trace::{TraceEvent, TraceRecorder};
use tt_core::policy::{Policy, Scheduling, Termination};
use tt_core::profile::ProfileMatrix;
use tt_core::request::ServiceRequest;
use tt_sim::engine::EventToken;
use tt_sim::node::JobId;
use tt_sim::{
    CostLedger, EventQueue, InstanceType, LatencyRecorder, ServiceNode, SimDuration, SimTime,
};

/// Which device class a version's pool runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PoolDevice {
    /// CPU nodes.
    Cpu,
    /// GPU nodes.
    Gpu,
}

/// Cluster shape: one pool per service version.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Parallel capacity (node-slots) per version pool.
    pub slots_per_pool: usize,
    /// Device class per version (must match the matrix's version
    /// count).
    pub devices: Vec<PoolDevice>,
    /// Price catalog.
    pub pricing: PricingCatalog,
}

impl ClusterConfig {
    /// A uniform CPU deployment for `versions` versions.
    pub fn uniform_cpu(versions: usize, slots_per_pool: usize) -> Self {
        ClusterConfig {
            slots_per_pool,
            devices: vec![PoolDevice::Cpu; versions],
            pricing: PricingCatalog::list_prices(),
        }
    }
}

/// Everything a run reports.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request response times.
    pub latency: LatencyRecorder,
    /// Per-request queueing delays (first admission wait).
    pub queueing: LatencyRecorder,
    /// Compute + invocation charges.
    pub ledger: CostLedger,
    /// Mean quality error over responded requests.
    pub mean_err: f64,
    /// Requests served.
    pub served: usize,
    /// Accurate invocations cancelled early.
    pub early_terminations: usize,
    /// Per-request trace (sliceable by tier; CSV-exportable).
    pub trace: TraceRecorder,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Only,
    Cheap,
    Mid,
    Accurate,
}

#[derive(Debug)]
struct InFlight {
    policy: Policy,
    arrival: SimTime,
    responded: bool,
    err: f64,
    accurate_cancel: Option<(usize, JobId, EventToken)>,
}

/// The cluster simulator.
#[derive(Debug)]
pub struct ClusterSim<'a> {
    matrix: &'a ProfileMatrix,
    config: ClusterConfig,
}

impl<'a> ClusterSim<'a> {
    /// Build a cluster over a profiled service.
    ///
    /// # Panics
    ///
    /// Panics if the device list does not match the matrix's version
    /// count or the pool capacity is zero.
    pub fn new(matrix: &'a ProfileMatrix, config: ClusterConfig) -> Self {
        assert_eq!(
            config.devices.len(),
            matrix.versions(),
            "one device class per version required"
        );
        assert!(config.slots_per_pool > 0, "pools need capacity");
        ClusterSim { matrix, config }
    }

    fn instance(&self, version: usize) -> InstanceType {
        match self.config.devices[version] {
            PoolDevice::Cpu => self.config.pricing.cpu().clone(),
            PoolDevice::Gpu => self.config.pricing.gpu().clone(),
        }
    }

    /// Serve a timed, annotated request stream through `frontend`.
    ///
    /// Requests must be sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are unsorted or reference unknown payloads.
    pub fn run(
        &self,
        frontend: &TieredFrontend,
        arrivals: &[(SimTime, ServiceRequest)],
    ) -> ServingReport {
        assert!(
            arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
            "arrivals must be sorted by time"
        );

        let mut pools: Vec<ServiceNode> = (0..self.matrix.versions())
            .map(|_| ServiceNode::new(self.config.slots_per_pool))
            .collect();
        let mut ledger = CostLedger::new();
        let mut latency = LatencyRecorder::new();
        let mut queueing = LatencyRecorder::new();
        let mut total_err = 0.0;
        let mut early_terminations = 0usize;
        let mut trace = TraceRecorder::new();

        #[derive(Debug)]
        enum Event {
            Arrival(usize),
            Done { flight: usize, role: Role },
        }

        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut flights: Vec<InFlight> = Vec::with_capacity(arrivals.len());
        for (i, (at, _)) in arrivals.iter().enumerate() {
            queue.schedule(*at, Event::Arrival(i));
        }

        // Admit a version invocation for a flight; returns the job and
        // its completion token.
        let admit = |pools: &mut Vec<ServiceNode>,
                         queue: &mut EventQueue<Event>,
                         ledger: &mut CostLedger,
                         queueing: &mut LatencyRecorder,
                         flight: usize,
                         payload: usize,
                         version: usize,
                         role: Role,
                         now: SimTime,
                         record_queueing: bool|
         -> (JobId, EventToken) {
            let service = SimDuration::from_micros(self.matrix.get(payload, version).latency_us);
            let (timing, job) = pools[version].admit(now, service);
            ledger.charge_invocation(self.config.pricing.api_price());
            if record_queueing {
                queueing.record(timing.queueing(now));
            }
            let token = queue.schedule(timing.finish, Event::Done { flight, role });
            (job, token)
        };

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Arrival(i) => {
                    let request = &arrivals[i].1;
                    let policy = frontend.route(request);
                    policy
                        .validate(self.matrix.versions())
                        .expect("frontend produced a valid policy");
                    let flight_idx = flights.len();
                    flights.push(InFlight {
                        policy,
                        arrival: now,
                        responded: false,
                        err: 0.0,
                        accurate_cancel: None,
                    });
                    match policy {
                        Policy::Single { version } => {
                            admit(
                                &mut pools,
                                &mut queue,
                                &mut ledger,
                                &mut queueing,
                                flight_idx,
                                request.payload,
                                version,
                                Role::Only,
                                now,
                                true,
                            );
                        }
                        Policy::Chain3 { first, .. } => {
                            admit(
                                &mut pools,
                                &mut queue,
                                &mut ledger,
                                &mut queueing,
                                flight_idx,
                                request.payload,
                                first,
                                Role::Cheap,
                                now,
                                true,
                            );
                        }
                        Policy::Cascade {
                            cheap,
                            accurate,
                            scheduling,
                            ..
                        } => {
                            admit(
                                &mut pools,
                                &mut queue,
                                &mut ledger,
                                &mut queueing,
                                flight_idx,
                                request.payload,
                                cheap,
                                Role::Cheap,
                                now,
                                true,
                            );
                            if scheduling == Scheduling::Concurrent {
                                let (job, token) = admit(
                                    &mut pools,
                                    &mut queue,
                                    &mut ledger,
                                    &mut queueing,
                                    flight_idx,
                                    request.payload,
                                    accurate,
                                    Role::Accurate,
                                    now,
                                    false,
                                );
                                flights[flight_idx].accurate_cancel = Some((accurate, job, token));
                            }
                        }
                    }
                }
                Event::Done { flight, role } => {
                    let payload = arrivals[flight].1.payload;
                    let f = &mut flights[flight];
                    match (f.policy, role) {
                        (Policy::Single { version }, Role::Only) => {
                            f.responded = true;
                            f.err = self.matrix.get(payload, version).quality_err;
                            latency.record(now.saturating_since(f.arrival));
                            total_err += f.err;
                            trace.record(TraceEvent {
                                arrival: f.arrival,
                                responded: now,
                                tolerance: arrivals[flight].1.tolerance.value(),
                                objective: arrivals[flight].1.objective,
                                answered_by: version,
                                quality_err: f.err,
                            });
                        }
                        (
                            Policy::Cascade {
                                cheap,
                                accurate,
                                threshold,
                                scheduling,
                                termination,
                            },
                            Role::Cheap,
                        ) => {
                            let obs = self.matrix.get(payload, cheap);
                            let confident = obs.confidence >= threshold;
                            if confident && !f.responded {
                                f.responded = true;
                                f.err = obs.quality_err;
                                latency.record(now.saturating_since(f.arrival));
                                total_err += f.err;
                            trace.record(TraceEvent {
                                arrival: f.arrival,
                                responded: now,
                                tolerance: arrivals[flight].1.tolerance.value(),
                                objective: arrivals[flight].1.objective,
                                answered_by: cheap,
                                quality_err: f.err,
                            });
                                match (scheduling, termination) {
                                    (Scheduling::Concurrent, Termination::EarlyTerminate) => {
                                        if let Some((version, job, token)) =
                                            f.accurate_cancel.take()
                                        {
                                            queue.cancel(token);
                                            if pools[version].release_early(job, now) {
                                                early_terminations += 1;
                                            }
                                        }
                                    }
                                    (Scheduling::Sequential, Termination::FinishOut) => {
                                        // The paper's FO semantics: the
                                        // accurate version computes its
                                        // result regardless (cost, no
                                        // latency impact).
                                        admit(
                                            &mut pools,
                                            &mut queue,
                                            &mut ledger,
                                            &mut queueing,
                                            flight,
                                            payload,
                                            accurate,
                                            Role::Accurate,
                                            now,
                                            false,
                                        );
                                    }
                                    _ => {}
                                }
                            } else if !confident && scheduling == Scheduling::Sequential {
                                admit(
                                    &mut pools,
                                    &mut queue,
                                    &mut ledger,
                                    &mut queueing,
                                    flight,
                                    payload,
                                    accurate,
                                    Role::Accurate,
                                    now,
                                    false,
                                );
                            }
                        }
                        (Policy::Cascade { accurate, .. }, Role::Accurate) => {
                            if !f.responded {
                                f.responded = true;
                                f.err = self.matrix.get(payload, accurate).quality_err;
                                latency.record(now.saturating_since(f.arrival));
                                total_err += f.err;
                            trace.record(TraceEvent {
                                arrival: f.arrival,
                                responded: now,
                                tolerance: arrivals[flight].1.tolerance.value(),
                                objective: arrivals[flight].1.objective,
                                answered_by: accurate,
                                quality_err: f.err,
                            });
                            }
                        }
                        (
                            Policy::Chain3 {
                                first,
                                second,
                                threshold_first,
                                ..
                            },
                            Role::Cheap,
                        ) => {
                            let obs = self.matrix.get(payload, first);
                            if obs.confidence >= threshold_first {
                                f.responded = true;
                                f.err = obs.quality_err;
                                latency.record(now.saturating_since(f.arrival));
                                total_err += f.err;
                            trace.record(TraceEvent {
                                arrival: f.arrival,
                                responded: now,
                                tolerance: arrivals[flight].1.tolerance.value(),
                                objective: arrivals[flight].1.objective,
                                answered_by: first,
                                quality_err: f.err,
                            });
                            } else {
                                admit(
                                    &mut pools,
                                    &mut queue,
                                    &mut ledger,
                                    &mut queueing,
                                    flight,
                                    payload,
                                    second,
                                    Role::Mid,
                                    now,
                                    false,
                                );
                            }
                        }
                        (
                            Policy::Chain3 {
                                second,
                                third,
                                threshold_second,
                                ..
                            },
                            Role::Mid,
                        ) => {
                            let obs = self.matrix.get(payload, second);
                            if obs.confidence >= threshold_second {
                                f.responded = true;
                                f.err = obs.quality_err;
                                latency.record(now.saturating_since(f.arrival));
                                total_err += f.err;
                            trace.record(TraceEvent {
                                arrival: f.arrival,
                                responded: now,
                                tolerance: arrivals[flight].1.tolerance.value(),
                                objective: arrivals[flight].1.objective,
                                answered_by: second,
                                quality_err: f.err,
                            });
                            } else {
                                admit(
                                    &mut pools,
                                    &mut queue,
                                    &mut ledger,
                                    &mut queueing,
                                    flight,
                                    payload,
                                    third,
                                    Role::Accurate,
                                    now,
                                    false,
                                );
                            }
                        }
                        (Policy::Chain3 { third, .. }, Role::Accurate) => {
                            f.responded = true;
                            f.err = self.matrix.get(payload, third).quality_err;
                            latency.record(now.saturating_since(f.arrival));
                            total_err += f.err;
                            trace.record(TraceEvent {
                                arrival: f.arrival,
                                responded: now,
                                tolerance: arrivals[flight].1.tolerance.value(),
                                objective: arrivals[flight].1.objective,
                                answered_by: third,
                                quality_err: f.err,
                            });
                        }
                        (policy, role) => {
                            unreachable!("event role {role:?} impossible under {policy}")
                        }
                    }
                }
            }
        }

        // Charge compute: each pool's accrued busy time at its instance
        // price.
        for (version, pool) in pools.iter().enumerate() {
            ledger.charge_compute(&self.instance(version), pool.busy_time());
        }

        let served = flights.iter().filter(|f| f.responded).count();
        ServingReport {
            latency,
            queueing,
            ledger,
            mean_err: if served == 0 {
                0.0
            } else {
                total_err / served as f64
            },
            served,
            early_terminations,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_core::objective::Objective;
    use tt_core::profile::{Observation, ProfileMatrixBuilder};
    use tt_core::request::Tolerance;
    use tt_core::rulegen::RoutingRuleGenerator;

    fn matrix() -> ProfileMatrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut b = ProfileMatrixBuilder::new(vec!["fast".into(), "accurate".into()]);
        for _ in 0..200 {
            let hard: f64 = rng.gen();
            let fast_wrong = hard > 0.7;
            b.push_request(vec![
                Observation {
                    quality_err: if fast_wrong { 1.0 } else { 0.0 },
                    latency_us: 10_000,
                    cost: 0.0,
                    confidence: if fast_wrong { 0.2 } else { 0.9 },
                },
                Observation {
                    quality_err: if hard > 0.93 { 1.0 } else { 0.0 },
                    latency_us: 40_000,
                    cost: 0.0,
                    confidence: 0.9,
                },
            ]);
        }
        b.build().unwrap()
    }

    fn frontend(matrix: &ProfileMatrix) -> TieredFrontend {
        let gen = RoutingRuleGenerator::with_defaults(matrix, 0.99, 3).unwrap();
        TieredFrontend::new(vec![
            gen.generate(&[0.0, 0.05, 0.10, 0.5], Objective::ResponseTime)
                .unwrap(),
            gen.generate(&[0.0, 0.05, 0.10, 0.5], Objective::Cost).unwrap(),
        ])
    }

    fn uncontended_arrivals(
        matrix: &ProfileMatrix,
        tolerance: f64,
    ) -> Vec<(SimTime, ServiceRequest)> {
        (0..matrix.requests())
            .map(|r| {
                (
                    SimTime::from_micros(r as u64 * 1_000_000),
                    ServiceRequest::new(
                        r,
                        Tolerance::new(tolerance).unwrap(),
                        Objective::ResponseTime,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn serves_every_request() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 4));
        let report = sim.run(&fe, &uncontended_arrivals(&m, 0.05));
        assert_eq!(report.served, m.requests());
        assert_eq!(report.latency.len(), m.requests());
    }

    #[test]
    fn uncontended_latency_matches_closed_form() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 64));
        for tol in [0.0, 0.10, 0.5] {
            let arrivals = uncontended_arrivals(&m, tol);
            let report = sim.run(&fe, &arrivals);
            let policy = fe.route(&arrivals[0].1);
            let perf = policy.evaluate(&m, None).unwrap();
            let sim_mean = report.latency.summary().unwrap().mean() * 1_000.0; // ms -> µs
            assert!(
                (sim_mean - perf.mean_latency_us).abs() / perf.mean_latency_us < 0.01,
                "tol {tol}: sim {sim_mean} vs closed form {}",
                perf.mean_latency_us
            );
            assert!((report.mean_err - perf.mean_err).abs() < 1e-9);
        }
    }

    #[test]
    fn queueing_appears_under_load() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 1));
        // All requests arrive at once on a single-slot pool: massive queueing.
        let arrivals: Vec<(SimTime, ServiceRequest)> = (0..50)
            .map(|r| {
                (
                    SimTime::ZERO,
                    ServiceRequest::new(r, Tolerance::ZERO, Objective::ResponseTime),
                )
            })
            .collect();
        let report = sim.run(&fe, &arrivals);
        assert_eq!(report.served, 50);
        assert!(report.queueing.summary().unwrap().max() > 0.0);
        assert!(
            report.latency.summary().unwrap().max()
                > report.latency.summary().unwrap().min() * 10.0
        );
    }

    #[test]
    fn early_termination_happens_and_refunds_compute() {
        let m = matrix();
        let gen = RoutingRuleGenerator::with_defaults(&m, 0.99, 3).unwrap();
        // Force a concurrent + ET policy via a hand-built frontend: use
        // a rules object whose only tier maps to it. Simplest: run the
        // cluster twice with hand-made frontends and compare compute
        // cost.
        let _ = gen;
        use tt_core::policy::{Scheduling, Termination};
        let conc_et = Policy::Cascade {
            cheap: 0,
            accurate: 1,
            threshold: 0.5,
            scheduling: Scheduling::Concurrent,
            termination: Termination::EarlyTerminate,
        };
        let conc_fo = Policy::Cascade {
            cheap: 0,
            accurate: 1,
            threshold: 0.5,
            scheduling: Scheduling::Concurrent,
            termination: Termination::FinishOut,
        };
        let run_policy = |policy: Policy| {
            let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 64));
            // A frontend that always routes to `policy`: emulate by
            // driving the executor directly through a single-tier rule
            // set is cumbersome; instead exercise the private path via a
            // custom frontend built from a generator with one candidate.
            let gen = RoutingRuleGenerator::new(
                &m,
                vec![policy],
                0.9,
                1,
                tt_stats::TrialLimits {
                    min_trials: 2,
                    max_trials: 4,
                },
            )
            .unwrap();
            let rules = gen.generate(&[10.0], Objective::ResponseTime).unwrap();
            let fe = TieredFrontend::new(vec![rules]);
            let arrivals: Vec<(SimTime, ServiceRequest)> = (0..m.requests())
                .map(|r| {
                    (
                        SimTime::from_micros(r as u64 * 1_000_000),
                        ServiceRequest::new(
                            r,
                            Tolerance::new(10.0).unwrap(),
                            Objective::ResponseTime,
                        ),
                    )
                })
                .collect();
            sim.run(&fe, &arrivals)
        };
        let et = run_policy(conc_et);
        let fo = run_policy(conc_fo);
        assert!(et.early_terminations > 0);
        assert_eq!(fo.early_terminations, 0);
        assert!(
            et.ledger.compute_cost() < fo.ledger.compute_cost(),
            "ET should refund compute: {} vs {}",
            et.ledger.compute_cost(),
            fo.ledger.compute_cost()
        );
        // Same responses either way.
        assert!((et.mean_err - fo.mean_err).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_arrivals_panic() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 4));
        let arrivals = vec![
            (
                SimTime::from_micros(10),
                ServiceRequest::new(0, Tolerance::ZERO, Objective::ResponseTime),
            ),
            (
                SimTime::ZERO,
                ServiceRequest::new(1, Tolerance::ZERO, Objective::ResponseTime),
            ),
        ];
        sim.run(&fe, &arrivals);
    }
}
