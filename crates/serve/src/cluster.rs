//! The discrete-event serving cluster.
//!
//! A load balancer in front of per-version node pools, executing each
//! request's tier policy with real queueing: sequential cascades admit
//! the accurate version only after a disappointing cheap answer,
//! concurrent cascades admit both at arrival, and early termination
//! cancels the in-flight accurate invocation the moment a confident
//! cheap answer lands — refunding the unused busy time, which is
//! exactly where the ET policy's IaaS savings come from (paper §IV-C).
//!
//! On top of the fault-free core sits a resilience layer
//! ([`crate::resilience`]): invocations may crash, error, or straggle
//! according to a seeded [`tt_sim::FaultPlan`], and the cluster responds
//! with per-request retries (capped exponential backoff), per-pool
//! circuit breakers that shed load to sibling pools, deadlines derived
//! from each tier's guaranteed latency, hedged launches for sequential
//! cascades, and graceful degradation to cheaper versions — with the
//! accuracy cost of that degradation reported as tolerance violations.
//! [`ClusterSim::run`] uses [`ResilienceConfig::disabled`], which
//! reproduces the fault-free simulation bit-for-bit.

use crate::frontend::TieredFrontend;
use crate::pricing::PricingCatalog;
use crate::resilience::{CircuitBreaker, ResilienceConfig, ResilienceStats, RetryPolicy};
use crate::trace::{TraceEvent, TraceRecorder};
use tt_core::policy::{Policy, Scheduling, Termination};
use tt_core::profile::ProfileMatrix;
use tt_core::request::ServiceRequest;
use tt_sim::engine::EventToken;
use tt_sim::node::JobId;
use tt_sim::{
    CostLedger, EventQueue, FaultPlan, InstanceType, JobCompletion, LatencyRecorder, ServiceNode,
    SimDuration, SimTime,
};

/// Which device class a version's pool runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PoolDevice {
    /// CPU nodes.
    Cpu,
    /// GPU nodes.
    Gpu,
}

/// Cluster shape: one pool per service version.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Parallel capacity (node-slots) per version pool.
    pub slots_per_pool: usize,
    /// Device class per version (must match the matrix's version
    /// count).
    pub devices: Vec<PoolDevice>,
    /// Price catalog.
    pub pricing: PricingCatalog,
    /// When `Some(n)`, the run's [`TraceRecorder`] keeps only the most
    /// recent `n` events (per-tier aggregates still cover the whole
    /// stream); `None` retains every event — the simulation default,
    /// preserving exact CSV export and replay comparison.
    pub trace_retention: Option<usize>,
}

impl ClusterConfig {
    /// A uniform CPU deployment for `versions` versions.
    pub fn uniform_cpu(versions: usize, slots_per_pool: usize) -> Self {
        ClusterConfig {
            slots_per_pool,
            devices: vec![PoolDevice::Cpu; versions],
            pricing: PricingCatalog::list_prices(),
            trace_retention: None,
        }
    }
}

/// Everything a run reports.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request response times.
    pub latency: LatencyRecorder,
    /// Per-request queueing delays (first admission wait).
    pub queueing: LatencyRecorder,
    /// Compute + invocation charges.
    pub ledger: CostLedger,
    /// Mean quality error over responded requests.
    pub mean_err: f64,
    /// Requests served.
    pub served: usize,
    /// Accurate invocations cancelled early.
    pub early_terminations: usize,
    /// Per-request trace (sliceable by tier; CSV-exportable).
    pub trace: TraceRecorder,
    /// What the resilience layer observed (all zeros under
    /// [`ResilienceConfig::disabled`], except `total_requests`).
    pub resilience: ResilienceStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Only,
    Cheap,
    Mid,
    Accurate,
    /// Serving in place of the policy's version: a breaker shed or a
    /// failure re-route to a cheaper sibling.
    Degraded,
}

#[derive(Debug)]
struct InFlight {
    policy: Policy,
    arrival: SimTime,
    responded: bool,
    dropped: bool,
    err: f64,
    /// Invocations (and pending retries) currently in flight.
    outstanding: u32,
    /// Retry budget consumed (shared across the request's stages).
    retries_used: u32,
    /// Whether the cascade's accurate version has been launched.
    escalated: bool,
    accurate_cancel: Option<(usize, JobId, EventToken)>,
    hedge_token: Option<EventToken>,
    deadline_token: Option<EventToken>,
    /// A usable-but-unconfident answer stashed for degradation.
    fallback: Option<(usize, f64)>,
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    Done {
        flight: usize,
        role: Role,
        version: usize,
        completion: JobCompletion,
    },
    Retry {
        flight: usize,
        role: Role,
        version: usize,
    },
    Hedge {
        flight: usize,
    },
    Deadline {
        flight: usize,
    },
}

/// The cluster simulator.
#[derive(Debug)]
pub struct ClusterSim<'a> {
    matrix: &'a ProfileMatrix,
    config: ClusterConfig,
}

/// Mutable state of one simulation run, shared by the event handlers.
struct RunState<'m, 'r> {
    matrix: &'m ProfileMatrix,
    pricing: &'r PricingCatalog,
    arrivals: &'r [(SimTime, ServiceRequest)],
    pools: Vec<ServiceNode>,
    queue: EventQueue<Event>,
    flights: Vec<InFlight>,
    ledger: CostLedger,
    latency: LatencyRecorder,
    queueing: LatencyRecorder,
    total_err: f64,
    early_terminations: usize,
    trace: TraceRecorder,
    stats: ResilienceStats,
    faults: FaultPlan,
    retry: RetryPolicy,
    /// One breaker per pool; empty when breakers are disabled.
    breakers: Vec<CircuitBreaker>,
    deadline_factor: Option<f64>,
    hedge_factor: Option<f64>,
    degrade: bool,
    /// Versions ordered by mean profiled latency, ascending; "cheaper"
    /// for degradation purposes means earlier in this order.
    version_order: Vec<usize>,
    /// Deadline per distinct routed policy (memoised `evaluate` calls).
    deadline_cache: Vec<(Policy, SimDuration)>,
}

impl<'m, 'r> RunState<'m, 'r> {
    fn allows(&mut self, version: usize, now: SimTime) -> bool {
        match self.breakers.get_mut(version) {
            Some(b) => b.allows(now),
            None => true,
        }
    }

    fn breaker_record(&mut self, version: usize, success: bool, now: SimTime) {
        if let Some(b) = self.breakers.get_mut(version) {
            b.record(success, now);
        }
    }

    /// Admit one invocation of `version` for `flight`, drawing its
    /// fault outcome, charging the invocation, and scheduling its
    /// completion.
    fn launch(
        &mut self,
        flight: usize,
        role: Role,
        version: usize,
        now: SimTime,
        record_queueing: bool,
    ) -> (JobId, EventToken) {
        let payload = self.arrivals[flight].1.payload;
        let service = SimDuration::from_micros(self.matrix.get(payload, version).latency_us);
        let fault = self.faults.draw(version);
        let (timing, job, completion) = self.pools[version].admit_faulty(now, service, fault);
        self.ledger.charge_invocation(self.pricing.api_price());
        if record_queueing {
            self.queueing.record(timing.queueing(now));
        }
        let token = self.queue.schedule(
            timing.finish,
            Event::Done {
                flight,
                role,
                version,
                completion,
            },
        );
        self.flights[flight].outstanding += 1;
        (job, token)
    }

    /// Deliver `flight`'s answer: the single place a response is
    /// recorded (latency, error aggregate, trace event).
    fn respond(&mut self, flight: usize, now: SimTime, version: usize, err: f64) {
        let request = &self.arrivals[flight].1;
        let f = &mut self.flights[flight];
        f.responded = true;
        f.err = err;
        self.latency.record(now.saturating_since(f.arrival));
        self.total_err += err;
        self.trace.record(TraceEvent {
            arrival: f.arrival,
            responded: now,
            tolerance: request.tolerance.value(),
            objective: request.objective,
            answered_by: version,
            quality_err: err,
        });
    }

    /// Respond with an answer the tier policy did not intend (stash or
    /// cheaper re-route), counting it — and, when its extra quality
    /// error exceeds the request's advertised tolerance relative to the
    /// fault-free policy outcome, counting a tolerance violation.
    fn respond_degraded(&mut self, flight: usize, now: SimTime, version: usize, err: f64) {
        self.stats.degraded_responses += 1;
        let request = &self.arrivals[flight].1;
        let intended = self.flights[flight]
            .policy
            .execute(self.matrix, request.payload)
            .quality_err;
        if err - intended > request.tolerance.value() + 1e-12 {
            self.stats.tolerance_violations_under_fault += 1;
        }
        self.respond(flight, now, version, err);
    }

    /// The deadline span for a policy: `deadline_factor` times the
    /// tier's guaranteed (mean) latency.
    fn deadline_for(&mut self, policy: Policy) -> Option<SimDuration> {
        let factor = self.deadline_factor?;
        if let Some((_, d)) = self.deadline_cache.iter().find(|(p, _)| *p == policy) {
            return Some(*d);
        }
        let mean = policy
            .evaluate(self.matrix, None)
            .expect("routed policy evaluates")
            .mean_latency_us;
        let d = SimDuration::from_micros((mean * factor).round() as u64);
        self.deadline_cache.push((policy, d));
        Some(d)
    }

    /// The nearest strictly-cheaper version whose pool accepts work.
    fn degrade_target(&mut self, from: usize, now: SimTime) -> Option<usize> {
        let pos = self.version_order.iter().position(|&v| v == from)?;
        let order = self.version_order.clone();
        order[..pos]
            .iter()
            .rev()
            .copied()
            .find(|&v| self.allows(v, now))
    }

    /// A sibling pool for shedding: nearest cheaper preferred, else
    /// nearest more expensive — answering beats dropping.
    fn shed_target(&mut self, from: usize, now: SimTime) -> Option<usize> {
        let pos = self.version_order.iter().position(|&v| v == from)?;
        let order = self.version_order.clone();
        order[..pos]
            .iter()
            .rev()
            .copied()
            .chain(order[pos + 1..].iter().copied())
            .find(|&v| self.allows(v, now))
    }

    fn drop_request(&mut self, flight: usize, _now: SimTime) {
        if self.flights[flight].dropped || self.flights[flight].responded {
            return;
        }
        self.flights[flight].dropped = true;
        self.stats.dropped_requests += 1;
        if let Some(tok) = self.flights[flight].deadline_token.take() {
            self.queue.cancel(tok);
        }
        if let Some(tok) = self.flights[flight].hedge_token.take() {
            self.queue.cancel(tok);
        }
    }

    /// Resolve a request that has nothing left in flight: answer from
    /// the stashed fallback, re-route to a cheaper version, or drop.
    fn degrade_or_drop(&mut self, flight: usize, failed_version: usize, now: SimTime) {
        let f = &self.flights[flight];
        if f.responded || f.dropped || f.outstanding > 0 {
            return;
        }
        if let Some((version, err)) = f.fallback {
            self.respond_degraded(flight, now, version, err);
            return;
        }
        if self.degrade {
            if let Some(alt) = self.degrade_target(failed_version, now) {
                self.launch(flight, Role::Degraded, alt, now, false);
                return;
            }
        }
        self.drop_request(flight, now);
    }

    /// Safety net after every completion: an unresolved request with no
    /// in-flight work must degrade or drop, never hang.
    fn settle(&mut self, flight: usize, version: usize, now: SimTime) {
        let f = &self.flights[flight];
        if f.responded || f.dropped || f.outstanding > 0 {
            return;
        }
        self.degrade_or_drop(flight, version, now);
    }

    /// Launch a later policy stage, respecting breakers; a blocked
    /// stage sheds onward to the next one.
    fn guarded_escalate(&mut self, flight: usize, role: Role, version: usize, now: SimTime) {
        if self.allows(version, now) {
            self.launch(flight, role, version, now, false);
            return;
        }
        self.stats.breaker_sheds += 1;
        if role == Role::Mid {
            if let Policy::Chain3 { third, .. } = self.flights[flight].policy {
                if self.allows(third, now) {
                    self.launch(flight, Role::Accurate, third, now, false);
                    return;
                }
                self.stats.breaker_sheds += 1;
            }
        }
        // No further stage: settle()/degrade_or_drop picks it up.
    }

    /// A failed (or breaker-blocked) stage is treated like an
    /// unconfident one: move to the policy's next stage if it exists.
    fn escalate_after_failure(&mut self, flight: usize, role: Role, now: SimTime) {
        let policy = self.flights[flight].policy;
        match (policy, role) {
            (Policy::Cascade { accurate, .. }, Role::Cheap) if !self.flights[flight].escalated => {
                if let Some(tok) = self.flights[flight].hedge_token.take() {
                    self.queue.cancel(tok);
                }
                self.flights[flight].escalated = true;
                self.guarded_escalate(flight, Role::Accurate, accurate, now);
            }
            (Policy::Chain3 { second, .. }, Role::Cheap) => {
                self.guarded_escalate(flight, Role::Mid, second, now);
            }
            (Policy::Chain3 { third, .. }, Role::Mid) => {
                self.guarded_escalate(flight, Role::Accurate, third, now);
            }
            _ => {}
        }
    }

    /// First launch of a request's entry stage, shedding around open
    /// breakers (to later stages, then siblings) or dropping.
    fn launch_entry(&mut self, flight: usize, role: Role, version: usize, now: SimTime) {
        if self.allows(version, now) {
            self.launch(flight, role, version, now, true);
            return;
        }
        self.stats.breaker_sheds += 1;
        let policy = self.flights[flight].policy;
        match (policy, role) {
            (Policy::Cascade { accurate, .. }, Role::Cheap) => {
                if self.allows(accurate, now) {
                    self.flights[flight].escalated = true;
                    self.launch(flight, Role::Accurate, accurate, now, true);
                    return;
                }
                self.stats.breaker_sheds += 1;
            }
            (Policy::Chain3 { second, third, .. }, Role::Cheap) => {
                if self.allows(second, now) {
                    self.launch(flight, Role::Mid, second, now, true);
                    return;
                }
                self.stats.breaker_sheds += 1;
                if self.allows(third, now) {
                    self.launch(flight, Role::Accurate, third, now, true);
                    return;
                }
                self.stats.breaker_sheds += 1;
            }
            _ => {}
        }
        if let Some(alt) = self.shed_target(version, now) {
            self.launch(flight, Role::Degraded, alt, now, true);
            return;
        }
        self.drop_request(flight, now);
    }

    fn on_arrival(&mut self, frontend: &TieredFrontend, index: usize, now: SimTime) {
        let request = &self.arrivals[index].1;
        let policy = frontend.route(request);
        policy
            .validate(self.matrix.versions())
            .expect("frontend produced a valid policy");
        let flight = self.flights.len();
        self.flights.push(InFlight {
            policy,
            arrival: now,
            responded: false,
            dropped: false,
            err: 0.0,
            outstanding: 0,
            retries_used: 0,
            escalated: false,
            accurate_cancel: None,
            hedge_token: None,
            deadline_token: None,
            fallback: None,
        });
        match policy {
            Policy::Single { version } => {
                self.launch_entry(flight, Role::Only, version, now);
            }
            Policy::Chain3 { first, .. } => {
                self.launch_entry(flight, Role::Cheap, first, now);
            }
            Policy::Cascade {
                cheap,
                accurate,
                scheduling,
                ..
            } => {
                self.launch_entry(flight, Role::Cheap, cheap, now);
                if scheduling == Scheduling::Concurrent
                    && !self.flights[flight].dropped
                    && !self.flights[flight].escalated
                {
                    if self.allows(accurate, now) {
                        self.flights[flight].escalated = true;
                        let (job, token) =
                            self.launch(flight, Role::Accurate, accurate, now, false);
                        self.flights[flight].accurate_cancel = Some((accurate, job, token));
                    } else {
                        self.stats.breaker_sheds += 1;
                    }
                }
                if scheduling == Scheduling::Sequential && !self.flights[flight].dropped {
                    if let Some(h) = self.hedge_factor {
                        let nominal = self.matrix.get(request.payload, cheap).latency_us;
                        let fire_at =
                            now + SimDuration::from_micros((nominal as f64 * h).round() as u64);
                        let tok = self.queue.schedule(fire_at, Event::Hedge { flight });
                        self.flights[flight].hedge_token = Some(tok);
                    }
                }
            }
        }
        if !self.flights[flight].dropped {
            if let Some(span) = self.deadline_for(policy) {
                let tok = self.queue.schedule(now + span, Event::Deadline { flight });
                self.flights[flight].deadline_token = Some(tok);
            }
        }
    }

    fn on_success(&mut self, flight: usize, role: Role, version: usize, now: SimTime) {
        let matrix = self.matrix;
        let payload = self.arrivals[flight].1.payload;
        let policy = self.flights[flight].policy;
        match (policy, role) {
            (_, Role::Degraded) => {
                if !self.flights[flight].responded {
                    let err = matrix.get(payload, version).quality_err;
                    self.respond_degraded(flight, now, version, err);
                }
            }
            (Policy::Single { .. }, Role::Only) => {
                if !self.flights[flight].responded {
                    let err = matrix.get(payload, version).quality_err;
                    self.respond(flight, now, version, err);
                }
            }
            (
                Policy::Cascade {
                    cheap,
                    accurate,
                    threshold,
                    scheduling,
                    termination,
                },
                Role::Cheap,
            ) => {
                let obs = matrix.get(payload, cheap);
                let confident = obs.confidence >= threshold;
                if confident && !self.flights[flight].responded {
                    if let Some(tok) = self.flights[flight].hedge_token.take() {
                        self.queue.cancel(tok);
                    }
                    self.respond(flight, now, cheap, obs.quality_err);
                    match (scheduling, termination) {
                        (Scheduling::Concurrent, Termination::EarlyTerminate) => {
                            if let Some((v, job, token)) =
                                self.flights[flight].accurate_cancel.take()
                            {
                                if self.queue.cancel(token) {
                                    self.flights[flight].outstanding -= 1;
                                }
                                if self.pools[v].release_early(job, now) {
                                    self.early_terminations += 1;
                                }
                            }
                        }
                        (Scheduling::Sequential, Termination::FinishOut)
                            if !self.flights[flight].escalated =>
                        {
                            // The paper's FO semantics: the accurate
                            // version computes its result regardless
                            // (cost, no latency impact).
                            self.flights[flight].escalated = true;
                            self.guarded_escalate(flight, Role::Accurate, accurate, now);
                        }
                        _ => {}
                    }
                } else if !confident {
                    self.flights[flight].fallback = Some((cheap, obs.quality_err));
                    if scheduling == Scheduling::Sequential
                        && !self.flights[flight].escalated
                        && !self.flights[flight].responded
                    {
                        if let Some(tok) = self.flights[flight].hedge_token.take() {
                            self.queue.cancel(tok);
                        }
                        self.flights[flight].escalated = true;
                        self.guarded_escalate(flight, Role::Accurate, accurate, now);
                    }
                }
            }
            (Policy::Cascade { accurate, .. }, Role::Accurate) => {
                if !self.flights[flight].responded {
                    let err = matrix.get(payload, accurate).quality_err;
                    self.respond(flight, now, accurate, err);
                }
            }
            (
                Policy::Chain3 {
                    first,
                    second,
                    threshold_first,
                    ..
                },
                Role::Cheap,
            ) => {
                let obs = matrix.get(payload, first);
                if obs.confidence >= threshold_first {
                    if !self.flights[flight].responded {
                        self.respond(flight, now, first, obs.quality_err);
                    }
                } else {
                    self.flights[flight].fallback = Some((first, obs.quality_err));
                    if !self.flights[flight].responded {
                        self.guarded_escalate(flight, Role::Mid, second, now);
                    }
                }
            }
            (
                Policy::Chain3 {
                    second,
                    third,
                    threshold_second,
                    ..
                },
                Role::Mid,
            ) => {
                let obs = matrix.get(payload, second);
                if obs.confidence >= threshold_second {
                    if !self.flights[flight].responded {
                        self.respond(flight, now, second, obs.quality_err);
                    }
                } else {
                    self.flights[flight].fallback = Some((second, obs.quality_err));
                    if !self.flights[flight].responded {
                        self.guarded_escalate(flight, Role::Accurate, third, now);
                    }
                }
            }
            (Policy::Chain3 { third, .. }, Role::Accurate) => {
                if !self.flights[flight].responded {
                    let err = matrix.get(payload, third).quality_err;
                    self.respond(flight, now, third, err);
                }
            }
            (policy, role) => {
                unreachable!("event role {role:?} impossible under {policy}")
            }
        }
    }

    fn on_failure(&mut self, flight: usize, role: Role, version: usize, now: SimTime) {
        if self.flights[flight].responded || self.flights[flight].dropped {
            return;
        }
        if self.flights[flight].retries_used < self.retry.max_retries && self.allows(version, now) {
            let used = self.flights[flight].retries_used;
            self.flights[flight].retries_used += 1;
            self.stats.retries += 1;
            let delay = self.retry.backoff(used);
            self.flights[flight].outstanding += 1;
            self.queue.schedule(
                now + delay,
                Event::Retry {
                    flight,
                    role,
                    version,
                },
            );
            return;
        }
        self.escalate_after_failure(flight, role, now);
    }

    fn handle(&mut self, frontend: &TieredFrontend, now: SimTime, event: Event) {
        match event {
            Event::Arrival(index) => self.on_arrival(frontend, index, now),
            Event::Done {
                flight,
                role,
                version,
                completion,
            } => {
                self.flights[flight].outstanding -= 1;
                if role == Role::Accurate {
                    self.flights[flight].accurate_cancel = None;
                }
                match completion {
                    JobCompletion::Failed => {
                        self.stats.failed_invocations += 1;
                        self.breaker_record(version, false, now);
                        self.on_failure(flight, role, version, now);
                    }
                    JobCompletion::Slow => {
                        self.stats.slow_invocations += 1;
                        self.breaker_record(version, true, now);
                        self.on_success(flight, role, version, now);
                    }
                    JobCompletion::Success => {
                        self.breaker_record(version, true, now);
                        self.on_success(flight, role, version, now);
                    }
                }
                self.settle(flight, version, now);
            }
            Event::Retry {
                flight,
                role,
                version,
            } => {
                self.flights[flight].outstanding -= 1;
                if !self.flights[flight].responded && !self.flights[flight].dropped {
                    if self.allows(version, now) {
                        self.launch(flight, role, version, now, false);
                    } else {
                        // The pool's breaker opened during the backoff.
                        self.escalate_after_failure(flight, role, now);
                    }
                }
                self.settle(flight, version, now);
            }
            Event::Hedge { flight } => {
                self.flights[flight].hedge_token = None;
                let f = &self.flights[flight];
                if f.responded || f.dropped || f.escalated {
                    return;
                }
                if let Policy::Cascade { accurate, .. } = f.policy {
                    if self.allows(accurate, now) {
                        self.stats.hedges += 1;
                        self.flights[flight].escalated = true;
                        let (job, token) =
                            self.launch(flight, Role::Accurate, accurate, now, false);
                        self.flights[flight].accurate_cancel = Some((accurate, job, token));
                    }
                    // Pool unavailable: the hedge is opportunistic —
                    // abort it and leave escalation to the cheap result.
                }
            }
            Event::Deadline { flight } => {
                self.flights[flight].deadline_token = None;
                let f = &self.flights[flight];
                if f.responded || f.dropped {
                    return;
                }
                self.stats.deadline_misses += 1;
                if let Some((version, err)) = f.fallback {
                    // Deadline pressure: answer now with what we have
                    // rather than keep waiting on the intended version.
                    self.respond_degraded(flight, now, version, err);
                }
            }
        }
    }
}

impl<'a> ClusterSim<'a> {
    /// Build a cluster over a profiled service.
    ///
    /// # Panics
    ///
    /// Panics if the device list does not match the matrix's version
    /// count or the pool capacity is zero.
    pub fn new(matrix: &'a ProfileMatrix, config: ClusterConfig) -> Self {
        assert_eq!(
            config.devices.len(),
            matrix.versions(),
            "one device class per version required"
        );
        assert!(config.slots_per_pool > 0, "pools need capacity");
        ClusterSim { matrix, config }
    }

    fn instance(&self, version: usize) -> InstanceType {
        match self.config.devices[version] {
            PoolDevice::Cpu => self.config.pricing.cpu().clone(),
            PoolDevice::Gpu => self.config.pricing.gpu().clone(),
        }
    }

    /// Serve a timed, annotated request stream through `frontend` with
    /// every resilience mechanism disabled (the fault-free baseline).
    ///
    /// Requests must be sorted by arrival time.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are unsorted or reference unknown payloads.
    pub fn run(
        &self,
        frontend: &TieredFrontend,
        arrivals: &[(SimTime, ServiceRequest)],
    ) -> ServingReport {
        self.run_resilient(
            frontend,
            arrivals,
            ResilienceConfig::disabled(self.matrix.versions()),
        )
    }

    /// Serve a request stream under fault injection and resilience
    /// policies.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are unsorted, the fault plan's pool count
    /// does not match the matrix, or the retry policy is invalid.
    pub fn run_resilient(
        &self,
        frontend: &TieredFrontend,
        arrivals: &[(SimTime, ServiceRequest)],
        resilience: ResilienceConfig,
    ) -> ServingReport {
        assert!(
            arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
            "arrivals must be sorted by time"
        );
        assert_eq!(
            resilience.faults.pools(),
            self.matrix.versions(),
            "fault plan must cover every version pool"
        );
        resilience
            .retry
            .validate()
            .expect("retry policy must be valid");

        let versions = self.matrix.versions();
        let mean_latency: Vec<f64> = (0..versions)
            .map(|v| {
                (0..self.matrix.requests())
                    .map(|r| self.matrix.get(r, v).latency_us as f64)
                    .sum::<f64>()
                    / self.matrix.requests().max(1) as f64
            })
            .collect();
        let mut version_order: Vec<usize> = (0..versions).collect();
        version_order.sort_by(|&a, &b| {
            mean_latency[a]
                .partial_cmp(&mean_latency[b])
                .expect("finite latencies")
                .then(a.cmp(&b))
        });

        let mut state = RunState {
            matrix: self.matrix,
            pricing: &self.config.pricing,
            arrivals,
            pools: (0..versions)
                .map(|_| ServiceNode::new(self.config.slots_per_pool))
                .collect(),
            queue: EventQueue::new(),
            flights: Vec::with_capacity(arrivals.len()),
            ledger: CostLedger::new(),
            latency: LatencyRecorder::new(),
            queueing: LatencyRecorder::new(),
            total_err: 0.0,
            early_terminations: 0,
            trace: match self.config.trace_retention {
                Some(retain) => TraceRecorder::bounded(retain),
                None => TraceRecorder::new(),
            },
            stats: ResilienceStats {
                total_requests: arrivals.len(),
                ..ResilienceStats::default()
            },
            faults: resilience.faults,
            retry: resilience.retry,
            breakers: match resilience.breaker {
                Some(policy) => (0..versions).map(|_| CircuitBreaker::new(policy)).collect(),
                None => Vec::new(),
            },
            deadline_factor: resilience.deadline_factor,
            hedge_factor: resilience.hedge_factor,
            degrade: resilience.degrade,
            version_order,
            deadline_cache: Vec::new(),
        };

        for (i, (at, _)) in arrivals.iter().enumerate() {
            state.queue.schedule(*at, Event::Arrival(i));
        }
        while let Some((now, event)) = state.queue.pop() {
            state.handle(frontend, now, event);
        }

        // Charge compute: each pool's accrued busy time at its instance
        // price.
        for (version, pool) in state.pools.iter().enumerate() {
            state
                .ledger
                .charge_compute(&self.instance(version), pool.busy_time());
        }
        state.stats.breaker_transitions = state.breakers.iter().map(|b| b.transitions()).sum();

        let served = state.flights.iter().filter(|f| f.responded).count();
        ServingReport {
            latency: state.latency,
            queueing: state.queueing,
            ledger: state.ledger,
            mean_err: if served == 0 {
                0.0
            } else {
                state.total_err / served as f64
            },
            served,
            early_terminations: state.early_terminations,
            trace: state.trace,
            resilience: state.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::BreakerPolicy;
    use tt_core::objective::Objective;
    use tt_core::profile::{Observation, ProfileMatrixBuilder};
    use tt_core::request::Tolerance;
    use tt_core::rulegen::RoutingRuleGenerator;
    use tt_sim::FaultRates;

    fn matrix() -> ProfileMatrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut b = ProfileMatrixBuilder::new(vec!["fast".into(), "accurate".into()]);
        for _ in 0..200 {
            let hard: f64 = rng.gen();
            let fast_wrong = hard > 0.7;
            b.push_request(vec![
                Observation {
                    quality_err: if fast_wrong { 1.0 } else { 0.0 },
                    latency_us: 10_000,
                    cost: 0.0,
                    confidence: if fast_wrong { 0.2 } else { 0.9 },
                },
                Observation {
                    quality_err: if hard > 0.93 { 1.0 } else { 0.0 },
                    latency_us: 40_000,
                    cost: 0.0,
                    confidence: 0.9,
                },
            ]);
        }
        b.build().unwrap()
    }

    fn frontend(matrix: &ProfileMatrix) -> TieredFrontend {
        let gen = RoutingRuleGenerator::with_defaults(matrix, 0.99, 3).unwrap();
        TieredFrontend::new(vec![
            gen.generate(&[0.0, 0.05, 0.10, 0.5], Objective::ResponseTime)
                .unwrap(),
            gen.generate(&[0.0, 0.05, 0.10, 0.5], Objective::Cost)
                .unwrap(),
        ])
    }

    fn uncontended_arrivals(
        matrix: &ProfileMatrix,
        tolerance: f64,
    ) -> Vec<(SimTime, ServiceRequest)> {
        (0..matrix.requests())
            .map(|r| {
                (
                    SimTime::from_micros(r as u64 * 1_000_000),
                    ServiceRequest::new(
                        r,
                        Tolerance::new(tolerance).unwrap(),
                        Objective::ResponseTime,
                    ),
                )
            })
            .collect()
    }

    /// A frontend that always routes to `policy`, for driving specific
    /// execution paths (tier tolerance 10.0 matches the requests built
    /// by [`forced_arrivals`]).
    fn forced_frontend(m: &ProfileMatrix, policy: Policy) -> TieredFrontend {
        let gen = RoutingRuleGenerator::new(
            m,
            vec![policy],
            0.9,
            1,
            tt_stats::TrialLimits {
                min_trials: 2,
                max_trials: 4,
            },
        )
        .unwrap();
        let rules = gen.generate(&[10.0], Objective::ResponseTime).unwrap();
        TieredFrontend::new(vec![rules])
    }

    fn forced_arrivals(m: &ProfileMatrix) -> Vec<(SimTime, ServiceRequest)> {
        (0..m.requests())
            .map(|r| {
                (
                    SimTime::from_micros(r as u64 * 1_000_000),
                    ServiceRequest::new(r, Tolerance::new(10.0).unwrap(), Objective::ResponseTime),
                )
            })
            .collect()
    }

    #[test]
    fn serves_every_request() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 4));
        let report = sim.run(&fe, &uncontended_arrivals(&m, 0.05));
        assert_eq!(report.served, m.requests());
        assert_eq!(report.latency.len(), m.requests());
    }

    #[test]
    fn uncontended_latency_matches_closed_form() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 64));
        for tol in [0.0, 0.10, 0.5] {
            let arrivals = uncontended_arrivals(&m, tol);
            let report = sim.run(&fe, &arrivals);
            let policy = fe.route(&arrivals[0].1);
            let perf = policy.evaluate(&m, None).unwrap();
            let sim_mean = report.latency.summary().unwrap().mean() * 1_000.0; // ms -> µs
            assert!(
                (sim_mean - perf.mean_latency_us).abs() / perf.mean_latency_us < 0.01,
                "tol {tol}: sim {sim_mean} vs closed form {}",
                perf.mean_latency_us
            );
            assert!((report.mean_err - perf.mean_err).abs() < 1e-9);
        }
    }

    #[test]
    fn queueing_appears_under_load() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 1));
        // All requests arrive at once on a single-slot pool: massive queueing.
        let arrivals: Vec<(SimTime, ServiceRequest)> = (0..50)
            .map(|r| {
                (
                    SimTime::ZERO,
                    ServiceRequest::new(r, Tolerance::ZERO, Objective::ResponseTime),
                )
            })
            .collect();
        let report = sim.run(&fe, &arrivals);
        assert_eq!(report.served, 50);
        assert!(report.queueing.summary().unwrap().max() > 0.0);
        assert!(
            report.latency.summary().unwrap().max()
                > report.latency.summary().unwrap().min() * 10.0
        );
    }

    #[test]
    fn early_termination_happens_and_refunds_compute() {
        let m = matrix();
        let conc_et = Policy::Cascade {
            cheap: 0,
            accurate: 1,
            threshold: 0.5,
            scheduling: Scheduling::Concurrent,
            termination: Termination::EarlyTerminate,
        };
        let conc_fo = Policy::Cascade {
            cheap: 0,
            accurate: 1,
            threshold: 0.5,
            scheduling: Scheduling::Concurrent,
            termination: Termination::FinishOut,
        };
        let run_policy = |policy: Policy| {
            let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 64));
            sim.run(&forced_frontend(&m, policy), &forced_arrivals(&m))
        };
        let et = run_policy(conc_et);
        let fo = run_policy(conc_fo);
        assert!(et.early_terminations > 0);
        assert_eq!(fo.early_terminations, 0);
        assert!(
            et.ledger.compute_cost() < fo.ledger.compute_cost(),
            "ET should refund compute: {} vs {}",
            et.ledger.compute_cost(),
            fo.ledger.compute_cost()
        );
        // Same responses either way.
        assert!((et.mean_err - fo.mean_err).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_arrivals_panic() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 4));
        let arrivals = vec![
            (
                SimTime::from_micros(10),
                ServiceRequest::new(0, Tolerance::ZERO, Objective::ResponseTime),
            ),
            (
                SimTime::ZERO,
                ServiceRequest::new(1, Tolerance::ZERO, Objective::ResponseTime),
            ),
        ];
        sim.run(&fe, &arrivals);
    }

    #[test]
    fn disabled_resilience_is_bit_for_bit_identical() {
        let m = matrix();
        let fe = frontend(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 4));
        let arrivals = uncontended_arrivals(&m, 0.05);
        let plain = sim.run(&fe, &arrivals);
        let resilient = sim.run_resilient(&fe, &arrivals, ResilienceConfig::disabled(2));
        assert_eq!(plain.latency.samples_ms(), resilient.latency.samples_ms());
        assert_eq!(plain.queueing.samples_ms(), resilient.queueing.samples_ms());
        assert_eq!(plain.trace.events(), resilient.trace.events());
        assert_eq!(
            plain.ledger.total().as_dollars(),
            resilient.ledger.total().as_dollars()
        );
        assert_eq!(plain.served, resilient.served);
        assert_eq!(plain.early_terminations, resilient.early_terminations);
        assert_eq!(resilient.resilience.failed_invocations, 0);
        assert_eq!(resilient.resilience.dropped_requests, 0);
        assert_eq!(resilient.resilience.availability(), 1.0);
    }

    #[test]
    fn retries_recover_availability_under_crashes() {
        let m = matrix();
        let fe = forced_frontend(&m, Policy::Single { version: 1 });
        let arrivals = forced_arrivals(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 8));
        let crashy = |retry: RetryPolicy| ResilienceConfig {
            faults: FaultPlan::new(7, vec![FaultRates::NONE, FaultRates::crash_only(0.4)]),
            retry,
            ..ResilienceConfig::disabled(2)
        };
        let without = sim.run_resilient(&fe, &arrivals, crashy(RetryPolicy::NONE));
        let with = sim.run_resilient(&fe, &arrivals, crashy(RetryPolicy::immediate(5)));
        assert!(
            without.resilience.availability() < 0.8,
            "crashes with no retries must drop requests: {}",
            without.resilience.availability()
        );
        assert!(
            with.resilience.availability() > without.resilience.availability(),
            "retries must recover availability: {} vs {}",
            with.resilience.availability(),
            without.resilience.availability()
        );
        assert!(with.resilience.retries > 0);
        assert!(
            with.resilience.availability() > 0.95,
            "five retries against p=0.4 crashes leave almost nothing dropped: {}",
            with.resilience.availability()
        );
    }

    #[test]
    fn degradation_answers_and_counts_tolerance_violations() {
        let m = matrix();
        // Single{1}: every invocation of v1 crashes; with degradation
        // on, answers come from v0 instead. v0 is wrong on ~30% of
        // payloads while v1 is intended — those degraded answers exceed
        // a tolerance of zero... but the forced tier advertises 10.0,
        // so craft the check on both sides of the violation boundary by
        // comparing against what the fault-free policy would have done.
        let fe = forced_frontend(&m, Policy::Single { version: 1 });
        let arrivals = forced_arrivals(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 8));
        let config = ResilienceConfig {
            faults: FaultPlan::new(3, vec![FaultRates::NONE, FaultRates::crash_only(1.0)]),
            degrade: true,
            ..ResilienceConfig::disabled(2)
        };
        let report = sim.run_resilient(&fe, &arrivals, config);
        assert_eq!(
            report.served,
            m.requests(),
            "degradation answers everything"
        );
        assert_eq!(report.resilience.degraded_responses, m.requests());
        // Tolerance 10.0 absorbs any quality error in [0, 1]: no
        // violations despite universal degradation.
        assert_eq!(report.resilience.tolerance_violations_under_fault, 0);
        assert!(report.mean_err > 0.0, "cheap answers carry error");
    }

    #[test]
    fn degradation_violations_respect_the_advertised_tolerance() {
        // Tight-tolerance variant: build a matrix whose cheap version
        // errs on every payload, deploy real rules at tolerance 0.0
        // (which routes to the accurate baseline), and crash the
        // accurate pool. Every degraded answer then violates.
        let mut b = ProfileMatrixBuilder::new(vec!["fast".into(), "accurate".into()]);
        for _ in 0..50 {
            b.push_request(vec![
                Observation {
                    quality_err: 1.0,
                    latency_us: 10_000,
                    cost: 0.0,
                    confidence: 0.1,
                },
                Observation {
                    quality_err: 0.0,
                    latency_us: 40_000,
                    cost: 0.0,
                    confidence: 0.9,
                },
            ]);
        }
        let m = b.build().unwrap();
        let gen = RoutingRuleGenerator::with_defaults(&m, 0.9, 5).unwrap();
        let fe = TieredFrontend::new(vec![gen.generate(&[0.0], Objective::ResponseTime).unwrap()]);
        let arrivals: Vec<(SimTime, ServiceRequest)> = (0..m.requests())
            .map(|r| {
                (
                    SimTime::from_micros(r as u64 * 1_000_000),
                    ServiceRequest::new(r, Tolerance::ZERO, Objective::ResponseTime),
                )
            })
            .collect();
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 8));
        let config = ResilienceConfig {
            faults: FaultPlan::new(3, vec![FaultRates::NONE, FaultRates::crash_only(1.0)]),
            degrade: true,
            ..ResilienceConfig::disabled(2)
        };
        let report = sim.run_resilient(&fe, &arrivals, config);
        assert_eq!(report.served, m.requests());
        assert!(report.resilience.degraded_responses > 0);
        assert_eq!(
            report.resilience.tolerance_violations_under_fault,
            report.resilience.degraded_responses,
            "every degraded answer exceeds a zero tolerance"
        );
    }

    #[test]
    fn breaker_trips_and_sheds_to_sibling_pool() {
        let m = matrix();
        let fe = forced_frontend(&m, Policy::Single { version: 1 });
        let arrivals = forced_arrivals(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 8));
        let config = ResilienceConfig {
            faults: FaultPlan::new(9, vec![FaultRates::NONE, FaultRates::crash_only(1.0)]),
            breaker: Some(BreakerPolicy {
                failure_threshold: 3,
                cooldown: SimDuration::from_secs_f64(30.0),
            }),
            degrade: true,
            ..ResilienceConfig::disabled(2)
        };
        let report = sim.run_resilient(&fe, &arrivals, config);
        assert!(
            report.resilience.breaker_transitions > 0,
            "breaker must trip"
        );
        assert!(
            report.resilience.breaker_sheds > 0,
            "open breaker sheds load"
        );
        // Shed requests are answered by the sibling pool.
        assert_eq!(report.served, m.requests());
    }

    #[test]
    fn hedging_caps_straggler_latency_for_sequential_cascades() {
        let m = matrix();
        let seq_et = Policy::Cascade {
            cheap: 0,
            accurate: 1,
            threshold: 0.5,
            scheduling: Scheduling::Sequential,
            termination: Termination::EarlyTerminate,
        };
        let fe = forced_frontend(&m, seq_et);
        let arrivals = forced_arrivals(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 8));
        let straggly = |hedge: Option<f64>| ResilienceConfig {
            faults: FaultPlan::new(
                17,
                vec![
                    FaultRates {
                        crash: 0.0,
                        transient: 0.0,
                        straggler: 0.3,
                        straggler_factor: 20.0,
                    },
                    FaultRates::NONE,
                ],
            ),
            hedge_factor: hedge,
            ..ResilienceConfig::disabled(2)
        };
        let unhedged = sim.run_resilient(&fe, &arrivals, straggly(None));
        let hedged = sim.run_resilient(&fe, &arrivals, straggly(Some(3.0)));
        assert!(
            hedged.resilience.hedges > 0,
            "stragglers must trigger hedges"
        );
        let unhedged_p_max = unhedged.latency.summary().unwrap().max();
        let hedged_p_max = hedged.latency.summary().unwrap().max();
        assert!(
            hedged_p_max < unhedged_p_max,
            "hedging must cap straggler tail latency: {hedged_p_max} vs {unhedged_p_max}"
        );
    }

    #[test]
    fn deadlines_convert_straggler_waits_into_degraded_answers() {
        let m = matrix();
        let seq_et = Policy::Cascade {
            cheap: 0,
            accurate: 1,
            threshold: 0.5,
            scheduling: Scheduling::Sequential,
            termination: Termination::EarlyTerminate,
        };
        let fe = forced_frontend(&m, seq_et);
        let arrivals = forced_arrivals(&m);
        let sim = ClusterSim::new(&m, ClusterConfig::uniform_cpu(2, 8));
        let config = ResilienceConfig {
            faults: FaultPlan::new(
                23,
                vec![
                    FaultRates::NONE,
                    FaultRates {
                        crash: 0.0,
                        transient: 0.0,
                        straggler: 0.5,
                        straggler_factor: 50.0,
                    },
                ],
            ),
            deadline_factor: Some(3.0),
            ..ResilienceConfig::disabled(2)
        };
        let report = sim.run_resilient(&fe, &arrivals, config);
        assert!(report.resilience.deadline_misses > 0);
        assert!(
            report.resilience.degraded_responses > 0,
            "deadline pressure answers from the stashed cheap result"
        );
        assert_eq!(report.served, m.requests());
    }
}
