//! The consumer-facing frontend: annotation parsing and tier routing.
//!
//! The paper's request shape:
//!
//! ```text
//! curl --header Tolerance: 0.01
//!      --header Objective: response-time
//!      --data-binary @input-file-name
//!      -X POST http://cloud-service/compute
//! ```
//!
//! [`parse_annotations`] understands that header block;
//! [`TieredFrontend`] holds the deployed routing rules per objective and
//! resolves each annotated request to the policy that will serve it.

use std::collections::HashMap;
use tt_core::objective::Objective;
use tt_core::request::{ServiceRequest, Tolerance};
use tt_core::rulegen::RoutingRules;
use tt_core::Policy;

/// Why an annotation block failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotationError {
    /// A non-empty line had no `name: value` shape.
    MalformedLine(String),
    /// The `Tolerance:` value is not a number.
    InvalidTolerance(String),
    /// The `Tolerance:` value parsed but is out of range (negative or
    /// non-finite).
    ToleranceOutOfRange(String),
    /// The `Objective:` value names no known objective.
    InvalidObjective(String),
    /// A header name the API does not define.
    UnknownHeader(String),
    /// The same header appeared more than once.
    DuplicateHeader(String),
}

impl std::fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotationError::MalformedLine(line) => {
                write!(f, "malformed header line `{line}`")
            }
            AnnotationError::InvalidTolerance(value) => {
                write!(f, "invalid tolerance `{value}`")
            }
            AnnotationError::ToleranceOutOfRange(value) => {
                write!(
                    f,
                    "tolerance `{value}` out of range (must be finite and >= 0)"
                )
            }
            AnnotationError::InvalidObjective(value) => {
                write!(f, "invalid objective `{value}`")
            }
            AnnotationError::UnknownHeader(name) => {
                write!(f, "unknown annotation header `{name}`")
            }
            AnnotationError::DuplicateHeader(name) => {
                write!(f, "duplicate annotation header `{name}`")
            }
        }
    }
}

impl std::error::Error for AnnotationError {}

/// Parse a `Tolerance:` / `Objective:` annotation block (one header per
/// line, case-insensitive names, missing objective defaults to
/// response-time, missing tolerance to zero).
///
/// The block may come straight off a wire: lines ending in `\r\n` (the
/// HTTP line terminator) are handled identically to bare `\n`.
///
/// # Errors
///
/// Returns an [`AnnotationError`] describing the first malformed,
/// unknown, out-of-range, or duplicated header.
pub fn parse_annotations(headers: &str) -> Result<(Tolerance, Objective), AnnotationError> {
    let mut tolerance: Option<Tolerance> = None;
    let mut objective: Option<Objective> = None;
    for line in headers.lines() {
        // `str::lines` splits on `\n` only; shed the `\r` of a CRLF
        // terminator explicitly before the whitespace trim so the
        // behaviour is wire-exact rather than incidental.
        let line = line.strip_suffix('\r').unwrap_or(line).trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| AnnotationError::MalformedLine(line.to_string()))?;
        match name.trim().to_ascii_lowercase().as_str() {
            "tolerance" => {
                if tolerance.is_some() {
                    return Err(AnnotationError::DuplicateHeader("Tolerance".to_string()));
                }
                let value = value.trim();
                let v: f64 = value
                    .parse()
                    .map_err(|_| AnnotationError::InvalidTolerance(value.to_string()))?;
                tolerance = Some(
                    Tolerance::new(v)
                        .map_err(|_| AnnotationError::ToleranceOutOfRange(value.to_string()))?,
                );
            }
            "objective" => {
                if objective.is_some() {
                    return Err(AnnotationError::DuplicateHeader("Objective".to_string()));
                }
                objective =
                    Some(Objective::parse(value).map_err(|_| {
                        AnnotationError::InvalidObjective(value.trim().to_string())
                    })?);
            }
            other => return Err(AnnotationError::UnknownHeader(other.to_string())),
        }
    }
    Ok((
        tolerance.unwrap_or(Tolerance::ZERO),
        objective.unwrap_or(Objective::ResponseTime),
    ))
}

/// The deployed frontend: routing rules per objective.
#[derive(Debug, Clone)]
pub struct TieredFrontend {
    rules: HashMap<Objective, RoutingRules>,
}

impl TieredFrontend {
    /// Deploy rules for one or both objectives.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty.
    pub fn new(rules: Vec<RoutingRules>) -> Self {
        assert!(!rules.is_empty(), "frontend needs at least one rule set");
        TieredFrontend {
            rules: rules.into_iter().map(|r| (r.objective(), r)).collect(),
        }
    }

    /// The policy that will serve an annotated request. Requests for an
    /// objective with no deployed rules fall back to the other
    /// objective's baseline (most accurate) version — the service never
    /// rejects a request over tiering.
    pub fn route(&self, request: &ServiceRequest) -> Policy {
        if let Some(rules) = self.rules.get(&request.objective) {
            return rules.lookup(request.tolerance);
        }
        let any = self.rules.values().next().expect("non-empty rules");
        Policy::Single {
            version: any.baseline_version(),
        }
    }

    /// Parse an annotation block and route in one step.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn route_annotated(
        &self,
        headers: &str,
        payload: usize,
    ) -> Result<(ServiceRequest, Policy), AnnotationError> {
        let (tolerance, objective) = parse_annotations(headers)?;
        let request = ServiceRequest::new(payload, tolerance, objective);
        let policy = self.route(&request);
        Ok((request, policy))
    }

    /// The deployed rule sets.
    pub fn rules(&self) -> impl Iterator<Item = &RoutingRules> {
        self.rules.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let (tol, obj) = parse_annotations("Tolerance: 0.01\nObjective: response-time").unwrap();
        assert_eq!(tol.value(), 0.01);
        assert_eq!(obj, Objective::ResponseTime);
    }

    #[test]
    fn defaults_and_case_insensitivity() {
        let (tol, obj) = parse_annotations("").unwrap();
        assert_eq!(tol, Tolerance::ZERO);
        assert_eq!(obj, Objective::ResponseTime);
        let (tol, obj) = parse_annotations("TOLERANCE: 0.10\nobjective: COST").unwrap();
        assert_eq!(tol.value(), 0.10);
        assert_eq!(obj, Objective::Cost);
    }

    #[test]
    fn rejects_malformed_input_with_typed_errors() {
        assert_eq!(
            parse_annotations("Tolerance 0.01"),
            Err(AnnotationError::MalformedLine("Tolerance 0.01".into()))
        );
        assert_eq!(
            parse_annotations("Tolerance: lots"),
            Err(AnnotationError::InvalidTolerance("lots".into()))
        );
        assert_eq!(
            parse_annotations("Tolerance: -0.3"),
            Err(AnnotationError::ToleranceOutOfRange("-0.3".into()))
        );
        assert_eq!(
            parse_annotations("Tolerance: NaN"),
            Err(AnnotationError::ToleranceOutOfRange("NaN".into()))
        );
        assert_eq!(
            parse_annotations("X-Custom: 1"),
            Err(AnnotationError::UnknownHeader("x-custom".into()))
        );
        assert_eq!(
            parse_annotations("Objective: teleport"),
            Err(AnnotationError::InvalidObjective("teleport".into()))
        );
    }

    #[test]
    fn tolerates_crlf_line_endings_from_the_wire() {
        // The full paper example as an HTTP/1.1 client would send it.
        let (tol, obj) =
            parse_annotations("Tolerance: 0.01\r\nObjective: response-time\r\n").unwrap();
        assert_eq!(tol.value(), 0.01);
        assert_eq!(obj, Objective::ResponseTime);
        // A lone CR-terminated final line and mixed endings both parse.
        let (tol, obj) = parse_annotations("tolerance: 0.05\r\nOBJECTIVE: cost\r").unwrap();
        assert_eq!(tol.value(), 0.05);
        assert_eq!(obj, Objective::Cost);
        // CRLF must not mask a malformed value: the error's payload is
        // the clean value, CR excluded.
        assert_eq!(
            parse_annotations("Tolerance: lots\r\n"),
            Err(AnnotationError::InvalidTolerance("lots".into()))
        );
    }

    #[test]
    fn every_error_variant_is_reachable_with_crlf_endings() {
        // One case per variant, all wire-framed, pinning the typed
        // errors the HTTP layer maps to 400 bodies.
        assert_eq!(
            parse_annotations("Tolerance 0.01\r\n"),
            Err(AnnotationError::MalformedLine("Tolerance 0.01".into()))
        );
        assert_eq!(
            parse_annotations("Tolerance: abc\r\n"),
            Err(AnnotationError::InvalidTolerance("abc".into()))
        );
        assert_eq!(
            parse_annotations("Tolerance: -1\r\n"),
            Err(AnnotationError::ToleranceOutOfRange("-1".into()))
        );
        assert_eq!(
            parse_annotations("Objective: accuracy\r\n"),
            Err(AnnotationError::InvalidObjective("accuracy".into()))
        );
        assert_eq!(
            parse_annotations("Priority: high\r\n"),
            Err(AnnotationError::UnknownHeader("priority".into()))
        );
        assert_eq!(
            parse_annotations("Tolerance: 0.01\r\nTolerance: 0.05\r\n"),
            Err(AnnotationError::DuplicateHeader("Tolerance".into()))
        );
    }

    #[test]
    fn rejects_duplicate_headers() {
        assert_eq!(
            parse_annotations("Tolerance: 0.01\nTolerance: 0.05"),
            Err(AnnotationError::DuplicateHeader("Tolerance".into()))
        );
        assert_eq!(
            parse_annotations("Objective: cost\nOBJECTIVE: cost"),
            Err(AnnotationError::DuplicateHeader("Objective".into()))
        );
        // Distinct headers are of course fine in either order.
        assert!(parse_annotations("Objective: cost\nTolerance: 0.05").is_ok());
    }

    #[test]
    fn errors_render_and_satisfy_the_error_trait() {
        let err: Box<dyn std::error::Error> =
            Box::new(AnnotationError::DuplicateHeader("Tolerance".into()));
        assert!(err.to_string().contains("duplicate"));
        assert!(parse_annotations("Tolerance: lots")
            .unwrap_err()
            .to_string()
            .contains("invalid tolerance `lots`"));
    }

    // TieredFrontend routing is exercised end-to-end in the cluster
    // tests and the workspace integration tests, where real routing
    // rules exist.
}
