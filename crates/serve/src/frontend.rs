//! The consumer-facing frontend: annotation parsing and tier routing.
//!
//! The paper's request shape:
//!
//! ```text
//! curl --header Tolerance: 0.01
//!      --header Objective: response-time
//!      --data-binary @input-file-name
//!      -X POST http://cloud-service/compute
//! ```
//!
//! [`parse_annotations`] understands that header block;
//! [`TieredFrontend`] holds the deployed routing rules per objective and
//! resolves each annotated request to the policy that will serve it.

use std::collections::HashMap;
use tt_core::objective::Objective;
use tt_core::request::{ServiceRequest, Tolerance};
use tt_core::rulegen::RoutingRules;
use tt_core::Policy;

/// Parse a `Tolerance:` / `Objective:` annotation block (one header per
/// line, case-insensitive names, missing objective defaults to
/// response-time, missing tolerance to zero).
///
/// # Errors
///
/// Returns a message for malformed values or unknown headers.
pub fn parse_annotations(headers: &str) -> Result<(Tolerance, Objective), String> {
    let mut tolerance = Tolerance::ZERO;
    let mut objective = Objective::ResponseTime;
    for line in headers.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line `{line}`"))?;
        match name.trim().to_ascii_lowercase().as_str() {
            "tolerance" => {
                let v: f64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid tolerance `{}`", value.trim()))?;
                tolerance = Tolerance::new(v).map_err(|e| e.to_string())?;
            }
            "objective" => {
                objective = Objective::parse(value)?;
            }
            other => return Err(format!("unknown annotation header `{other}`")),
        }
    }
    Ok((tolerance, objective))
}

/// The deployed frontend: routing rules per objective.
#[derive(Debug, Clone)]
pub struct TieredFrontend {
    rules: HashMap<Objective, RoutingRules>,
}

impl TieredFrontend {
    /// Deploy rules for one or both objectives.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty.
    pub fn new(rules: Vec<RoutingRules>) -> Self {
        assert!(!rules.is_empty(), "frontend needs at least one rule set");
        TieredFrontend {
            rules: rules.into_iter().map(|r| (r.objective(), r)).collect(),
        }
    }

    /// The policy that will serve an annotated request. Requests for an
    /// objective with no deployed rules fall back to the other
    /// objective's baseline (most accurate) version — the service never
    /// rejects a request over tiering.
    pub fn route(&self, request: &ServiceRequest) -> Policy {
        if let Some(rules) = self.rules.get(&request.objective) {
            return rules.lookup(request.tolerance);
        }
        let any = self.rules.values().next().expect("non-empty rules");
        Policy::Single {
            version: any.baseline_version(),
        }
    }

    /// Parse an annotation block and route in one step.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn route_annotated(&self, headers: &str, payload: usize) -> Result<(ServiceRequest, Policy), String> {
        let (tolerance, objective) = parse_annotations(headers)?;
        let request = ServiceRequest::new(payload, tolerance, objective);
        let policy = self.route(&request);
        Ok((request, policy))
    }

    /// The deployed rule sets.
    pub fn rules(&self) -> impl Iterator<Item = &RoutingRules> {
        self.rules.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let (tol, obj) = parse_annotations("Tolerance: 0.01\nObjective: response-time").unwrap();
        assert_eq!(tol.value(), 0.01);
        assert_eq!(obj, Objective::ResponseTime);
    }

    #[test]
    fn defaults_and_case_insensitivity() {
        let (tol, obj) = parse_annotations("").unwrap();
        assert_eq!(tol, Tolerance::ZERO);
        assert_eq!(obj, Objective::ResponseTime);
        let (tol, obj) = parse_annotations("TOLERANCE: 0.10\nobjective: COST").unwrap();
        assert_eq!(tol.value(), 0.10);
        assert_eq!(obj, Objective::Cost);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_annotations("Tolerance 0.01").is_err());
        assert!(parse_annotations("Tolerance: lots").is_err());
        assert!(parse_annotations("Tolerance: -0.3").is_err());
        assert!(parse_annotations("X-Custom: 1").is_err());
        assert!(parse_annotations("Objective: teleport").is_err());
    }

    // TieredFrontend routing is exercised end-to-end in the cluster
    // tests and the workspace integration tests, where real routing
    // rules exist.
}
