//! Serving traces and per-tier service-level reporting.
//!
//! The cluster reports aggregates; operators want per-tier views: does
//! the 1%-tolerance tier actually get the latency it pays for? A
//! [`TraceRecorder`] collects one [`TraceEvent`] per served request and
//! slices the stream by (tolerance, objective) tier.
//!
//! The default recorder retains every event — simulations want the
//! full stream for CSV export and exact replay comparison. A live
//! server does not: [`TraceRecorder::bounded`] keeps only the last `N`
//! events in a ring buffer while folding *every* event into running
//! per-tier aggregates (request counts, a fixed-point quality-error
//! sum, and a bounded latency histogram), so [`TraceRecorder::by_tier`]
//! stays accurate over the whole stream at O(1) memory.

use std::collections::{BTreeMap, VecDeque};
use tt_core::objective::Objective;
use tt_sim::{LatencyRecorder, SimDuration, SimTime};

/// Fixed-point scale for quality-error sums (1e9 units per 1.0 of
/// error): integer addition keeps aggregate means independent of the
/// order threads complete requests in.
const ERR_NANOS: f64 = 1e9;

/// One served request.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEvent {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Response instant.
    pub responded: SimTime,
    /// The consumer's tolerance annotation.
    pub tolerance: f64,
    /// The consumer's objective annotation.
    pub objective: Objective,
    /// Which version's answer was returned.
    pub answered_by: usize,
    /// Quality error of the returned answer.
    pub quality_err: f64,
}

impl TraceEvent {
    /// Response time.
    pub fn response_time(&self) -> SimDuration {
        self.responded.saturating_since(self.arrival)
    }

    fn tier_key(&self) -> (String, u32) {
        (
            self.objective.to_string(),
            (self.tolerance * 1000.0).round() as u32,
        )
    }
}

/// Per-tier aggregate view of a trace.
#[derive(Debug, Clone)]
pub struct TierStats {
    /// Requests in the tier.
    pub requests: usize,
    /// Response-time distribution.
    pub latency: LatencyRecorder,
    /// Mean quality error.
    pub mean_err: f64,
}

/// Running per-tier aggregate for the bounded recorder.
#[derive(Debug, Clone)]
struct TierAgg {
    requests: usize,
    err_nanos: u128,
    latency: LatencyRecorder,
}

impl TierAgg {
    fn new() -> Self {
        TierAgg {
            requests: 0,
            err_nanos: 0,
            latency: LatencyRecorder::bounded(),
        }
    }
}

/// Collects trace events and slices them by tier.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: VecDeque<TraceEvent>,
    /// `Some(retain)` in bounded mode: the ring keeps at most `retain`
    /// events while `aggs` folds every event ever recorded.
    retention: Option<usize>,
    aggs: BTreeMap<(String, u32), TierAgg>,
    total: usize,
}

impl TraceRecorder {
    /// An unbounded recorder retaining every event (the simulation
    /// default).
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// A bounded recorder: the ring keeps the most recent `retain`
    /// events (for CSV export and spot inspection) while per-tier
    /// aggregates cover the entire stream.
    pub fn bounded(retain: usize) -> Self {
        TraceRecorder {
            events: VecDeque::new(),
            retention: Some(retain.max(1)),
            aggs: BTreeMap::new(),
            total: 0,
        }
    }

    /// Whether this recorder evicts old events.
    pub fn is_bounded(&self) -> bool {
        self.retention.is_some()
    }

    /// Record one served request.
    pub fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        if let Some(retain) = self.retention {
            let agg = self
                .aggs
                .entry(event.tier_key())
                .or_insert_with(TierAgg::new);
            agg.requests += 1;
            agg.err_nanos += (event.quality_err.max(0.0) * ERR_NANOS).round() as u128;
            agg.latency.record(event.response_time());
            self.events.push_back(event);
            while self.events.len() > retain {
                self.events.pop_front();
            }
        } else {
            self.events.push_back(event);
        }
    }

    /// Retained events in recording order — the complete stream for an
    /// unbounded recorder, the most recent window for a bounded one
    /// (see [`TraceRecorder::total_recorded`] for the stream length).
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Total events ever recorded, including any evicted from a
    /// bounded ring.
    pub fn total_recorded(&self) -> usize {
        self.total
    }

    /// Aggregate by (objective, tolerance-in-tenths-of-percent) tier.
    /// Covers the complete stream in both modes: the bounded recorder
    /// serves this from its running aggregates, not the retained ring.
    pub fn by_tier(&self) -> BTreeMap<(String, u32), TierStats> {
        if self.retention.is_some() {
            return self
                .aggs
                .iter()
                .map(|(k, agg)| {
                    (
                        k.clone(),
                        TierStats {
                            requests: agg.requests,
                            latency: agg.latency.clone(),
                            mean_err: agg.err_nanos as f64 / ERR_NANOS / agg.requests as f64,
                        },
                    )
                })
                .collect();
        }
        let mut map: BTreeMap<(String, u32), (LatencyRecorder, f64, usize)> = BTreeMap::new();
        for e in &self.events {
            let slot = map.entry(e.tier_key()).or_default();
            slot.0.record(e.response_time());
            slot.1 += e.quality_err;
            slot.2 += 1;
        }
        map.into_iter()
            .map(|(k, (latency, err, n))| {
                (
                    k,
                    TierStats {
                        requests: n,
                        latency,
                        mean_err: err / n as f64,
                    },
                )
            })
            .collect()
    }

    /// Render the retained events as a CSV string (`arrival_us,
    /// responded_us,tolerance,objective,answered_by,quality_err`), for
    /// offline analysis.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("arrival_us,responded_us,tolerance,objective,answered_by,quality_err\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                e.arrival.as_micros(),
                e.responded.as_micros(),
                e.tolerance,
                e.objective,
                e.answered_by,
                e.quality_err
            ));
        }
        out
    }
}

/// Capacity planning: the pool slots needed to keep utilization below
/// `target_utilization` at `rate_per_sec` arrivals with the given mean
/// service time.
///
/// # Panics
///
/// Panics unless `0 < target_utilization < 1` and inputs are positive.
pub fn required_slots(
    rate_per_sec: f64,
    mean_service: SimDuration,
    target_utilization: f64,
) -> usize {
    assert!(
        rate_per_sec > 0.0 && rate_per_sec.is_finite(),
        "rate must be positive"
    );
    assert!(
        target_utilization > 0.0 && target_utilization < 1.0,
        "utilization target must be in (0, 1)"
    );
    let offered = rate_per_sec * mean_service.as_secs_f64();
    (offered / target_utilization).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(tol: f64, obj: Objective, at_us: u64, took_us: u64, err: f64) -> TraceEvent {
        TraceEvent {
            arrival: SimTime::from_micros(at_us),
            responded: SimTime::from_micros(at_us + took_us),
            tolerance: tol,
            objective: obj,
            answered_by: 0,
            quality_err: err,
        }
    }

    #[test]
    fn tier_slicing_groups_correctly() {
        let mut rec = TraceRecorder::new();
        rec.record(event(0.01, Objective::ResponseTime, 0, 100, 0.0));
        rec.record(event(0.01, Objective::ResponseTime, 10, 300, 1.0));
        rec.record(event(0.10, Objective::Cost, 20, 50, 0.0));
        let tiers = rec.by_tier();
        assert_eq!(tiers.len(), 2);
        let rt = &tiers[&("response-time".to_string(), 10)];
        assert_eq!(rt.requests, 2);
        assert!((rt.mean_err - 0.5).abs() < 1e-12);
        assert_eq!(tiers[&("cost".to_string(), 100)].requests, 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut rec = TraceRecorder::new();
        rec.record(event(0.05, Objective::Cost, 5, 10, 0.0));
        let csv = rec.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("arrival_us"));
        assert!(csv.contains("cost"));
    }

    #[test]
    fn bounded_ring_evicts_but_aggregates_everything() {
        let mut rec = TraceRecorder::bounded(4);
        assert!(rec.is_bounded());
        for i in 0..20u64 {
            rec.record(event(0.05, Objective::Cost, i * 10, 100 + i, 0.1));
        }
        assert_eq!(rec.events().len(), 4, "ring holds only the newest events");
        assert_eq!(rec.total_recorded(), 20);
        assert_eq!(
            rec.events().front().unwrap().arrival,
            SimTime::from_micros(160)
        );
        let tiers = rec.by_tier();
        let tier = &tiers[&("cost".to_string(), 50)];
        assert_eq!(tier.requests, 20, "aggregates cover evicted events too");
        assert!((tier.mean_err - 0.1).abs() < 1e-9);
        assert_eq!(tier.latency.len(), 20);
        // CSV exports just the retained window.
        assert_eq!(rec.to_csv().lines().count(), 5);
    }

    #[test]
    fn capacity_planning_matches_littles_law() {
        // 100 req/s x 0.2s service = 20 busy servers; at 80% target -> 25.
        let slots = required_slots(100.0, SimDuration::from_millis(200), 0.8);
        assert_eq!(slots, 25);
        // Tiny load still needs one slot.
        assert_eq!(required_slots(0.1, SimDuration::from_millis(1), 0.9), 1);
    }

    #[test]
    #[should_panic(expected = "utilization target")]
    fn capacity_rejects_full_utilization() {
        required_slots(10.0, SimDuration::from_millis(10), 1.0);
    }
}
