//! The self-healing rule supervisor: a deterministic automaton that
//! closes the loop between *detection* (the SLO sentinel's per-window
//! verdicts, per-version health counters) and *action* (quarantining a
//! persistently failing version, swapping regenerated routing rules,
//! and rolling the swap back if it made things worse).
//!
//! The automaton is deliberately pure: it owns no clocks, sockets, or
//! RNGs. The serving layer feeds it one [`WindowObservation`] per
//! sentinel window and executes whatever [`SupervisorAction`] comes
//! back (regenerate + hot-swap rules on `Quarantine`, restore the
//! saved rules on `Rollback`). Given the same observation sequence it
//! produces the same transition sequence — the property the chaos
//! tests pin down across thread counts.
//!
//! ```text
//!            unhealthy streak ≥ N          violations worsen
//! Steady ───────────────────────▶ Canary ───────────────────▶ Steady (rolled back, cooldown)
//!    ▲                              │
//!    └──────────────────────────────┘
//!         canary window survives (commit)
//! ```

use std::collections::BTreeSet;
use std::fmt;

/// Tuning for the supervisor automaton. All horizons are measured in
/// sentinel windows, the only clock the supervisor knows about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Consecutive unhealthy windows before a version is quarantined.
    pub unhealthy_windows: u32,
    /// Windows the regenerated rules run as a canary before the swap
    /// is committed (or rolled back, if SLO violations worsen).
    pub canary_windows: u32,
    /// Minimum per-window demand (attempts + sheds) a version must see
    /// before its health is judged at all — protects idle versions
    /// from noise verdicts.
    pub min_demand: u64,
    /// Fraction of a version's demand that must fail (or be shed by
    /// its breaker) for the window to count as unhealthy.
    pub failure_ratio: f64,
    /// Never quarantine below this many surviving versions.
    pub min_survivors: usize,
    /// Windows after a rollback during which no new quarantine is
    /// attempted (lets the restored rules re-establish a baseline).
    pub cooldown_windows: u32,
}

impl SupervisorConfig {
    /// Conservative defaults: two bad windows to act, a three-window
    /// canary, and a four-window cooldown after any rollback.
    pub fn defaults() -> Self {
        SupervisorConfig {
            unhealthy_windows: 2,
            canary_windows: 3,
            min_demand: 8,
            failure_ratio: 0.5,
            min_survivors: 2,
            cooldown_windows: 4,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first nonsensical field: zero
    /// horizons, a failure ratio outside `(0, 1]`, or zero survivors.
    pub fn validate(&self) -> Result<(), String> {
        if self.unhealthy_windows == 0 {
            return Err("unhealthy_windows must be >= 1".into());
        }
        if self.canary_windows == 0 {
            return Err("canary_windows must be >= 1".into());
        }
        if !(self.failure_ratio > 0.0 && self.failure_ratio <= 1.0) {
            return Err(format!(
                "failure_ratio {} outside (0, 1]",
                self.failure_ratio
            ));
        }
        if self.min_survivors == 0 {
            return Err("min_survivors must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig::defaults()
    }
}

/// One version's health counters over a single sentinel window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VersionWindow {
    /// Invocations attempted against the version this window.
    pub attempts: u64,
    /// Attempts that failed (crash or error outcome).
    pub failures: u64,
    /// Requests the version's breaker (or an existing quarantine)
    /// turned away — demand the version could not serve.
    pub sheds: u64,
}

impl VersionWindow {
    /// Total demand the version saw this window.
    pub fn demand(&self) -> u64 {
        self.attempts + self.sheds
    }
}

/// Everything the supervisor learns about one sentinel window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObservation {
    /// Number of tiers the sentinel judged out of contract.
    pub violations: u32,
    /// Per-version health counters, indexed by version.
    pub versions: Vec<VersionWindow>,
}

/// What the serving layer must do after a window observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorAction {
    /// Nothing — keep serving with the current rules.
    None,
    /// Quarantine `version`: regenerate routing rules over the
    /// survivors and hot-swap them in. The swap runs as a canary.
    Quarantine {
        /// Version index to quarantine.
        version: usize,
    },
    /// The canary survived: keep the swapped rules.
    Commit,
    /// The canary worsened SLO violations: restore the saved rules and
    /// lift the quarantine.
    Rollback {
        /// Version whose quarantine is lifted.
        version: usize,
    },
}

/// What kind of transition happened (for logs and `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A version entered quarantine and regenerated rules were swapped
    /// in as a canary.
    Quarantine,
    /// A canary was committed.
    Commit,
    /// A canary was rolled back.
    Rollback,
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionKind::Quarantine => write!(f, "quarantine"),
            TransitionKind::Commit => write!(f, "commit"),
            TransitionKind::Rollback => write!(f, "rollback"),
        }
    }
}

/// One recorded supervisor transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Sentinel window index (1-based, counted by the supervisor) at
    /// which the transition fired.
    pub window: u64,
    /// What happened.
    pub kind: TransitionKind,
    /// The version involved (quarantined or un-quarantined); `None`
    /// for commits.
    pub version: Option<usize>,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.version {
            Some(v) => write!(f, "window {} {} v{}", self.window, self.kind, v),
            None => write!(f, "window {} {}", self.window, self.kind),
        }
    }
}

/// Which mode the automaton is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorPhase {
    /// Watching version health; may quarantine.
    Steady,
    /// A swap is live and being judged against pre-swap violations.
    Canary,
}

/// The supervisor automaton. See the module docs for the state
/// machine; drive it with [`Supervisor::observe`] once per sentinel
/// window.
#[derive(Debug, Clone)]
pub struct Supervisor {
    config: SupervisorConfig,
    versions: usize,
    phase: SupervisorPhase,
    window: u64,
    /// Consecutive unhealthy windows per version.
    streaks: Vec<u32>,
    quarantined: BTreeSet<usize>,
    /// The version quarantined by the live canary (rollback target).
    canary_version: usize,
    canary_remaining: u32,
    violations_at_swap: u32,
    cooldown_remaining: u32,
    transitions: Vec<Transition>,
}

impl Supervisor {
    /// A supervisor over a deployment of `versions` versions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SupervisorConfig::validate`]
    /// or `versions == 0`.
    pub fn new(config: SupervisorConfig, versions: usize) -> Self {
        if let Err(e) = config.validate() {
            panic!("supervisor config: {e}");
        }
        assert!(versions > 0, "supervisor over zero versions");
        Supervisor {
            config,
            versions,
            phase: SupervisorPhase::Steady,
            window: 0,
            streaks: vec![0; versions],
            quarantined: BTreeSet::new(),
            canary_version: 0,
            canary_remaining: 0,
            violations_at_swap: 0,
            cooldown_remaining: 0,
            transitions: Vec::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> SupervisorPhase {
        self.phase
    }

    /// Whether a canary swap is currently being judged.
    pub fn in_canary(&self) -> bool {
        self.phase == SupervisorPhase::Canary
    }

    /// Versions currently quarantined, ascending.
    pub fn quarantined(&self) -> impl Iterator<Item = usize> + '_ {
        self.quarantined.iter().copied()
    }

    /// Every transition recorded so far, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.window
    }

    /// Whether `version` counted as unhealthy this window: enough
    /// demand to judge, and a failure-or-shed fraction of that demand
    /// at or above the configured ratio. Sheds count as failures by
    /// proxy — a fully-open breaker serves nothing, which is exactly
    /// the persistent failure the supervisor exists to route around.
    fn unhealthy(&self, w: &VersionWindow) -> bool {
        let demand = w.demand();
        demand >= self.config.min_demand
            && (w.failures + w.sheds) as f64 >= self.config.failure_ratio * demand as f64
    }

    /// The quarantine candidate this window: the version with the
    /// longest unhealthy streak at or past the threshold, ties broken
    /// by higher shed-or-fail volume, then by lower index — a total
    /// order, so the choice is deterministic.
    fn candidate(&self, obs: &WindowObservation) -> Option<usize> {
        (0..self.versions)
            .filter(|v| !self.quarantined.contains(v))
            .filter(|&v| self.streaks[v] >= self.config.unhealthy_windows)
            .max_by_key(|&v| {
                let w = obs.versions.get(v).copied().unwrap_or_default();
                (self.streaks[v], w.failures + w.sheds, std::cmp::Reverse(v))
            })
    }

    /// Feed one sentinel window; returns the action to execute.
    ///
    /// The caller must execute the action before the next `observe`
    /// call — the automaton assumes a returned `Quarantine` means the
    /// regenerated rules are live for the following window.
    ///
    /// # Panics
    ///
    /// Panics if the observation does not cover every version.
    pub fn observe(&mut self, obs: &WindowObservation) -> SupervisorAction {
        assert!(
            obs.versions.len() >= self.versions,
            "observation covers {} of {} versions",
            obs.versions.len(),
            self.versions
        );
        self.window += 1;

        if self.phase == SupervisorPhase::Canary {
            return self.judge_canary(obs);
        }

        // Steady: track per-version unhealthy streaks.
        for v in 0..self.versions {
            if self.quarantined.contains(&v) {
                self.streaks[v] = 0;
                continue;
            }
            if self.unhealthy(&obs.versions[v]) {
                self.streaks[v] += 1;
            } else {
                self.streaks[v] = 0;
            }
        }

        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            return SupervisorAction::None;
        }

        let Some(version) = self.candidate(obs) else {
            return SupervisorAction::None;
        };
        let survivors = self.versions - self.quarantined.len() - 1;
        if survivors < self.config.min_survivors {
            return SupervisorAction::None;
        }

        self.quarantined.insert(version);
        self.streaks[version] = 0;
        self.phase = SupervisorPhase::Canary;
        self.canary_version = version;
        self.canary_remaining = self.config.canary_windows;
        self.violations_at_swap = obs.violations;
        self.transitions.push(Transition {
            window: self.window,
            kind: TransitionKind::Quarantine,
            version: Some(version),
        });
        SupervisorAction::Quarantine { version }
    }

    /// Abandon a quarantine the serving layer could not execute (rule
    /// regeneration over the survivors failed): lift the quarantine,
    /// return to `Steady`, and start a cooldown so the same evidence
    /// does not immediately re-trigger a doomed swap. The quarantine
    /// transition recorded by the triggering `observe` is withdrawn —
    /// nothing was actually swapped.
    ///
    /// # Panics
    ///
    /// Panics if no canary is live.
    pub fn abort_canary(&mut self) {
        assert!(self.phase == SupervisorPhase::Canary, "no canary to abort");
        self.quarantined.remove(&self.canary_version);
        self.phase = SupervisorPhase::Steady;
        self.cooldown_remaining = self.config.cooldown_windows;
        self.streaks.iter_mut().for_each(|s| *s = 0);
        self.transitions.pop();
    }

    fn judge_canary(&mut self, obs: &WindowObservation) -> SupervisorAction {
        if obs.violations > self.violations_at_swap {
            // The swap made things worse: restore.
            let version = self.canary_version;
            self.quarantined.remove(&version);
            self.phase = SupervisorPhase::Steady;
            self.cooldown_remaining = self.config.cooldown_windows;
            self.streaks.iter_mut().for_each(|s| *s = 0);
            self.transitions.push(Transition {
                window: self.window,
                kind: TransitionKind::Rollback,
                version: Some(version),
            });
            return SupervisorAction::Rollback { version };
        }
        self.canary_remaining -= 1;
        if self.canary_remaining == 0 {
            self.phase = SupervisorPhase::Steady;
            self.streaks.iter_mut().for_each(|s| *s = 0);
            self.transitions.push(Transition {
                window: self.window,
                kind: TransitionKind::Commit,
                version: None,
            });
            return SupervisorAction::Commit;
        }
        SupervisorAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            unhealthy_windows: 2,
            canary_windows: 3,
            min_demand: 8,
            failure_ratio: 0.5,
            min_survivors: 2,
            cooldown_windows: 4,
        }
    }

    fn healthy() -> VersionWindow {
        VersionWindow {
            attempts: 20,
            failures: 0,
            sheds: 0,
        }
    }

    fn crashing() -> VersionWindow {
        VersionWindow {
            attempts: 20,
            failures: 20,
            sheds: 0,
        }
    }

    fn obs(violations: u32, versions: Vec<VersionWindow>) -> WindowObservation {
        WindowObservation {
            violations,
            versions,
        }
    }

    #[test]
    fn quarantines_after_streak_then_commits_a_quiet_canary() {
        let mut s = Supervisor::new(cfg(), 3);
        // Window 1: first unhealthy window — streak 1, no action.
        assert_eq!(
            s.observe(&obs(1, vec![healthy(), healthy(), crashing()])),
            SupervisorAction::None
        );
        // Window 2: streak 2 — quarantine fires.
        assert_eq!(
            s.observe(&obs(1, vec![healthy(), healthy(), crashing()])),
            SupervisorAction::Quarantine { version: 2 }
        );
        assert!(s.in_canary());
        assert_eq!(s.quarantined().collect::<Vec<_>>(), vec![2]);
        // Canary windows 3–5: violations recover (0 ≤ 1), so commit at
        // the end of the horizon.
        assert_eq!(
            s.observe(&obs(0, vec![healthy(), healthy(), healthy()])),
            SupervisorAction::None
        );
        assert_eq!(
            s.observe(&obs(0, vec![healthy(), healthy(), healthy()])),
            SupervisorAction::None
        );
        assert_eq!(
            s.observe(&obs(0, vec![healthy(), healthy(), healthy()])),
            SupervisorAction::Commit
        );
        assert!(!s.in_canary());
        assert_eq!(s.quarantined().collect::<Vec<_>>(), vec![2]);
        let kinds: Vec<_> = s.transitions().iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![TransitionKind::Quarantine, TransitionKind::Commit]
        );
    }

    #[test]
    fn rolls_back_when_violations_worsen_and_cools_down() {
        let mut s = Supervisor::new(cfg(), 3);
        let sick = || obs(1, vec![healthy(), healthy(), crashing()]);
        assert_eq!(s.observe(&sick()), SupervisorAction::None);
        assert_eq!(
            s.observe(&sick()),
            SupervisorAction::Quarantine { version: 2 }
        );
        // Canary window: violations jump 1 → 3 — rollback.
        assert_eq!(
            s.observe(&obs(3, vec![healthy(), healthy(), healthy()])),
            SupervisorAction::Rollback { version: 2 }
        );
        assert_eq!(s.quarantined().count(), 0);
        assert!(!s.in_canary());
        // Cooldown: the same unhealthy evidence cannot re-trigger for
        // cooldown_windows observations, even with a full streak.
        for _ in 0..4 {
            assert_eq!(s.observe(&sick()), SupervisorAction::None);
        }
        // Streak was already rebuilt during cooldown, so the first
        // post-cooldown window acts.
        assert_eq!(
            s.observe(&sick()),
            SupervisorAction::Quarantine { version: 2 }
        );
    }

    #[test]
    fn never_drops_below_min_survivors() {
        let mut s = Supervisor::new(cfg(), 2); // min_survivors = 2
        let both_sick = || obs(2, vec![crashing(), crashing()]);
        for _ in 0..6 {
            assert_eq!(s.observe(&both_sick()), SupervisorAction::None);
        }
        assert_eq!(s.quarantined().count(), 0);
    }

    #[test]
    fn idle_versions_are_never_judged() {
        let mut s = Supervisor::new(cfg(), 3);
        let idle_fail = VersionWindow {
            attempts: 2,
            failures: 2,
            sheds: 0,
        }; // demand 2 < min_demand 8
        for _ in 0..6 {
            assert_eq!(
                s.observe(&obs(0, vec![healthy(), healthy(), idle_fail])),
                SupervisorAction::None
            );
        }
    }

    #[test]
    fn breaker_sheds_count_as_failure_by_proxy() {
        let mut s = Supervisor::new(cfg(), 3);
        // Breaker fully open: zero attempts, all demand shed.
        let shed_out = VersionWindow {
            attempts: 0,
            failures: 0,
            sheds: 12,
        };
        assert_eq!(
            s.observe(&obs(1, vec![healthy(), healthy(), shed_out])),
            SupervisorAction::None
        );
        assert_eq!(
            s.observe(&obs(1, vec![healthy(), healthy(), shed_out])),
            SupervisorAction::Quarantine { version: 2 }
        );
    }

    #[test]
    fn candidate_choice_is_deterministic_under_ties() {
        let mut a = Supervisor::new(cfg(), 3);
        let mut b = Supervisor::new(cfg(), 3);
        let tie = || obs(2, vec![healthy(), crashing(), crashing()]);
        let seq_a: Vec<_> = (0..4).map(|_| a.observe(&tie())).collect();
        let seq_b: Vec<_> = (0..4).map(|_| b.observe(&tie())).collect();
        assert_eq!(seq_a, seq_b);
        // Equal streaks and volumes: the lower index wins.
        assert!(seq_a.contains(&SupervisorAction::Quarantine { version: 1 }));
    }

    #[test]
    fn aborted_canary_withdraws_the_quarantine_and_cools_down() {
        let mut s = Supervisor::new(cfg(), 3);
        let sick = || obs(1, vec![healthy(), healthy(), crashing()]);
        assert_eq!(s.observe(&sick()), SupervisorAction::None);
        assert_eq!(
            s.observe(&sick()),
            SupervisorAction::Quarantine { version: 2 }
        );
        // The serving layer fails to regenerate rules and aborts.
        s.abort_canary();
        assert!(!s.in_canary());
        assert_eq!(s.quarantined().count(), 0);
        assert!(s.transitions().is_empty(), "no swap actually happened");
        // Cooldown holds, then the evidence can act again.
        for _ in 0..4 {
            assert_eq!(s.observe(&sick()), SupervisorAction::None);
        }
        assert_eq!(
            s.observe(&sick()),
            SupervisorAction::Quarantine { version: 2 }
        );
    }

    #[test]
    fn config_validation_catches_nonsense() {
        assert!(SupervisorConfig::defaults().validate().is_ok());
        assert!(SupervisorConfig {
            unhealthy_windows: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(SupervisorConfig {
            canary_windows: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(SupervisorConfig {
            failure_ratio: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(SupervisorConfig {
            failure_ratio: 1.5,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(SupervisorConfig {
            min_survivors: 0,
            ..cfg()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn transitions_render_for_logs() {
        let t = Transition {
            window: 7,
            kind: TransitionKind::Quarantine,
            version: Some(2),
        };
        assert_eq!(t.to_string(), "window 7 quarantine v2");
        let t = Transition {
            window: 9,
            kind: TransitionKind::Commit,
            version: None,
        };
        assert_eq!(t.to_string(), "window 9 commit");
    }
}
