//! Resilience policies for the serving cluster: retries with capped
//! exponential backoff, per-pool circuit breakers, request deadlines,
//! graceful degradation, and hedging for sequential cascades.
//!
//! The paper's tiers advertise a latency/accuracy contract. Faults (see
//! [`tt_sim::fault`]) attack that contract from two sides: failures cost
//! retries (latency) or force answers from cheaper versions (accuracy),
//! and stragglers blow the latency guarantee directly. The policies in
//! this module are the knobs a production deployment would turn, and
//! [`ResilienceStats`] quantifies what each one buys and what it costs —
//! in particular how often the *advertised tolerance* is breached
//! because degradation swapped in a less-accurate version.
//!
//! Everything here is deterministic: backoff delays are a pure function
//! of the retry index, and fault draws come from the seeded per-pool
//! streams of a [`FaultPlan`]. [`ResilienceConfig::disabled`] is
//! guaranteed to reproduce the fault-free simulation bit-for-bit.

use tt_sim::{FaultPlan, SimDuration, SimTime};

/// Retry budget and capped exponential backoff schedule.
///
/// The budget is **per request**, shared across every invocation the
/// request's policy launches: a cascade whose cheap stage burns all
/// retries leaves none for the accurate stage. Delays are deterministic
/// (no jitter) so simulations are exactly reproducible:
///
/// ```
/// use tt_serve::resilience::RetryPolicy;
/// use tt_sim::SimDuration;
///
/// let retry = RetryPolicy {
///     max_retries: 4,
///     base: SimDuration::from_millis(10),
///     cap: SimDuration::from_millis(35),
///     multiplier: 2.0,
/// };
/// let delays: Vec<u64> = (0..4).map(|i| retry.backoff(i).as_micros()).collect();
/// assert_eq!(delays, vec![10_000, 20_000, 35_000, 35_000]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retry attempts per request (0 disables retries).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Growth factor per retry (>= 1).
    pub multiplier: f64,
}

impl RetryPolicy {
    /// No retries at all.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base: SimDuration::ZERO,
        cap: SimDuration::ZERO,
        multiplier: 1.0,
    };

    /// `max_retries` immediate retries (zero backoff).
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::NONE
        }
    }

    /// The delay before retry number `retry_index` (0-based):
    /// `min(cap, base * multiplier^retry_index)`.
    pub fn backoff(&self, retry_index: u32) -> SimDuration {
        if self.base == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        // Saturate the exponent computation through the cap rather than
        // overflowing: once base * m^i exceeds the cap the answer is the
        // cap regardless of i.
        let cap_us = self.cap.as_micros() as f64;
        let mut delay_us = self.base.as_micros() as f64;
        for _ in 0..retry_index {
            delay_us *= self.multiplier;
            if delay_us >= cap_us {
                return self.cap;
            }
        }
        SimDuration::from_micros(delay_us.round() as u64).min(self.cap)
    }

    /// Validate the schedule: a multiplier below 1 would make delays
    /// shrink, and a cap below the base is contradictory.
    pub fn validate(&self) -> Result<(), String> {
        if self.multiplier < 1.0 {
            return Err(format!("multiplier {} < 1", self.multiplier));
        }
        if self.max_retries > 0 && self.base > SimDuration::ZERO && self.cap < self.base {
            return Err(format!("cap {} below base {}", self.cap, self.base));
        }
        Ok(())
    }
}

/// Circuit-breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are shed to sibling pools.
    Open,
    /// Cooldown elapsed: one probe request is allowed through.
    HalfOpen,
}

/// Breaker tuning shared by every pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub cooldown: SimDuration,
}

/// A per-pool circuit breaker.
///
/// Trips open after `failure_threshold` *consecutive* failures; while
/// open, [`CircuitBreaker::allows`] rejects work (the cluster sheds it
/// to sibling pools). After `cooldown` a single probe is admitted: its
/// success closes the breaker, its failure re-opens it for another
/// cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    probe_in_flight: bool,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(policy: BreakerPolicy) -> Self {
        assert!(
            policy.failure_threshold > 0,
            "a zero failure threshold would never close"
        );
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            probe_in_flight: false,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Number of state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn transition(&mut self, to: BreakerState) {
        if self.state != to {
            self.state = to;
            self.transitions += 1;
        }
    }

    /// Whether a new invocation may be sent to this pool at `now`.
    /// Moving from `Open` to `HalfOpen` happens here, lazily, when the
    /// cooldown has elapsed; the first caller after that gets the probe
    /// slot.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_since(self.opened_at) >= self.policy.cooldown {
                    self.transition(BreakerState::HalfOpen);
                    self.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record an invocation result for this pool.
    pub fn record(&mut self, success: bool, now: SimTime) {
        match self.state {
            BreakerState::Closed => {
                if success {
                    self.consecutive_failures = 0;
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.policy.failure_threshold {
                        self.transition(BreakerState::Open);
                        self.opened_at = now;
                    }
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                if success {
                    self.consecutive_failures = 0;
                    self.transition(BreakerState::Closed);
                } else {
                    self.transition(BreakerState::Open);
                    self.opened_at = now;
                }
            }
            BreakerState::Open => {
                // A straggler from before the trip landing now; the
                // breaker already made its decision.
            }
        }
    }
}

/// Cluster-wide resilience configuration.
///
/// [`ResilienceConfig::disabled`] turns every mechanism off and is the
/// implicit configuration of [`crate::cluster::ClusterSim::run`]; with
/// it, simulation reports are bit-for-bit identical to the pre-fault
/// code path.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Per-pool fault injection (see [`tt_sim::fault`]).
    pub faults: FaultPlan,
    /// Retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning; `None` disables breakers.
    pub breaker: Option<BreakerPolicy>,
    /// Deadline per request, as a multiple of the serving tier's mean
    /// (guaranteed) latency; `None` disables deadlines.
    pub deadline_factor: Option<f64>,
    /// Hedge a `Scheduling::Sequential` cascade by launching the
    /// accurate version once the cheap stage has been out for this
    /// multiple of its nominal service time; `None` disables hedging.
    pub hedge_factor: Option<f64>,
    /// Re-route to the next-cheaper version when a request exhausts its
    /// retries (or its pool's breaker is open); off means such requests
    /// are dropped.
    pub degrade: bool,
}

impl ResilienceConfig {
    /// Every mechanism off, for a cluster of `pools` version pools.
    pub fn disabled(pools: usize) -> Self {
        ResilienceConfig {
            faults: FaultPlan::disabled(pools),
            retry: RetryPolicy::NONE,
            breaker: None,
            deadline_factor: None,
            hedge_factor: None,
            degrade: false,
        }
    }

    /// Whether this configuration can diverge from the fault-free path.
    pub fn is_disabled(&self) -> bool {
        self.faults.is_disabled()
            && self.retry.max_retries == 0
            && self.breaker.is_none()
            && self.deadline_factor.is_none()
            && self.hedge_factor.is_none()
            && !self.degrade
    }
}

/// What the resilience layer observed during one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceStats {
    /// Requests offered to the cluster.
    pub total_requests: usize,
    /// Invocations that completed `Failed` (crash or transient error).
    pub failed_invocations: usize,
    /// Invocations that completed `Slow` (stragglers).
    pub slow_invocations: usize,
    /// Retry attempts issued.
    pub retries: usize,
    /// Sequential cascades that launched their accurate version off the
    /// hedging timer.
    pub hedges: usize,
    /// Launches redirected away from a pool with an open breaker.
    pub breaker_sheds: usize,
    /// Total breaker state transitions across all pools.
    pub breaker_transitions: u64,
    /// Responses served by a version other than the one the tier policy
    /// intended (stashed cascade answers and cheaper re-routes).
    pub degraded_responses: usize,
    /// Degraded responses whose quality error exceeded the fault-free
    /// policy outcome by more than the request's advertised tolerance.
    pub tolerance_violations_under_fault: usize,
    /// Requests not answered strictly before their deadline.
    pub deadline_misses: usize,
    /// Requests that exhausted every avenue and were never answered.
    pub dropped_requests: usize,
}

impl ResilienceStats {
    /// Fraction of offered requests that received an answer.
    pub fn availability(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            (self.total_requests - self.dropped_requests) as f64 / self.total_requests as f64
        }
    }

    /// Fraction of offered requests answered strictly before their
    /// deadline (1.0 when deadlines are disabled).
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            (self.total_requests - self.deadline_misses) as f64 / self.total_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_micros(v * 1_000)
    }

    #[test]
    fn backoff_grows_and_caps() {
        let retry = RetryPolicy {
            max_retries: 10,
            base: ms(5),
            cap: ms(40),
            multiplier: 2.0,
        };
        assert_eq!(retry.backoff(0), ms(5));
        assert_eq!(retry.backoff(1), ms(10));
        assert_eq!(retry.backoff(2), ms(20));
        assert_eq!(retry.backoff(3), ms(40));
        assert_eq!(retry.backoff(4), ms(40));
        assert_eq!(retry.backoff(100), ms(40)); // no overflow
    }

    #[test]
    fn zero_base_means_immediate_retries() {
        let retry = RetryPolicy::immediate(3);
        assert_eq!(retry.backoff(0), SimDuration::ZERO);
        assert_eq!(retry.backoff(7), SimDuration::ZERO);
    }

    #[test]
    fn retry_validation() {
        assert!(RetryPolicy::NONE.validate().is_ok());
        assert!(RetryPolicy {
            multiplier: 0.5,
            ..RetryPolicy::NONE
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_retries: 1,
            base: ms(10),
            cap: ms(5),
            multiplier: 2.0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 3,
            cooldown: ms(100),
        });
        assert!(b.allows(at(0)));
        b.record(false, at(0));
        b.record(true, at(1)); // success resets the streak
        b.record(false, at(2));
        b.record(false, at(3));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false, at(4));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(at(5)));
        assert_eq!(b.transitions(), 1);
    }

    #[test]
    fn breaker_probes_after_cooldown_and_recloses_on_success() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: ms(50),
        });
        b.record(false, at(0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(at(10)));
        // Cooldown elapsed: exactly one probe goes through.
        assert!(b.allows(at(60)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allows(at(61)));
        b.record(true, at(70));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(at(71)));
        assert_eq!(b.transitions(), 3); // open -> half-open -> closed
    }

    #[test]
    fn breaker_reopens_on_failed_probe() {
        let mut b = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown: ms(50),
        });
        b.record(false, at(0));
        assert!(b.allows(at(60)));
        b.record(false, at(70));
        assert_eq!(b.state(), BreakerState::Open);
        // Fresh cooldown from the failed probe.
        assert!(!b.allows(at(100)));
        assert!(b.allows(at(121)));
    }

    #[test]
    fn disabled_config_is_disabled() {
        assert!(ResilienceConfig::disabled(3).is_disabled());
        let mut c = ResilienceConfig::disabled(3);
        c.degrade = true;
        assert!(!c.is_disabled());
    }

    #[test]
    fn stats_rates() {
        let stats = ResilienceStats {
            total_requests: 10,
            dropped_requests: 2,
            deadline_misses: 5,
            ..ResilienceStats::default()
        };
        assert!((stats.availability() - 0.8).abs() < 1e-12);
        assert!((stats.deadline_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ResilienceStats::default().availability(), 1.0);
    }
}
