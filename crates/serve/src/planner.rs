//! Continuous capacity planning: a low-frequency **planner** plus a
//! high-frequency **tuner**, both pure automatons.
//!
//! The paper's tolerance tiers promise per-tier latency/accuracy
//! envelopes, but a static worker pool defends them only at one traffic
//! level: a diurnal trough wastes provisioned capacity, a flash crowd
//! melts the SLO. Following InferLine's split, this module separates
//! the response into two cadences:
//!
//! * [`Planner`] — runs every few telemetry windows. It diffs
//!   successive *cumulative* window folds into per-round demand
//!   deltas, forecasts the next round with a fixed-point EWMA plus a
//!   seasonal (slot-indexed) correction, and emits provisioning
//!   actions: worker-pool resizes (grow eagerly, shrink patiently) and
//!   routing-rule regeneration triggers when the forecast *tier mix*
//!   drifts from the mix the deployed rules were generated for
//!   (INFaaS-style variant awareness).
//! * [`Tuner`] — runs every window. It watches the per-window arrival
//!   delta against a short EWMA and, on a surge, nudges the two fast
//!   knobs that do not require re-provisioning: the AIMD admission
//!   limit (boosted multiplicatively) and the batch formation deadline
//!   (tightened, so queueing slack is not spent under pressure).
//!
//! Like [`crate::supervisor`], neither automaton reads a clock, opens
//! a socket, or owns a thread: the serving layer feeds observations
//! and executes the returned actions. All arithmetic is integer /
//! fixed-point (per-mille scale), and observations are *cumulative*
//! totals — the deterministic fold contract of the windowed telemetry
//! store — so the decision sequence is a pure function of the observed
//! fold sequence: bit-identical across thread counts, node counts, and
//! heartbeat jitter.

use std::collections::BTreeMap;

/// Fixed-point scale used throughout: 1000 = 1.0 (per-mille).
pub const PERMILLE: u64 = 1000;

/// Cumulative service-time totals for one model version.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceTotals {
    /// Requests served by this version since boot.
    pub count: u64,
    /// Summed (simulated) service time since boot, microseconds.
    pub sum_us: u64,
}

/// One planner observation: *cumulative* totals since boot, as folded
/// by the windowed telemetry store. Feeding cumulative totals (rather
/// than per-window deltas) makes the input independent of heartbeat
/// timing: the automaton diffs consecutive observations itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlannerInput {
    /// Cumulative arrivals per tier key (`"{objective}/{tolerance:.3}"`).
    pub arrivals: BTreeMap<String, u64>,
    /// Cumulative service totals per model version.
    pub service: BTreeMap<usize, ServiceTotals>,
}

/// Planner tuning knobs. All ratios are integer fractions so the
/// automaton never touches floating point.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlannerConfig {
    /// Demand-EWMA smoothing factor `alpha = alpha_num / alpha_den`.
    pub alpha_num: u64,
    /// Denominator of the demand-EWMA smoothing factor.
    pub alpha_den: u64,
    /// Seasonal slots per cycle; 0 disables the seasonal correction.
    pub season_len: usize,
    /// Seasonal-deviation EWMA factor numerator.
    pub season_alpha_num: u64,
    /// Seasonal-deviation EWMA factor denominator.
    pub season_alpha_den: u64,
    /// Nominal telemetry window duration, microseconds.
    pub window_us: u64,
    /// Windows per planning round (the planner's cadence).
    pub windows_per_round: u64,
    /// Target worker busy fraction, percent, `1..=100`.
    pub target_utilization_pct: u64,
    /// Resize floor.
    pub min_workers: usize,
    /// Resize ceiling.
    pub max_workers: usize,
    /// Consecutive rounds a lower demand estimate must persist before
    /// the planner shrinks (grows are immediate).
    pub shrink_patience: u64,
    /// Assumed mean service time before any service data arrives,
    /// microseconds.
    pub default_service_us: u64,
    /// L1 distance (per-mille) between the forecast tier mix and the
    /// mix at the last regeneration that triggers a rules regen.
    pub regen_threshold_permille: u64,
    /// Seed handed through to [`PlannerAction::Regen`] so triggered
    /// rule generation is reproducible.
    pub rulegen_seed: u64,
}

impl PlannerConfig {
    /// Defaults sized for the ops demos: a 3/10 demand EWMA, 8-slot
    /// seasonal memory, 70% target utilization, shrink after 2 calm
    /// rounds, regen on a 25% mix shift.
    pub fn defaults() -> Self {
        PlannerConfig {
            alpha_num: 3,
            alpha_den: 10,
            season_len: 8,
            season_alpha_num: 2,
            season_alpha_den: 10,
            window_us: 250_000,
            windows_per_round: 4,
            target_utilization_pct: 70,
            min_workers: 1,
            max_workers: 32,
            shrink_patience: 2,
            default_service_us: 2_000,
            regen_threshold_permille: 250,
            rulegen_seed: 17,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first nonsensical field.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha_den == 0 || self.alpha_num == 0 || self.alpha_num > self.alpha_den {
            return Err(format!(
                "demand EWMA alpha must be in (0, 1]: {}/{}",
                self.alpha_num, self.alpha_den
            ));
        }
        if self.season_len > 0
            && (self.season_alpha_den == 0
                || self.season_alpha_num == 0
                || self.season_alpha_num > self.season_alpha_den)
        {
            return Err(format!(
                "seasonal EWMA alpha must be in (0, 1]: {}/{}",
                self.season_alpha_num, self.season_alpha_den
            ));
        }
        if self.window_us == 0 {
            return Err("window_us must be positive".into());
        }
        if self.windows_per_round == 0 {
            return Err("windows_per_round must be >= 1".into());
        }
        if self.target_utilization_pct == 0 || self.target_utilization_pct > 100 {
            return Err(format!(
                "target utilization must be in 1..=100: {}",
                self.target_utilization_pct
            ));
        }
        if self.min_workers == 0 {
            return Err("min_workers must be >= 1".into());
        }
        if self.max_workers < self.min_workers {
            return Err(format!(
                "max_workers {} < min_workers {}",
                self.max_workers, self.min_workers
            ));
        }
        if self.default_service_us == 0 {
            return Err("default_service_us must be positive".into());
        }
        Ok(())
    }
}

/// An action the planner asks the serving layer to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlannerAction {
    /// The round's forecast, emitted every round for the event log:
    /// expected busy-time demand next round (µs, fixed-point per-mille
    /// precision folded away) and the worker count that demand asks
    /// for at the target utilization.
    Forecast {
        /// Forecast busy time next round, microseconds.
        busy_us: u64,
        /// Mean service time estimate used, microseconds.
        mean_service_us: u64,
        /// Workers the forecast demands (before hysteresis).
        demand_workers: usize,
    },
    /// Resize the worker pool from `from` to `to` workers.
    Resize {
        /// Provisioned workers before the resize.
        from: usize,
        /// Provisioned workers after the resize.
        to: usize,
    },
    /// Re-run the routing-rule generator against the forecast tier
    /// mix and publish through the epoch machinery.
    Regen {
        /// Forecast tier mix, per-mille of total arrivals per tier
        /// key, canonical (sorted) order.
        mix: BTreeMap<String, u64>,
        /// Seed for the triggered rule generation.
        seed: u64,
    },
}

/// A read-only snapshot of the planner's state for ops endpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlannerStatus {
    /// Planning rounds completed.
    pub rounds: u64,
    /// Current provisioned-worker belief.
    pub workers: usize,
    /// Demand EWMA, µs of busy time per round (fixed point ÷ 1000).
    pub busy_ewma_us: u64,
    /// Resizes emitted since boot.
    pub resizes: u64,
    /// Regens emitted since boot.
    pub regens: u64,
    /// Forecast tier mix at the last regen (per-mille).
    pub regen_mix: BTreeMap<String, u64>,
}

/// The low-frequency capacity planner. See the module docs.
#[derive(Debug, Clone)]
pub struct Planner {
    config: PlannerConfig,
    /// Previous cumulative observation, diffed against the current one.
    prev: PlannerInput,
    /// Demand EWMA in fixed point: µs of busy time per round × 1000.
    busy_ewma_fp: u64,
    /// Per-tier arrival-rate EWMAs (arrivals per round × 1000).
    tier_ewma_fp: BTreeMap<String, u64>,
    /// Seasonal deviation per slot, signed fixed point.
    season_dev_fp: Vec<i64>,
    /// Rounds observed so far (also indexes the seasonal slot).
    rounds: u64,
    /// The worker count the planner believes is provisioned.
    workers: usize,
    /// Consecutive rounds the demand estimate sat below `workers`.
    shrink_streak: u64,
    /// Tier mix (per-mille) the deployed rules were generated for.
    regen_mix: BTreeMap<String, u64>,
    resizes: u64,
    regens: u64,
}

impl Planner {
    /// A planner believing `initial_workers` are provisioned.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PlannerConfig::validate`].
    pub fn new(config: PlannerConfig, initial_workers: usize) -> Self {
        if let Err(e) = config.validate() {
            panic!("planner config: {e}");
        }
        let season = vec![0i64; config.season_len];
        Planner {
            config,
            prev: PlannerInput::default(),
            busy_ewma_fp: 0,
            tier_ewma_fp: BTreeMap::new(),
            season_dev_fp: season,
            rounds: 0,
            workers: initial_workers,
            shrink_streak: 0,
            regen_mix: BTreeMap::new(),
            resizes: 0,
            regens: 0,
        }
    }

    /// The configuration this planner runs.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Close one planning round against the current *cumulative*
    /// totals and return the actions the serving layer should execute,
    /// in order. A [`PlannerAction::Forecast`] is always first; a
    /// resize and/or regen follow when warranted.
    pub fn observe(&mut self, input: &PlannerInput) -> Vec<PlannerAction> {
        let mut actions = Vec::new();

        // Diff cumulative totals into this round's deltas. Saturating:
        // a restarted store can only reset to zero, never go negative.
        let mut delta_busy_us = 0u64;
        let mut delta_served = 0u64;
        for (version, totals) in &input.service {
            let prev = self.prev.service.get(version).copied().unwrap_or_default();
            delta_busy_us += totals.sum_us.saturating_sub(prev.sum_us);
            delta_served += totals.count.saturating_sub(prev.count);
        }
        let mut delta_arrivals = 0u64;
        let mut tier_deltas: BTreeMap<&str, u64> = BTreeMap::new();
        for (tier, count) in &input.arrivals {
            let prev = self.prev.arrivals.get(tier).copied().unwrap_or(0);
            let d = count.saturating_sub(prev);
            delta_arrivals += d;
            tier_deltas.insert(tier, d);
        }

        // Mean service time: observed this round, else lifetime, else
        // the configured default.
        let mean_service_us = delta_busy_us.checked_div(delta_served).unwrap_or_else(|| {
            let (count, sum): (u64, u64) = input
                .service
                .values()
                .fold((0, 0), |(c, s), t| (c + t.count, s + t.sum_us));
            sum.checked_div(count)
                .unwrap_or(self.config.default_service_us)
        });

        // Demand this round: arrivals × mean service time. Arrivals
        // (not served) so shed traffic still registers as demand — a
        // melted SLO must read as under-provisioning, not calm.
        let observed_busy_fp = u64::try_from(
            (delta_arrivals as u128 * mean_service_us as u128 * PERMILLE as u128)
                .min(u64::MAX as u128)
                / PERMILLE as u128,
        )
        .unwrap_or(u64::MAX)
        .saturating_mul(PERMILLE);

        // Demand EWMA (seeded at the first observation).
        let (num, den) = (self.config.alpha_num as u128, self.config.alpha_den as u128);
        self.busy_ewma_fp = if self.rounds == 0 {
            observed_busy_fp
        } else {
            let blended = num * observed_busy_fp as u128 + (den - num) * self.busy_ewma_fp as u128;
            u64::try_from(blended / den).unwrap_or(u64::MAX)
        };

        // Seasonal deviation for this round's slot, and the correction
        // for the *next* round's slot.
        let mut forecast_fp = self.busy_ewma_fp;
        if self.config.season_len > 0 {
            let slot = (self.rounds as usize) % self.config.season_len;
            let dev = observed_busy_fp as i128 - self.busy_ewma_fp as i128;
            let (snum, sden) = (
                self.config.season_alpha_num as i128,
                self.config.season_alpha_den as i128,
            );
            let blended = (snum * dev + (sden - snum) * self.season_dev_fp[slot] as i128) / sden;
            self.season_dev_fp[slot] = blended.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            let next_slot = (self.rounds as usize + 1) % self.config.season_len;
            forecast_fp = u64::try_from(
                (self.busy_ewma_fp as i128 + self.season_dev_fp[next_slot] as i128).max(0),
            )
            .unwrap_or(u64::MAX);
        }

        // Per-tier arrival EWMAs feed the forecast mix.
        for (tier, d) in &tier_deltas {
            let observed_fp = d.saturating_mul(PERMILLE);
            let entry = self.tier_ewma_fp.entry((*tier).to_string()).or_insert(0);
            *entry = if self.rounds == 0 {
                observed_fp
            } else {
                u64::try_from((num * observed_fp as u128 + (den - num) * *entry as u128) / den)
                    .unwrap_or(u64::MAX)
            };
        }

        // Capacity one worker contributes per round at target
        // utilization, µs.
        let round_us = self.config.window_us * self.config.windows_per_round;
        let per_worker_us = round_us * self.config.target_utilization_pct / 100;
        let forecast_busy_us = forecast_fp / PERMILLE;
        let demand_workers = usize::try_from(forecast_busy_us.div_ceil(per_worker_us.max(1)))
            .unwrap_or(usize::MAX)
            .clamp(self.config.min_workers, self.config.max_workers);

        self.rounds += 1;
        actions.push(PlannerAction::Forecast {
            busy_us: forecast_busy_us,
            mean_service_us,
            demand_workers,
        });

        // Hysteresis: grow eagerly, shrink only after the demand
        // estimate has sat below the provisioned count for
        // `shrink_patience` consecutive rounds.
        if demand_workers > self.workers {
            actions.push(PlannerAction::Resize {
                from: self.workers,
                to: demand_workers,
            });
            self.workers = demand_workers;
            self.shrink_streak = 0;
            self.resizes += 1;
        } else if demand_workers < self.workers {
            self.shrink_streak += 1;
            if self.shrink_streak >= self.config.shrink_patience {
                actions.push(PlannerAction::Resize {
                    from: self.workers,
                    to: demand_workers,
                });
                self.workers = demand_workers;
                self.shrink_streak = 0;
                self.resizes += 1;
            }
        } else {
            self.shrink_streak = 0;
        }

        // Forecast mix vs the mix at the last regen: L1 drift beyond
        // the threshold retriggers rule generation for the new mix.
        let mix = self.forecast_mix();
        if !mix.is_empty() {
            let drift = l1_permille(&mix, &self.regen_mix);
            if self.regen_mix.is_empty() || drift >= self.config.regen_threshold_permille {
                self.regen_mix = mix.clone();
                self.regens += 1;
                actions.push(PlannerAction::Regen {
                    mix,
                    seed: self.config.rulegen_seed,
                });
            }
        }

        self.prev = input.clone();
        actions
    }

    /// The forecast tier mix: each tier's share of total forecast
    /// arrivals, per-mille, canonical order. Empty before any traffic.
    pub fn forecast_mix(&self) -> BTreeMap<String, u64> {
        let total: u128 = self.tier_ewma_fp.values().map(|&v| v as u128).sum();
        if total == 0 {
            return BTreeMap::new();
        }
        self.tier_ewma_fp
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(tier, &v)| {
                (
                    tier.clone(),
                    u64::try_from(v as u128 * PERMILLE as u128 / total).unwrap_or(0),
                )
            })
            .collect()
    }

    /// A snapshot for ops endpoints.
    pub fn status(&self) -> PlannerStatus {
        PlannerStatus {
            rounds: self.rounds,
            workers: self.workers,
            busy_ewma_us: self.busy_ewma_fp / PERMILLE,
            resizes: self.resizes,
            regens: self.regens,
            regen_mix: self.regen_mix.clone(),
        }
    }
}

/// L1 distance between two per-mille mixes, in per-mille.
fn l1_permille(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> u64 {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let x = a.get(k).copied().unwrap_or(0);
            let y = b.get(k).copied().unwrap_or(0);
            x.abs_diff(y)
        })
        .sum()
}

/// Tuner knobs: surge detection and the two fast nudges.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TunerConfig {
    /// Short arrival-EWMA factor numerator.
    pub alpha_num: u64,
    /// Short arrival-EWMA factor denominator.
    pub alpha_den: u64,
    /// A window is a surge when `arrivals * surge_den > ewma *
    /// surge_num` (e.g. 2/1 → double the smoothed rate).
    pub surge_num: u64,
    /// Denominator of the surge ratio.
    pub surge_den: u64,
    /// Admission-limit boost under surge: `limit * boost_num /
    /// boost_den`, clamped to `max_limit`.
    pub boost_num: u64,
    /// Denominator of the admission-limit boost.
    pub boost_den: u64,
    /// Lower clamp for nudged admission limits.
    pub min_limit: usize,
    /// Upper clamp for nudged admission limits.
    pub max_limit: usize,
    /// Batch formation-deadline scale under surge, per-mille of the
    /// configured deadline (e.g. 250 = quarter slack).
    pub surge_slack_permille: u32,
    /// Consecutive calm windows before the tuner reverts its nudges.
    pub calm_windows: u64,
    /// Windows ignored entirely before the EWMA has warmed up.
    pub warmup_windows: u64,
}

impl TunerConfig {
    /// Defaults: 5/10 arrival EWMA, surge at 2× the smoothed rate,
    /// limit boost 2×, quarter batch slack under surge, revert after
    /// 4 calm windows, 2-window warmup.
    pub fn defaults() -> Self {
        TunerConfig {
            alpha_num: 5,
            alpha_den: 10,
            surge_num: 2,
            surge_den: 1,
            boost_num: 2,
            boost_den: 1,
            min_limit: 4,
            max_limit: 4096,
            surge_slack_permille: 250,
            calm_windows: 4,
            warmup_windows: 2,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first nonsensical field.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha_den == 0 || self.alpha_num == 0 || self.alpha_num > self.alpha_den {
            return Err(format!(
                "tuner EWMA alpha must be in (0, 1]: {}/{}",
                self.alpha_num, self.alpha_den
            ));
        }
        if self.surge_den == 0 || self.surge_num < self.surge_den {
            return Err(format!(
                "surge ratio must be >= 1: {}/{}",
                self.surge_num, self.surge_den
            ));
        }
        if self.boost_den == 0 || self.boost_num < self.boost_den {
            return Err(format!(
                "limit boost must be >= 1: {}/{}",
                self.boost_num, self.boost_den
            ));
        }
        if self.min_limit == 0 || self.max_limit < self.min_limit {
            return Err(format!(
                "limit clamp must satisfy 1 <= min <= max: {}..{}",
                self.min_limit, self.max_limit
            ));
        }
        if self.surge_slack_permille == 0 || self.surge_slack_permille > 1000 {
            return Err(format!(
                "surge slack must be in 1..=1000 per-mille: {}",
                self.surge_slack_permille
            ));
        }
        Ok(())
    }
}

/// What the tuner wants changed after one window, `None` = leave the
/// knob alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TunerDecision {
    /// New AIMD admission limit to install.
    pub admission_limit: Option<usize>,
    /// New batch formation-deadline scale, per-mille.
    pub batch_slack_permille: Option<u32>,
    /// True while the tuner considers the traffic surging.
    pub surging: bool,
}

/// The high-frequency spike absorber. See the module docs.
#[derive(Debug, Clone)]
pub struct Tuner {
    config: TunerConfig,
    prev_arrivals: u64,
    /// Short EWMA of per-window arrivals, fixed point × 1000.
    arrivals_ewma_fp: u64,
    windows: u64,
    surging: bool,
    calm_streak: u64,
    nudges: u64,
}

impl Tuner {
    /// A fresh tuner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TunerConfig::validate`].
    pub fn new(config: TunerConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("tuner config: {e}");
        }
        Tuner {
            config,
            prev_arrivals: 0,
            arrivals_ewma_fp: 0,
            windows: 0,
            surging: false,
            calm_streak: 0,
            nudges: 0,
        }
    }

    /// Close one window against the cumulative arrival total and the
    /// currently installed admission limit.
    pub fn observe(&mut self, cumulative_arrivals: u64, current_limit: usize) -> TunerDecision {
        let delta = cumulative_arrivals.saturating_sub(self.prev_arrivals);
        self.prev_arrivals = cumulative_arrivals;
        self.windows += 1;

        let observed_fp = delta.saturating_mul(PERMILLE);
        let warmed = self.windows > self.config.warmup_windows;
        let surge = warmed
            && self.arrivals_ewma_fp > 0
            && (observed_fp as u128 * self.config.surge_den as u128)
                > (self.arrivals_ewma_fp as u128 * self.config.surge_num as u128);

        // Update the EWMA *after* the surge test so a spike is judged
        // against the pre-spike rate; surge windows are excluded from
        // the smoothing so a sustained crowd keeps reading as a surge
        // until the planner re-provisions for it.
        if !surge {
            let (num, den) = (self.config.alpha_num as u128, self.config.alpha_den as u128);
            self.arrivals_ewma_fp = if self.windows == 1 {
                observed_fp
            } else {
                u64::try_from(
                    (num * observed_fp as u128 + (den - num) * self.arrivals_ewma_fp as u128) / den,
                )
                .unwrap_or(u64::MAX)
            };
        }

        let mut decision = TunerDecision {
            surging: surge || (self.surging && self.calm_streak < self.config.calm_windows),
            ..TunerDecision::default()
        };

        if surge {
            self.calm_streak = 0;
            if !self.surging {
                // Surge onset: boost the admission limit and tighten
                // batch formation.
                self.surging = true;
                self.nudges += 1;
                let boosted = (current_limit as u128 * self.config.boost_num as u128
                    / self.config.boost_den as u128)
                    .min(self.config.max_limit as u128);
                decision.admission_limit = Some((boosted as usize).max(self.config.min_limit));
                decision.batch_slack_permille = Some(self.config.surge_slack_permille);
            }
        } else if self.surging {
            self.calm_streak += 1;
            if self.calm_streak >= self.config.calm_windows {
                // Calm restored: hand the limit back to AIMD pacing
                // and restore full batch slack.
                self.surging = false;
                self.calm_streak = 0;
                decision.batch_slack_permille = Some(1000);
                decision.surging = false;
            }
        }

        decision
    }

    /// True while the tuner considers traffic surging.
    pub fn surging(&self) -> bool {
        self.surging
    }

    /// Surge onsets detected since boot.
    pub fn nudges(&self) -> u64 {
        self.nudges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PlannerConfig {
        PlannerConfig {
            window_us: 1_000,
            windows_per_round: 1,
            season_len: 4,
            ..PlannerConfig::defaults()
        }
    }

    fn input(arrivals: &[(&str, u64)], service: &[(usize, u64, u64)]) -> PlannerInput {
        PlannerInput {
            arrivals: arrivals.iter().map(|(t, n)| (t.to_string(), *n)).collect(),
            service: service
                .iter()
                .map(|(v, count, sum)| {
                    (
                        *v,
                        ServiceTotals {
                            count: *count,
                            sum_us: *sum,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut c = PlannerConfig::defaults();
        c.alpha_num = 0;
        assert!(c.validate().is_err());
        let mut c = PlannerConfig::defaults();
        c.target_utilization_pct = 101;
        assert!(c.validate().is_err());
        let mut c = PlannerConfig::defaults();
        c.max_workers = 0;
        assert!(c.validate().is_err());
        let mut c = TunerConfig::defaults();
        c.surge_num = 0;
        assert!(c.validate().is_err());
        let mut c = TunerConfig::defaults();
        c.surge_slack_permille = 1500;
        assert!(c.validate().is_err());
    }

    #[test]
    fn forecast_precedes_other_actions_every_round() {
        let mut p = Planner::new(config(), 1);
        for round in 1..=5u64 {
            let actions = p.observe(&input(
                &[("cost/0.050", round * 10)],
                &[(0, round * 10, round * 10_000)],
            ));
            assert!(
                matches!(actions[0], PlannerAction::Forecast { .. }),
                "round {round}: {actions:?}"
            );
        }
    }

    #[test]
    fn sustained_demand_growth_resizes_up_immediately() {
        let mut p = Planner::new(config(), 1);
        // 10 arrivals/round at 1ms mean service in a 1ms round at 70%
        // target utilization demands ~15 workers.
        let actions = p.observe(&input(&[("cost/0.050", 10)], &[(0, 10, 10_000)]));
        let resize = actions.iter().find_map(|a| match a {
            PlannerAction::Resize { from, to } => Some((*from, *to)),
            _ => None,
        });
        let (from, to) = resize.expect("grows on first loaded round");
        assert_eq!(from, 1);
        assert!(to > 10, "demand of 10ms busy in a 0.7ms budget: {to}");
    }

    #[test]
    fn shrink_waits_for_patience_then_releases_capacity() {
        let mut cfg = config();
        cfg.shrink_patience = 2;
        cfg.season_len = 0;
        let mut p = Planner::new(cfg, 1);
        // Load up.
        p.observe(&input(&[("cost/0.050", 20)], &[(0, 20, 20_000)]));
        let high = p.status().workers;
        assert!(high > 1);
        // Trough: demand collapses; first calm round must NOT shrink.
        let a1 = p.observe(&input(&[("cost/0.050", 21)], &[(0, 21, 21_000)]));
        assert!(
            !a1.iter().any(|a| matches!(a, PlannerAction::Resize { .. })),
            "patience must hold the first calm round: {a1:?}"
        );
        // EWMA decays across further calm rounds until the streak fires.
        let mut shrank = false;
        for round in 0..6u64 {
            let a = p.observe(&input(
                &[("cost/0.050", 22 + round)],
                &[(0, 22 + round, 22_000 + round * 1_000)],
            ));
            if let Some(PlannerAction::Resize { from, to }) =
                a.iter().find(|a| matches!(a, PlannerAction::Resize { .. }))
            {
                assert!(to < from, "trough resize must shrink: {a:?}");
                shrank = true;
                break;
            }
        }
        assert!(shrank, "planner never released trough capacity");
    }

    #[test]
    fn mix_shift_triggers_regen_with_forecast_mix() {
        let mut p = Planner::new(config(), 1);
        let first = p.observe(&input(&[("cost/0.050", 100)], &[(0, 100, 100_000)]));
        assert!(
            first
                .iter()
                .any(|a| matches!(a, PlannerAction::Regen { .. })),
            "first traffic establishes the mix: {first:?}"
        );
        // Same mix → no regen.
        let same = p.observe(&input(&[("cost/0.050", 200)], &[(0, 200, 200_000)]));
        assert!(
            !same
                .iter()
                .any(|a| matches!(a, PlannerAction::Regen { .. })),
            "unchanged mix must not regen: {same:?}"
        );
        // The tier mix flips to a new tier → regen with both tiers in
        // the forecast mix.
        let mut shifted = None;
        for round in 1..=6u64 {
            let a = p.observe(&input(
                &[("cost/0.050", 200), ("cost/0.010", round * 300)],
                &[(0, 200 + round * 300, 200_000 + round * 300_000)],
            ));
            if let Some(PlannerAction::Regen { mix, seed }) = a
                .into_iter()
                .find(|a| matches!(a, PlannerAction::Regen { .. }))
            {
                shifted = Some((mix, seed));
                break;
            }
        }
        let (mix, seed) = shifted.expect("mix flip must trigger a regen");
        assert_eq!(seed, PlannerConfig::defaults().rulegen_seed);
        assert!(mix.contains_key("cost/0.010"), "{mix:?}");
        let total: u64 = mix.values().sum();
        assert!((990..=1000).contains(&total), "mix sums to ~1000: {mix:?}");
    }

    #[test]
    fn decisions_are_a_pure_function_of_the_fold_sequence() {
        let folds: Vec<PlannerInput> = (1..=20u64)
            .map(|round| {
                let surge = if round > 10 { round * 40 } else { round * 8 };
                input(
                    &[("cost/0.050", surge), ("accuracy/0.000", round * 3)],
                    &[(0, surge / 2, surge * 500), (1, round, round * 9_000)],
                )
            })
            .collect();
        let run = || {
            let mut p = Planner::new(config(), 2);
            folds.iter().flat_map(|f| p.observe(f)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seasonal_correction_anticipates_a_repeating_peak() {
        let mut cfg = config();
        cfg.season_len = 4;
        cfg.shrink_patience = 1;
        let mut p = Planner::new(cfg, 1);
        // A 4-round cycle: one heavy slot, three light. After a few
        // cycles the forecast entering the heavy slot must exceed the
        // forecast entering a light slot.
        let mut cumulative = 0u64;
        let mut cum_us = 0u64;
        let mut heavy_forecasts = Vec::new();
        let mut light_forecasts = Vec::new();
        for round in 0..16u64 {
            let slot = round % 4;
            let arrivals = if slot == 3 { 40 } else { 4 };
            cumulative += arrivals;
            cum_us += arrivals * 1_000;
            let actions = p.observe(&input(
                &[("cost/0.050", cumulative)],
                &[(0, cumulative, cum_us)],
            ));
            if let PlannerAction::Forecast { busy_us, .. } = actions[0] {
                // The forecast emitted in slot 2 targets slot 3 (heavy).
                if round >= 8 {
                    if slot == 2 {
                        heavy_forecasts.push(busy_us);
                    } else if slot == 0 {
                        light_forecasts.push(busy_us);
                    }
                }
            }
        }
        let heavy: u64 = heavy_forecasts.iter().sum::<u64>() / heavy_forecasts.len() as u64;
        let light: u64 = light_forecasts.iter().sum::<u64>() / light_forecasts.len() as u64;
        assert!(
            heavy > light,
            "seasonal slots must anticipate the peak: heavy {heavy} vs light {light}"
        );
    }

    #[test]
    fn tuner_boosts_on_surge_and_reverts_after_calm() {
        let mut t = Tuner::new(TunerConfig::defaults());
        let mut cum = 0u64;
        // Warmup + steady traffic: no nudges.
        for _ in 0..6 {
            cum += 10;
            let d = t.observe(cum, 64);
            assert_eq!(d.admission_limit, None);
        }
        // 5× spike: surge onset nudges both knobs once.
        cum += 50;
        let onset = t.observe(cum, 64);
        assert!(onset.surging);
        assert_eq!(onset.admission_limit, Some(128));
        assert_eq!(onset.batch_slack_permille, Some(250));
        // Continued surge: no repeated nudges.
        cum += 50;
        let sustained = t.observe(cum, 128);
        assert!(sustained.surging);
        assert_eq!(sustained.admission_limit, None);
        // Calm returns: after calm_windows the slack reverts.
        let mut reverted = false;
        for _ in 0..TunerConfig::defaults().calm_windows {
            cum += 10;
            let d = t.observe(cum, 128);
            if d.batch_slack_permille == Some(1000) {
                reverted = true;
                assert!(!d.surging);
            }
        }
        assert!(reverted, "tuner must revert batch slack after calm");
        assert_eq!(t.nudges(), 1);
    }

    #[test]
    fn tuner_is_deterministic_and_clamps_the_boost() {
        let mut cfg = TunerConfig::defaults();
        cfg.max_limit = 100;
        let run = |cfg: TunerConfig| {
            let mut t = Tuner::new(cfg);
            let mut cum = 0u64;
            let mut out = Vec::new();
            for w in 0..12u64 {
                cum += if w == 8 { 200 } else { 10 };
                out.push(t.observe(cum, 64));
            }
            out
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a, b);
        let onset = a.iter().find(|d| d.admission_limit.is_some()).unwrap();
        assert_eq!(onset.admission_limit, Some(100), "boost clamps at max");
    }
}
