//! The price catalog for a deployment.

use tt_sim::{InstanceType, Money};

/// Prices a deployment charges and pays.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PricingCatalog {
    cpu: InstanceType,
    gpu: InstanceType,
    api_price: Money,
}

impl PricingCatalog {
    /// 2017-era list prices: c4.xlarge-class CPU nodes, p2.xlarge-class
    /// GPU nodes, and a per-invocation API price in the range of the
    /// Watson/Cloud Vision APIs of the time (~$1 per 1 000 calls).
    pub fn list_prices() -> Self {
        PricingCatalog {
            cpu: InstanceType::cpu_node(),
            gpu: InstanceType::gpu_node(),
            api_price: Money::from_dollars(0.001),
        }
    }

    /// Custom catalog.
    pub fn new(cpu: InstanceType, gpu: InstanceType, api_price: Money) -> Self {
        PricingCatalog {
            cpu,
            gpu,
            api_price,
        }
    }

    /// The CPU node type.
    pub fn cpu(&self) -> &InstanceType {
        &self.cpu
    }

    /// The GPU node type.
    pub fn gpu(&self) -> &InstanceType {
        &self.gpu
    }

    /// The per-invocation API price.
    pub fn api_price(&self) -> Money {
        self.api_price
    }
}

impl Default for PricingCatalog {
    fn default() -> Self {
        Self::list_prices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_prices_keep_gpu_premium() {
        let p = PricingCatalog::list_prices();
        assert!(p.gpu().price_per_hour() > 3.0 * p.cpu().price_per_hour());
        assert!(p.api_price().as_dollars() > 0.0);
    }

    #[test]
    fn default_is_list_prices() {
        assert_eq!(PricingCatalog::default(), PricingCatalog::list_prices());
    }
}
