//! A minimal JSON document builder for perf-trajectory artifacts.
//!
//! The build environment vendors `serde` but not `serde_json`, and the
//! bench reports only need objects, arrays, strings, and finite
//! numbers, so this hand-rolled emitter keeps the artifact format
//! stable without a new dependency. Insertion order is preserved —
//! reports diff cleanly across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An integer, rendered without a fraction.
    Int(i64),
    /// A finite float, rendered via Rust's shortest-roundtrip `Display`.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered key/value object.
    Object(JsonObject),
    /// An array.
    Array(Vec<Json>),
}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, Json)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a value (builder style).
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.set(key, value);
        self
    }

    /// Insert a string.
    #[must_use]
    pub fn with_str(self, key: &str, value: &str) -> Self {
        self.with(key, Json::Str(value.to_string()))
    }

    /// Insert an integer.
    #[must_use]
    pub fn with_int(self, key: &str, value: i64) -> Self {
        self.with(key, Json::Int(value))
    }

    /// Insert a float.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — JSON has no representation for
    /// them and a perf artifact containing one is a bug.
    #[must_use]
    pub fn with_num(self, key: &str, value: f64) -> Self {
        assert!(value.is_finite(), "non-finite value for key {key:?}");
        self.with(key, Json::Num(value))
    }

    /// Insert a value by reference.
    pub fn set(&mut self, key: &str, value: Json) {
        self.entries.push((key.to_string(), value));
    }

    /// Render the object as a pretty-printed JSON document with a
    /// trailing newline, ready to write to disk.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_object(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_value(value: &Json, depth: usize, out: &mut String) {
    match value {
        Json::Str(s) => render_string(s, out),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Num(n) => {
            assert!(n.is_finite(), "non-finite JSON number");
            // `Display` for f64 always produces a valid JSON number for
            // finite values (shortest roundtrip form).
            let _ = write!(out, "{n}");
        }
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Object(o) => render_object(o, depth, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(depth + 1, out);
                render_value(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push(']');
        }
    }
}

fn render_object(object: &JsonObject, depth: usize, out: &mut String) {
    if object.entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (key, value)) in object.entries.iter().enumerate() {
        indent(depth + 1, out);
        render_string(key, out);
        out.push_str(": ");
        render_value(value, depth + 1, out);
        if i + 1 < object.entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    indent(depth, out);
    out.push('}');
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = JsonObject::new()
            .with_str("bench", "rulegen")
            .with_int("threads", 8)
            .with_num("speedup", 3.5)
            .with(
                "entries",
                Json::Array(vec![Json::Object(
                    JsonObject::new()
                        .with_str("name", "seq")
                        .with_num("wall_ms", 12.25),
                )]),
            );
        let rendered = doc.render();
        assert!(rendered.starts_with("{\n"));
        assert!(rendered.contains("\"bench\": \"rulegen\""));
        assert!(rendered.contains("\"speedup\": 3.5"));
        assert!(rendered.contains("\"wall_ms\": 12.25"));
        assert!(rendered.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonObject::new().with_str("k", "a\"b\\c\nd\u{1}");
        assert!(doc.render().contains("\"a\\\"b\\\\c\\nd\\u0001\""));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = JsonObject::new().with_num("x", f64::NAN);
    }

    #[test]
    fn empty_containers() {
        let doc = JsonObject::new()
            .with("o", Json::Object(JsonObject::new()))
            .with("a", Json::Array(vec![]));
        assert!(doc.render().contains("\"o\": {}"));
        assert!(doc.render().contains("\"a\": []"));
    }
}
