//! Criterion benchmarks for the toltiers workspace (see benches/) plus
//! the perf-trajectory machinery: a wall-clock timing harness and a
//! dependency-free JSON emitter used by the `bench_rulegen` binary to
//! record `BENCH_<name>.json` data points (the registry has no
//! `serde_json`, so the emitter is hand-rolled).

use std::time::{Duration, Instant};

pub mod perfjson;

/// Time one execution of `f`.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed(), result)
}

/// Run `f` `runs` times (at least once) and report the best wall-clock
/// time with the last result — the usual best-of-N noise filter.
pub fn time_best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let (mut best, mut result) = time_once(&mut f);
    for _ in 1..runs.max(1) {
        let (elapsed, r) = time_once(&mut f);
        if elapsed < best {
            best = elapsed;
        }
        result = r;
    }
    (best, result)
}

/// Duration in fractional milliseconds (the unit `BENCH_*.json` uses).
pub fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_min_and_runs_at_least_once() {
        let mut calls = 0;
        let (best, out) = time_best_of(0, || {
            calls += 1;
            42
        });
        assert_eq!((calls, out), (1, 42));
        assert!(best >= Duration::ZERO);

        let mut calls = 0;
        let _ = time_best_of(3, || calls += 1);
        assert_eq!(calls, 3);
    }

    #[test]
    fn millis_converts() {
        assert_eq!(millis(Duration::from_millis(1500)), 1500.0);
    }
}
