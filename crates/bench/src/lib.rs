//! Criterion benchmarks for the toltiers workspace (see benches/).
