//! Perf-trajectory point for the routing-rule generator and the policy
//! evaluation hot path: times sequential (1-thread) versus parallel
//! (all-hardware-threads) rule generation on the ASR and IC deployment
//! matrices, verifies the outputs are bit-identical, micro-times
//! `Policy::evaluate`, and writes the results as `BENCH_rulegen.json`.
//!
//! Usage: `bench_rulegen [--quick|--standard] [--runs N] [--out PATH]`
//!
//! `--quick` (the CI smoke configuration) trims the workload sizes and
//! bootstrap trial caps so the whole run finishes in seconds; the
//! default `--standard` scale uses the evaluation-size corpora and the
//! generator's default limits.

use std::time::Instant;

use tt_asr::CorpusConfig;
use tt_bench::perfjson::{Json, JsonObject};
use tt_bench::{millis, time_best_of};
use tt_core::policy::{Policy, Scheduling, Termination};
use tt_core::profile::ProfileMatrix;
use tt_core::rulegen::RoutingRuleGenerator;
use tt_core::{available_threads, CandidateRecord};
use tt_stats::TrialLimits;
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::{AsrWorkload, VisionWorkload};

struct Config {
    quick: bool,
    runs: usize,
    out: String,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().collect();
    let mut config = Config {
        quick: false,
        runs: 3,
        out: "BENCH_rulegen.json".to_string(),
    };
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--standard" => config.quick = false,
            "--runs" => {
                config.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs a positive integer");
            }
            "--out" => {
                config.out = it.next().expect("--out needs a path").clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    config
}

/// Time rule generation on one matrix at a thread count; returns
/// `(best wall ms, records)`.
fn time_rulegen(
    matrix: &ProfileMatrix,
    limits: TrialLimits,
    threads: usize,
    runs: usize,
) -> (f64, Vec<CandidateRecord>) {
    let candidates = RoutingRuleGenerator::default_candidates(matrix).unwrap();
    let (best, generator) = time_best_of(runs, || {
        RoutingRuleGenerator::new_threaded(matrix, candidates.clone(), 0.999, 3, limits, threads)
            .unwrap()
    });
    (millis(best), generator.records().to_vec())
}

/// One deployment's generation entry: sequential vs parallel, with a
/// parity check baked in.
fn deployment_entry(
    label: &str,
    matrix: &ProfileMatrix,
    limits: TrialLimits,
    threads: usize,
    runs: usize,
) -> (JsonObject, f64) {
    eprintln!("[bench_rulegen] {label}: sequential pass");
    let (seq_ms, seq_records) = time_rulegen(matrix, limits, 1, runs);
    eprintln!("[bench_rulegen] {label}: parallel pass ({threads} threads)");
    let (par_ms, par_records) = time_rulegen(matrix, limits, threads, runs);
    assert_eq!(
        seq_records, par_records,
        "{label}: parallel records diverged from sequential"
    );
    let trials: usize = seq_records.iter().map(|r| r.trials).sum();
    let speedup = seq_ms / par_ms;
    let entry = JsonObject::new()
        .with_str("deployment", label)
        .with_int("requests", matrix.requests() as i64)
        .with_int("versions", matrix.versions() as i64)
        .with_int("candidates", seq_records.len() as i64)
        .with_int("bootstrap_trials_total", trials as i64)
        .with_num("sequential_ms", seq_ms)
        .with_num("parallel_ms", par_ms)
        .with_int("parallel_threads", threads as i64)
        .with_num("speedup", speedup)
        .with("parallel_output_bit_identical", Json::Bool(true));
    (entry, speedup)
}

/// Micro-time the policy-evaluation hot path (full-matrix Conc+ET
/// cascade) and report nanoseconds per request.
fn policy_eval_entry(label: &str, matrix: &ProfileMatrix) -> JsonObject {
    let best = matrix.best_version().unwrap();
    let policy = Policy::Cascade {
        cheap: 0,
        accurate: best,
        threshold: 0.9,
        scheduling: Scheduling::Concurrent,
        termination: Termination::EarlyTerminate,
    };
    // Enough iterations to get over timer resolution.
    let iters = 2_000usize;
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iters {
        sink += std::hint::black_box(policy.evaluate(matrix, None).unwrap()).mean_latency_us;
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    let ns_per_request = elapsed.as_nanos() as f64 / (iters * matrix.requests()) as f64;
    JsonObject::new()
        .with_str("deployment", label)
        .with_int("requests", matrix.requests() as i64)
        .with_int("evaluate_iterations", iters as i64)
        .with_num("ns_per_request", ns_per_request)
        .with_num("requests_per_second", 1e9 / ns_per_request)
}

fn main() {
    let config = parse_args();
    let threads = available_threads();
    let limits = if config.quick {
        TrialLimits {
            min_trials: 10,
            max_trials: 40,
        }
    } else {
        TrialLimits::default()
    };
    let (utterances, images) = if config.quick {
        (300, 600)
    } else {
        (400, 1_000)
    };

    eprintln!(
        "[bench_rulegen] building workloads ({} scale)",
        if config.quick { "quick" } else { "standard" }
    );
    let asr = AsrWorkload::build(CorpusConfig::evaluation().with_utterances(utterances));
    let ic = VisionWorkload::build(DatasetConfig::evaluation().with_images(images), Device::Cpu);

    let mut generation = Vec::new();
    let mut speedups = Vec::new();
    for (label, matrix) in [("ASR (CPU)", asr.matrix()), ("IC (CPU)", ic.matrix())] {
        let (entry, speedup) = deployment_entry(label, matrix, limits, threads, config.runs);
        generation.push(Json::Object(entry));
        speedups.push(speedup);
    }

    let evaluation = [("ASR (CPU)", asr.matrix()), ("IC (CPU)", ic.matrix())]
        .into_iter()
        .map(|(label, matrix)| Json::Object(policy_eval_entry(label, matrix)))
        .collect();

    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let doc = JsonObject::new()
        .with_str("bench", "rulegen")
        .with_str(
            "methodology",
            "best-of-N wall clock; sequential = 1 worker thread, parallel = all \
             hardware threads; identical seeds; parity asserted on every run",
        )
        .with_str("scale", if config.quick { "quick" } else { "standard" })
        .with_int("runs_per_measurement", config.runs as i64)
        .with_int("host_hardware_threads", threads as i64)
        .with_num("min_generation_speedup", min_speedup)
        .with("generation", Json::Array(generation))
        .with("policy_evaluation", Json::Array(evaluation));

    std::fs::write(&config.out, doc.render()).expect("write BENCH json");
    eprintln!(
        "[bench_rulegen] wrote {} (min generation speedup {:.2}x on {} threads)",
        config.out, min_speedup, threads
    );
}
