//! Micro-benchmark: real forward passes through the inference engine
//! for every zoo architecture (the compute behind the IC side of
//! Fig. 1; wall-clock ratios should roughly track the FLOP ratios).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tt_vision::dataset::{Dataset, DatasetConfig};
use tt_vision::zoo::{model_zoo, INPUT_SIZE};

fn bench_forward(c: &mut Criterion) {
    let dataset = Dataset::synthesize(DatasetConfig::small());
    let input = dataset.images()[0].render(INPUT_SIZE);

    let mut group = c.benchmark_group("forward_pass");
    group.sample_size(10);
    for profile in model_zoo() {
        let network = profile.network();
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &network,
            |b, net| b.iter(|| net.forward(&input)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
