//! Fig. 2 regeneration cost: per-request category analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use tt_core::category::categorize;
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::VisionWorkload;

fn bench_categorize(c: &mut Criterion) {
    let workload =
        VisionWorkload::build(DatasetConfig::evaluation().with_images(5_000), Device::Cpu);
    c.bench_function("fig2_categorize_5000_requests", |b| {
        b.iter(|| categorize(workload.matrix()))
    });
}

criterion_group!(benches, bench_categorize);
criterion_main!(benches);
