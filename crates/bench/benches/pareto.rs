//! Fig. 1 regeneration cost: profiling a corpus/dataset across every
//! service version (the workload builders behind every experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use tt_asr::CorpusConfig;
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::{AsrWorkload, VisionWorkload};

fn bench_workload_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_profiling");
    group.sample_size(10);
    group.bench_function("asr_60_utterances_x7_versions", |b| {
        b.iter(|| AsrWorkload::build(CorpusConfig::small()))
    });
    group.bench_function("vision_300_images_x6_models", |b| {
        b.iter(|| VisionWorkload::build(DatasetConfig::small(), Device::Cpu))
    });
    group.finish();
}

criterion_group!(benches, bench_workload_builds);
criterion_main!(benches);
