//! Micro-benchmarks of the discrete-event kernel and the serving
//! cluster (the substrate behind the serving-layer results).

use criterion::{criterion_group, criterion_main, Criterion};
use tt_core::objective::Objective;
use tt_core::request::ServiceRequest;
use tt_core::rulegen::RoutingRuleGenerator;
use tt_serve::cluster::{ClusterConfig, ClusterSim, PoolDevice};
use tt_serve::frontend::TieredFrontend;
use tt_serve::PricingCatalog;
use tt_sim::{ArrivalProcess, EventQueue, ServiceNode, SimDuration, SimTime};
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::{RequestMix, VisionWorkload};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });
}

fn bench_node_admission(c: &mut Criterion) {
    c.bench_function("service_node_admit_10k", |b| {
        b.iter(|| {
            let mut node = ServiceNode::new(8);
            for i in 0..10_000u64 {
                node.admit(SimTime::from_micros(i * 100), SimDuration::from_micros(750));
            }
            node.busy_time()
        })
    });
}

fn bench_cluster(c: &mut Criterion) {
    let workload =
        VisionWorkload::build(DatasetConfig::evaluation().with_images(1_000), Device::Gpu);
    let matrix = workload.matrix();
    let generator = RoutingRuleGenerator::with_defaults(matrix, 0.99, 5).unwrap();
    let frontend = TieredFrontend::new(vec![generator
        .generate(&[0.0, 0.05, 0.10], Objective::ResponseTime)
        .unwrap()]);
    let mix = RequestMix::representative();
    let n = 2_000;
    let arrivals: Vec<(SimTime, ServiceRequest)> = ArrivalProcess::poisson(200.0, 3)
        .unwrap()
        .take(n)
        .zip(mix.sample(n, matrix.requests(), 4))
        .collect();

    let mut group = c.benchmark_group("serving_cluster");
    group.sample_size(10);
    group.bench_function("poisson_2000_requests", |b| {
        b.iter(|| {
            let config = ClusterConfig {
                slots_per_pool: 8,
                devices: vec![PoolDevice::Gpu; matrix.versions()],
                pricing: PricingCatalog::list_prices(),
                trace_retention: None,
            };
            ClusterSim::new(matrix, config).run(&frontend, &arrivals)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_node_admission,
    bench_cluster
);
criterion_main!(benches);
