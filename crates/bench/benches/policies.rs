//! Fig. 5 regeneration cost: closed-form policy evaluation over a
//! profile matrix, for every scheduling × termination flavour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tt_core::policy::{Policy, Scheduling, Termination};
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::VisionWorkload;

fn bench_policies(c: &mut Criterion) {
    let workload =
        VisionWorkload::build(DatasetConfig::evaluation().with_images(5_000), Device::Cpu);
    let matrix = workload.matrix();
    let best = matrix.best_version().unwrap();

    let mut group = c.benchmark_group("fig5_policy_eval_5000_requests");
    let flavours = [
        ("single", Policy::Single { version: best }),
        (
            "seq_et",
            Policy::Cascade {
                cheap: 0,
                accurate: best,
                threshold: 0.8,
                scheduling: Scheduling::Sequential,
                termination: Termination::EarlyTerminate,
            },
        ),
        (
            "conc_et",
            Policy::Cascade {
                cheap: 0,
                accurate: best,
                threshold: 0.8,
                scheduling: Scheduling::Concurrent,
                termination: Termination::EarlyTerminate,
            },
        ),
        (
            "conc_fo",
            Policy::Cascade {
                cheap: 0,
                accurate: best,
                threshold: 0.8,
                scheduling: Scheduling::Concurrent,
                termination: Termination::FinishOut,
            },
        ),
    ];
    for (name, policy) in flavours {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, p| {
            b.iter(|| p.evaluate(matrix, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
