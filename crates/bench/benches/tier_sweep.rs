//! Figs. 8/9 regeneration cost: the full tolerance-tier sweep on a
//! CI-scale workload.

use criterion::{criterion_group, criterion_main, Criterion};
use tt_core::objective::Objective;
use tt_experiments::sweep::sweep_tiers;
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::VisionWorkload;

fn bench_sweep(c: &mut Criterion) {
    let workload =
        VisionWorkload::build(DatasetConfig::evaluation().with_images(1_000), Device::Gpu);
    let matrix = workload.matrix();
    let tolerances = [0.0, 0.01, 0.02, 0.05, 0.10];

    let mut group = c.benchmark_group("fig8_fig9_tier_sweep");
    group.sample_size(10);
    for objective in [Objective::ResponseTime, Objective::Cost] {
        group.bench_function(format!("sweep_{objective}"), |b| {
            b.iter(|| sweep_tiers(matrix, &tolerances, objective, 8).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
