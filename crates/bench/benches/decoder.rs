//! Micro-benchmark: beam-search decode latency per service version
//! (the real compute behind the ASR side of Fig. 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tt_asr::acoustic::AcousticModel;
use tt_asr::decoder::{BeamConfig, Decoder};
use tt_asr::lexicon::Lexicon;
use tt_asr::lm::LanguageModel;

fn bench_decoder(c: &mut Criterion) {
    let lexicon = Lexicon::synthesize(2_000, 7);
    let lm = LanguageModel::synthesize(2_000, 16, 7);
    let acoustic = AcousticModel::default();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let words = lm.sample_sentence(&mut rng, 8);
    let frames = acoustic.render(&lexicon, &words, 1.2, 11);
    let decoder = Decoder::new(&lexicon, &lm);

    let mut group = c.benchmark_group("decode_one_utterance");
    group.sample_size(20);
    for config in BeamConfig::paper_versions() {
        group.bench_with_input(
            BenchmarkId::from_parameter(config.name.clone()),
            &config,
            |b, cfg| b.iter(|| decoder.decode(&frames, cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decoder);
criterion_main!(benches);
