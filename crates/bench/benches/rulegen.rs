//! Fig. 7 regeneration cost: the bootstrapped routing-rule generator.

use criterion::{criterion_group, criterion_main, Criterion};
use tt_core::objective::Objective;
use tt_core::rulegen::RoutingRuleGenerator;
use tt_vision::dataset::DatasetConfig;
use tt_vision::Device;
use tt_workloads::VisionWorkload;

fn bench_rulegen(c: &mut Criterion) {
    let workload =
        VisionWorkload::build(DatasetConfig::evaluation().with_images(1_000), Device::Cpu);
    let matrix = workload.matrix();

    let mut group = c.benchmark_group("fig7_rule_generation");
    group.sample_size(10);
    group.bench_function("bootstrap_all_candidates_1000_requests", |b| {
        b.iter(|| RoutingRuleGenerator::with_defaults(matrix, 0.999, 3).unwrap())
    });
    group.bench_function("bootstrap_sequential_1_thread", |b| {
        b.iter(|| RoutingRuleGenerator::with_defaults_threaded(matrix, 0.999, 3, 1).unwrap())
    });
    group.bench_function("bootstrap_parallel_all_threads", |b| {
        b.iter(|| RoutingRuleGenerator::with_defaults_threaded(matrix, 0.999, 3, 0).unwrap())
    });

    let generator = RoutingRuleGenerator::with_defaults(matrix, 0.999, 3).unwrap();
    let grid: Vec<f64> = (0..=100).map(|i| i as f64 / 1000.0).collect();
    group.bench_function("generate_101_tier_grid", |b| {
        b.iter(|| generator.generate(&grid, Objective::ResponseTime).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_rulegen);
criterion_main!(benches);
