//! Property-based tests for the ASR substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use tt_asr::acoustic::AcousticModel;
use tt_asr::decoder::{BeamConfig, Decoder};
use tt_asr::lexicon::{Lexicon, WordId};
use tt_asr::lm::LanguageModel;
use tt_asr::wer::{wer, word_errors, WerAccumulator};

fn fixture(vocab: usize, seed: u64) -> (Lexicon, LanguageModel) {
    (
        Lexicon::synthesize(vocab, seed),
        LanguageModel::synthesize(vocab, 8, seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lm_log_probs_are_finite_and_negative(
        vocab in 10usize..200,
        seed in 0u64..50,
        prev in 0u32..10,
        next in 0u32..10,
    ) {
        let (_, lm) = fixture(vocab, seed);
        let lp = lm.log_prob(Some(WordId(prev % vocab as u32)), WordId(next % vocab as u32));
        prop_assert!(lp.is_finite());
        prop_assert!(lp < 0.0);
    }

    #[test]
    fn candidate_successors_unique_and_bounded(
        vocab in 10usize..150,
        seed in 0u64..50,
        prev in 0u32..10,
        limit in 1usize..60,
    ) {
        let (_, lm) = fixture(vocab, seed);
        let cands = lm.candidate_successors(Some(WordId(prev % vocab as u32)), limit);
        prop_assert!(cands.len() <= limit);
        prop_assert!(cands.iter().all(|w| (w.0 as usize) < vocab));
        let mut dedup = cands.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), cands.len());
    }

    #[test]
    fn rendering_frame_count_tracks_pronunciations(
        vocab in 20usize..100,
        seed in 0u64..30,
        len in 1usize..6,
        noise in 0.1f64..3.0,
    ) {
        let (lexicon, lm) = fixture(vocab, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let words = lm.sample_sentence(&mut rng, len);
        let frames = AcousticModel::default().render(&lexicon, &words, noise, seed);
        let phones: usize = words.iter().map(|&w| lexicon.word(w).pronunciation().len()).sum();
        prop_assert!(frames.len() >= 2 * phones);
        prop_assert!(frames.len() <= 4 * phones);
        prop_assert!(frames.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn decode_output_invariants(
        vocab in 30usize..120,
        seed in 0u64..20,
        noise in 0.2f64..2.5,
    ) {
        let (lexicon, lm) = fixture(vocab, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
        let words = lm.sample_sentence(&mut rng, 4);
        let frames = AcousticModel::default().render(&lexicon, &words, noise, seed);
        let cfg = BeamConfig::new("prop", 12.0, 64, 16);
        let out = Decoder::new(&lexicon, &lm).decode(&frames, &cfg);
        prop_assert!(!out.words.is_empty());
        prop_assert!(out.score.is_finite());
        prop_assert!(out.work > 0);
        prop_assert_eq!(out.frames, frames.len());
        if let Some(r) = out.runner_up {
            prop_assert!(r.is_finite());
        }
        prop_assert!(out.words.iter().all(|w| (w.0 as usize) < vocab));
    }

    #[test]
    fn wer_is_a_normalized_edit_count(
        hyp in prop::collection::vec(0u32..20, 0..12),
        reference in prop::collection::vec(0u32..20, 1..12),
    ) {
        let h: Vec<WordId> = hyp.iter().map(|&w| WordId(w)).collect();
        let r: Vec<WordId> = reference.iter().map(|&w| WordId(w)).collect();
        let errors = word_errors(&h, &r);
        prop_assert!((wer(&h, &r) - errors as f64 / r.len() as f64).abs() < 1e-12);
        prop_assert!(errors >= h.len().abs_diff(r.len()));
    }

    #[test]
    fn wer_accumulator_matches_manual_pool(
        pairs in prop::collection::vec(
            (prop::collection::vec(0u32..9, 0..6), prop::collection::vec(0u32..9, 1..6)),
            1..8,
        ),
    ) {
        let mut acc = WerAccumulator::new();
        let mut errors = 0usize;
        let mut words = 0usize;
        for (h, r) in &pairs {
            let h: Vec<WordId> = h.iter().map(|&w| WordId(w)).collect();
            let r: Vec<WordId> = r.iter().map(|&w| WordId(w)).collect();
            acc.add(&h, &r);
            errors += word_errors(&h, &r);
            words += r.len();
        }
        prop_assert_eq!(acc.errors(), errors);
        prop_assert_eq!(acc.reference_words(), words);
        prop_assert!((acc.rate() - errors as f64 / words as f64).abs() < 1e-12);
    }
}
