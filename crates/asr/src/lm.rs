//! A bigram language model with Zipf unigram frequencies.
//!
//! Word `w0` is the most frequent word, `w1` the next, and so on (rank =
//! id), with Zipf-distributed unigram mass. Each word additionally has a
//! small set of *likely successors* carrying a fixed share of the
//! transition mass — the synthetic analogue of collocations — and the
//! remaining mass backs off to the unigram distribution.
//!
//! The decoder exploits exactly the structure real decoders do: at a word
//! boundary it expands the likely successors plus the top unigram words,
//! and how many of those it considers is one of the pruning knobs that
//! create the accuracy-latency trade-off.

use crate::lexicon::WordId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_stats::sampling::Zipf;

/// Share of transition mass given to the likely-successor set.
const SUCCESSOR_MASS: f64 = 0.7;

/// A bigram language model over a vocabulary of `n` words.
///
/// ```
/// use tt_asr::lm::LanguageModel;
/// use tt_asr::WordId;
///
/// let lm = LanguageModel::synthesize(1000, 16, 42);
/// let lp = lm.log_prob(Some(WordId(0)), WordId(1));
/// assert!(lp < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LanguageModel {
    unigram: Zipf,
    /// Per-word likely successors with their conditional probabilities
    /// (sums to `SUCCESSOR_MASS` per word).
    successors: Vec<Vec<(WordId, f64)>>,
}

impl LanguageModel {
    /// Build a model over `vocab` words, each with `branching` likely
    /// successors, from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or `branching == 0`.
    pub fn synthesize(vocab: usize, branching: usize, seed: u64) -> Self {
        assert!(vocab > 0, "vocabulary must be non-empty");
        assert!(branching > 0, "branching must be positive");
        let unigram = Zipf::new(vocab, 1.3).expect("validated parameters");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xC0FF_EE00));
        let branching = branching.min(vocab);
        let successors = (0..vocab)
            .map(|_| {
                let mut set = Vec::with_capacity(branching);
                let mut weight_total = 0.0;
                for k in 0..branching {
                    // Successors are drawn from the unigram distribution so
                    // frequent words are frequent continuations too.
                    let next = WordId(unigram.sample(&mut rng) as u32);
                    let weight = 1.0 / (k + 1) as f64;
                    weight_total += weight;
                    set.push((next, weight));
                }
                for (_, w) in &mut set {
                    *w = *w / weight_total * SUCCESSOR_MASS;
                }
                set
            })
            .collect();
        LanguageModel {
            unigram,
            successors,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.unigram.len()
    }

    /// Unigram probability of a word.
    pub fn unigram_prob(&self, word: WordId) -> f64 {
        self.unigram.pmf(word.index())
    }

    /// Log probability of `next` given the previous word (`None` at
    /// sentence start, which uses the unigram distribution).
    pub fn log_prob(&self, prev: Option<WordId>, next: WordId) -> f64 {
        match prev {
            None => self.unigram_prob(next).ln(),
            Some(prev) => {
                let set = &self.successors[prev.index()];
                let direct: f64 = set
                    .iter()
                    .filter(|(w, _)| *w == next)
                    .map(|(_, p)| *p)
                    .sum();
                let backoff = (1.0 - SUCCESSOR_MASS) * self.unigram_prob(next);
                (direct + backoff).ln()
            }
        }
    }

    /// The words the decoder should consider after `prev`: the likely
    /// successors followed by the highest-frequency unigram words, with
    /// duplicates removed, truncated to `limit`.
    pub fn candidate_successors(&self, prev: Option<WordId>, limit: usize) -> Vec<WordId> {
        let mut out: Vec<WordId> = Vec::with_capacity(limit);
        if let Some(prev) = prev {
            for (w, _) in &self.successors[prev.index()] {
                if out.len() == limit {
                    return out;
                }
                if !out.contains(w) {
                    out.push(*w);
                }
            }
        }
        // Word ids are unigram rank order, so the top unigram words are
        // simply 0, 1, 2, ...
        for rank in 0..self.vocab() {
            if out.len() == limit {
                break;
            }
            let w = WordId(rank as u32);
            if !out.contains(&w) {
                out.push(w);
            }
        }
        out
    }

    /// Sample a sentence of `len` words.
    pub fn sample_sentence<R: Rng>(&self, rng: &mut R, len: usize) -> Vec<WordId> {
        let mut sentence = Vec::with_capacity(len);
        let mut prev: Option<WordId> = None;
        for _ in 0..len {
            let next = if let Some(p) = prev {
                if rng.gen::<f64>() < SUCCESSOR_MASS {
                    // Draw from the successor set, weighted.
                    let set = &self.successors[p.index()];
                    let total: f64 = set.iter().map(|(_, w)| w).sum();
                    let mut u = rng.gen::<f64>() * total;
                    let mut chosen = set[set.len() - 1].0;
                    for (w, mass) in set {
                        if u < *mass {
                            chosen = *w;
                            break;
                        }
                        u -= mass;
                    }
                    chosen
                } else {
                    WordId(self.unigram.sample(rng) as u32)
                }
            } else {
                WordId(self.unigram.sample(rng) as u32)
            };
            sentence.push(next);
            prev = Some(next);
        }
        sentence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn lm() -> LanguageModel {
        LanguageModel::synthesize(500, 12, 7)
    }

    #[test]
    fn log_probs_are_negative_and_finite() {
        let lm = lm();
        for next in [0u32, 1, 100, 499] {
            let lp = lm.log_prob(Some(WordId(3)), WordId(next));
            assert!(lp.is_finite());
            assert!(lp < 0.0);
        }
    }

    #[test]
    fn successor_words_are_more_likely_than_backoff() {
        let lm = lm();
        let succ = lm.candidate_successors(Some(WordId(0)), 1)[0];
        // Compare against a rare word that is (almost surely) not a successor.
        let rare = WordId(499);
        assert!(lm.log_prob(Some(WordId(0)), succ) > lm.log_prob(Some(WordId(0)), rare));
    }

    #[test]
    fn sentence_start_uses_unigram() {
        let lm = lm();
        let lp = lm.log_prob(None, WordId(0));
        assert!((lp - lm.unigram_prob(WordId(0)).ln()).abs() < 1e-12);
    }

    #[test]
    fn candidate_successors_respects_limit_and_uniqueness() {
        let lm = lm();
        for limit in [1usize, 5, 50, 200] {
            let cands = lm.candidate_successors(Some(WordId(2)), limit);
            assert_eq!(cands.len(), limit.min(lm.vocab()));
            let mut dedup = cands.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), cands.len(), "duplicates at limit {limit}");
        }
    }

    #[test]
    fn transition_mass_roughly_normalizes() {
        // Sum over the whole vocab of P(next | prev) should be ~1.
        let lm = lm();
        let total: f64 = (0..lm.vocab())
            .map(|i| lm.log_prob(Some(WordId(1)), WordId(i as u32)).exp())
            .sum();
        assert!((total - 1.0).abs() < 0.05, "total transition mass {total}");
    }

    #[test]
    fn sample_sentence_has_requested_length() {
        let lm = lm();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(lm.sample_sentence(&mut rng, 7).len(), 7);
        assert!(lm.sample_sentence(&mut rng, 0).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let lm = lm();
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(
            lm.sample_sentence(&mut a, 10),
            lm.sample_sentence(&mut b, 10)
        );
    }
}
