//! The beam-search decoder.
//!
//! A token-passing Viterbi search over the utterance's emission frames.
//! Each token occupies a state `(word, phone index)`; per frame a token
//! may *stay* in its phone, *advance* to the next phone, or — when at the
//! final phone of its word — *exit* into a candidate next word scored by
//! the language model. The search is pruned three ways, matching the
//! orthogonal heuristic concerns the paper describes:
//!
//! * **local** — a log-probability beam relative to the frame's best
//!   token ([`BeamConfig::beam`]);
//! * **global** — histogram pruning to the top
//!   [`BeamConfig::max_active`] tokens;
//! * **network** — the number of successor words expanded at word exits
//!   ([`BeamConfig::word_exit_candidates`]), plus a tighter word-end
//!   beam ([`BeamConfig::word_end_beam`]).
//!
//! The decoder counts every token expansion; the engine converts that
//! work into a deterministic latency.

mod beam;
mod config;

pub use beam::{DecodeResult, Decoder, Hypothesis};
pub use config::BeamConfig;
