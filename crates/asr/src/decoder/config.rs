//! Beam-search pruning configurations (the paper's service versions).

/// Pruning parameters for one decoder configuration.
///
/// The paper's seven ASR service versions are points along the Pareto
/// frontier of a six-parameter grid search; [`BeamConfig::paper_versions`]
/// provides the equivalent ladder for this decoder.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeamConfig {
    /// Human-readable version name (`"v1"`..`"v7"` for the paper ladder).
    pub name: String,
    /// Local pruning: drop tokens scoring below `best - beam`.
    pub beam: f64,
    /// Global pruning: keep at most this many tokens per frame.
    pub max_active: usize,
    /// Network pruning: successor words considered at a word exit.
    pub word_exit_candidates: usize,
    /// Tokens must score within this of the frame best to exit a word.
    pub word_end_beam: f64,
    /// Language-model scale factor.
    pub lm_scale: f64,
    /// Additive penalty per emitted word (discourages over-segmentation).
    pub word_insertion_penalty: f64,
}

impl BeamConfig {
    /// Create a configuration with the shared scoring defaults and the
    /// three pruning knobs that differentiate versions.
    ///
    /// # Panics
    ///
    /// Panics if any pruning parameter is degenerate (non-positive beam,
    /// zero tokens or candidates).
    pub fn new(
        name: impl Into<String>,
        beam: f64,
        max_active: usize,
        word_exit_candidates: usize,
    ) -> Self {
        assert!(beam > 0.0, "beam must be positive");
        assert!(max_active > 0, "max_active must be positive");
        assert!(
            word_exit_candidates > 0,
            "word_exit_candidates must be positive"
        );
        BeamConfig {
            name: name.into(),
            beam,
            max_active,
            word_exit_candidates,
            word_end_beam: beam * 0.75,
            lm_scale: 2.0,
            word_insertion_penalty: -1.0,
        }
    }

    /// The seven-version ladder used throughout the reproduction,
    /// ordered from fastest/least accurate (`v1`) to slowest/most
    /// accurate (`v7`).
    pub fn paper_versions() -> Vec<BeamConfig> {
        vec![
            BeamConfig::new("v1", 14.0, 48, 24),
            BeamConfig::new("v2", 16.0, 64, 27),
            BeamConfig::new("v3", 18.0, 84, 30),
            BeamConfig::new("v4", 20.0, 112, 33),
            BeamConfig::new("v5", 23.0, 150, 36),
            BeamConfig::new("v6", 26.0, 205, 40),
            BeamConfig::new("v7", 29.0, 280, 44),
        ]
    }
}

impl std::fmt::Display for BeamConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}(beam={}, max_active={}, cands={})",
            self.name, self.beam, self.max_active, self.word_exit_candidates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_every_knob() {
        let versions = BeamConfig::paper_versions();
        assert_eq!(versions.len(), 7);
        for pair in versions.windows(2) {
            assert!(pair[0].beam < pair[1].beam);
            assert!(pair[0].max_active < pair[1].max_active);
            assert!(pair[0].word_exit_candidates <= pair[1].word_exit_candidates);
        }
    }

    #[test]
    fn names_are_v1_through_v7() {
        let names: Vec<String> = BeamConfig::paper_versions()
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names, vec!["v1", "v2", "v3", "v4", "v5", "v6", "v7"]);
    }

    #[test]
    #[should_panic(expected = "beam must be positive")]
    fn zero_beam_panics() {
        let _ = BeamConfig::new("bad", 0.0, 10, 5);
    }

    #[test]
    fn display_mentions_the_name() {
        let c = BeamConfig::new("vX", 5.0, 10, 5);
        assert!(c.to_string().contains("vX"));
    }
}
