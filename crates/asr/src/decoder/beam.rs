//! Token-passing Viterbi beam search.

use crate::acoustic::Frame;
use crate::decoder::BeamConfig;
use crate::lexicon::{Lexicon, WordId};
use crate::lm::LanguageModel;
use std::collections::HashMap;

/// Log-probability of remaining in the current phone for another frame.
const LOG_STAY: f64 = -0.5108256237659907; // ln 0.6
/// Log-probability of advancing to the next phone.
const LOG_ADVANCE: f64 = -0.916290731874155; // ln 0.4

/// Sentinel for the root of the backtrace arena.
const ROOT: u32 = u32::MAX;

/// The outcome of decoding one utterance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DecodeResult {
    /// Best-path word hypothesis.
    pub words: Vec<WordId>,
    /// Log score of the best path.
    pub score: f64,
    /// Log score of the best surviving competitor on a different
    /// history, if the beam retained one. The gap to `score` drives the
    /// confidence metric. May *exceed* `score`: the best answer must
    /// have completed its final word, while a competitor may be
    /// mid-word with a higher effective score — maximal ambiguity,
    /// which the confidence model maps to a low confidence.
    pub runner_up: Option<f64>,
    /// Token expansions performed (the decoder's work counter, which the
    /// engine converts to latency).
    pub work: u64,
    /// Number of emission frames consumed.
    pub frames: usize,
}

#[derive(Debug, Clone, Copy)]
struct Token {
    word: WordId,
    phone_idx: u16,
    score: f64,
    /// Per-phone share of the word's language-model cost. The full LM
    /// cost of entering a word would land on its entry frame and throw
    /// rare words out of any realistic beam; production decoders push
    /// the weight across the word (WFST weight-pushing), which this
    /// field implements: one share is charged at entry and one at every
    /// phone advance within the word.
    lm_per_phone: f64,
    /// LM cost not yet charged (used to compare tokens fairly when
    /// merging: a token that has paid less so far is not better).
    pending_lm: f64,
    hist: u32,
}

impl Token {
    /// Score adjusted for LM cost not yet charged; the fair basis for
    /// Viterbi merging and pruning.
    fn effective_score(&self) -> f64 {
        self.score + self.pending_lm
    }
}

/// A beam-search decoder borrowing a lexicon and language model.
#[derive(Debug, Clone, Copy)]
pub struct Decoder<'a> {
    lexicon: &'a Lexicon,
    lm: &'a LanguageModel,
}

impl<'a> Decoder<'a> {
    /// Create a decoder over the given lexicon and language model.
    pub fn new(lexicon: &'a Lexicon, lm: &'a LanguageModel) -> Self {
        Decoder { lexicon, lm }
    }

    /// Assemble the words to expand at a word boundary. Half the budget
    /// goes to the language model's likely successors (plus top unigram
    /// words); the other half to *acoustic fast-match* candidates — the
    /// classic rapid-match idea: words whose first phone matches the
    /// frame's best-scoring phones, ranked by a short emission lookahead
    /// over their opening phones plus their language-model prior. The
    /// fast match is what lets the decoder recover words the language
    /// model would never propose; how many candidates survive is the
    /// "network scope" pruning dimension of the paper's engine.
    fn exit_candidates(
        &self,
        prev: Option<WordId>,
        frames: &[Frame],
        t: usize,
        budget: usize,
        work: &mut u64,
    ) -> Vec<WordId> {
        let lm_budget = budget / 2 + 1;
        let mut out = self.lm.candidate_successors(prev, lm_budget);

        // Top two phones by emission score at the entry frame.
        let frame = &frames[t];
        let mut ranked: Vec<usize> = (0..frame.len()).collect();
        ranked.sort_by(|&a, &b| frame[b].partial_cmp(&frame[a]).expect("finite emission"));
        let per_phone = (budget.saturating_sub(out.len())) / 2 + 1;

        const LOOKAHEAD: usize = 4; // frames scanned by the fast match
        for &p in ranked.iter().take(2) {
            let bucket = self
                .lexicon
                .words_with_first_phone(crate::phone::Phone::new(p as u8));
            // Rank the bucket by lookahead acoustic fit + LM prior.
            let mut scored: Vec<(f64, WordId)> = bucket
                .iter()
                .map(|&w| {
                    *work += 1;
                    let pron = self.lexicon.word(w).pronunciation();
                    let mut fit = self.lm.log_prob(prev, w);
                    for k in 0..LOOKAHEAD {
                        let Some(frame) = frames.get(t + k) else {
                            break;
                        };
                        // ~2 frames per phone: frame t+k aligns to phone k/2.
                        let phone = pron[(k / 2).min(pron.len() - 1)];
                        fit += f64::from(frame[phone.index()]);
                    }
                    (fit, w)
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite fit"));
            for (_, w) in scored.into_iter().take(per_phone) {
                if out.len() >= budget {
                    return out;
                }
                if !out.contains(&w) {
                    out.push(w);
                }
            }
        }
        out.truncate(budget);
        out
    }

    /// Decode emission frames under a pruning configuration.
    pub fn decode(&self, frames: &[Frame], config: &BeamConfig) -> DecodeResult {
        if frames.is_empty() {
            return DecodeResult {
                words: Vec::new(),
                score: 0.0,
                runner_up: None,
                work: 0,
                frames: 0,
            };
        }
        let search = self.run_search(frames, config);
        search.finalize_best(self, frames.len())
    }

    /// Decode and return the `n` best distinct word sequences the beam
    /// retained, best first. The 1-best entry equals
    /// [`Decoder::decode`]'s hypothesis; entries beyond what the beam
    /// kept alive are simply absent (narrow beams may retain a single
    /// hypothesis).
    pub fn decode_nbest(&self, frames: &[Frame], config: &BeamConfig, n: usize) -> Vec<Hypothesis> {
        if frames.is_empty() || n == 0 {
            return Vec::new();
        }
        let search = self.run_search(frames, config);
        let mut ranked: Vec<&Token> = search.tokens.iter().collect();
        ranked.sort_by(|a, b| {
            b.effective_score()
                .partial_cmp(&a.effective_score())
                .expect("scores are finite")
        });
        let mut out: Vec<Hypothesis> = Vec::with_capacity(n);
        for t in ranked {
            let words = backtrace(&search.arena, t.hist);
            if out.iter().any(|h| h.words == words) {
                continue;
            }
            out.push(Hypothesis {
                words,
                score: t.effective_score(),
            });
            if out.len() == n {
                break;
            }
        }
        out
    }

    /// The main token-passing loop, shared by 1-best and n-best decode.
    fn run_search(&self, frames: &[Frame], config: &BeamConfig) -> SearchState<'_> {
        // Backtrace arena: (previous entry, word entered).
        let mut arena: Vec<(u32, WordId)> = Vec::new();
        let mut work: u64 = 0;

        // Active tokens, unique per (word, phone_idx).
        let mut tokens: Vec<Token> = Vec::new();
        let mut index: HashMap<(u32, u16), usize> = HashMap::new();

        // Frame 0: enter the candidate first words.
        for w in self.exit_candidates(None, frames, 0, config.word_exit_candidates, &mut work) {
            let pron = self.lexicon.word(w).pronunciation();
            let total_lm =
                config.lm_scale * self.lm.log_prob(None, w) + config.word_insertion_penalty;
            let per = total_lm / pron.len() as f64;
            let score = per + f64::from(frames[0][pron[0].index()]);
            let hist = push(&mut arena, ROOT, w);
            work += 1;
            upsert(
                &mut tokens,
                &mut index,
                Token {
                    word: w,
                    phone_idx: 0,
                    score,
                    lm_per_phone: per,
                    pending_lm: total_lm - per,
                    hist,
                },
            );
        }
        prune(&mut tokens, &mut index, config);

        for fi in 1..frames.len() {
            let frame = &frames[fi];
            let best_prev = tokens
                .iter()
                .map(Token::effective_score)
                .fold(f64::NEG_INFINITY, f64::max);
            let mut next: Vec<Token> = Vec::with_capacity(tokens.len() * 2);
            let mut next_index: HashMap<(u32, u16), usize> =
                HashMap::with_capacity(tokens.len() * 2);
            // Fast-match results are identical for every token leaving the
            // same word at the same frame; memoize them (real decoders run
            // the rapid match once per frame too).
            let mut exit_cache: HashMap<u32, Vec<WordId>> = HashMap::new();

            for t in &tokens {
                let pron = self.lexicon.word(t.word).pronunciation();
                let idx = t.phone_idx as usize;

                // Stay in the current phone.
                work += 1;
                upsert(
                    &mut next,
                    &mut next_index,
                    Token {
                        score: t.score + LOG_STAY + f64::from(frame[pron[idx].index()]),
                        ..*t
                    },
                );

                // Advance to the next phone of the word, paying the next
                // share of the pushed LM cost.
                if idx + 1 < pron.len() {
                    work += 1;
                    upsert(
                        &mut next,
                        &mut next_index,
                        Token {
                            phone_idx: t.phone_idx + 1,
                            score: t.score
                                + t.lm_per_phone
                                + LOG_ADVANCE
                                + f64::from(frame[pron[idx + 1].index()]),
                            pending_lm: t.pending_lm - t.lm_per_phone,
                            ..*t
                        },
                    );
                } else if t.effective_score() >= best_prev - config.word_end_beam {
                    // Exit the word into candidate successors.
                    let exits = match exit_cache.entry(t.word.0) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(self.exit_candidates(
                                Some(t.word),
                                frames,
                                fi,
                                config.word_exit_candidates,
                                &mut work,
                            ))
                        }
                    };
                    for &w in exits.iter() {
                        let next_pron = self.lexicon.word(w).pronunciation();
                        let total_lm = config.lm_scale * self.lm.log_prob(Some(t.word), w)
                            + config.word_insertion_penalty;
                        let per = total_lm / next_pron.len() as f64;
                        let score =
                            t.score + LOG_ADVANCE + per + f64::from(frame[next_pron[0].index()]);
                        let pending_lm = total_lm - per;
                        work += 1;
                        // Defer arena push until we know the token survives
                        // the upsert (avoids unbounded arena growth).
                        let key = (w.0, 0u16);
                        match next_index.get(&key) {
                            Some(&i) if next[i].effective_score() >= score + pending_lm => {}
                            _ => {
                                let hist = push(&mut arena, t.hist, w);
                                upsert(
                                    &mut next,
                                    &mut next_index,
                                    Token {
                                        word: w,
                                        phone_idx: 0,
                                        score,
                                        lm_per_phone: per,
                                        pending_lm,
                                        hist,
                                    },
                                );
                            }
                        }
                    }
                }
            }

            tokens = next;
            index = next_index;
            prune(&mut tokens, &mut index, config);
            if tokens.is_empty() {
                break;
            }
        }

        SearchState {
            tokens,
            arena,
            work,
            lexicon: self.lexicon,
        }
    }
}

/// A ranked alternative hypothesis from [`Decoder::decode_nbest`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hypothesis {
    /// Word sequence.
    pub words: Vec<WordId>,
    /// Effective log score.
    pub score: f64,
}

/// The surviving beam at the final frame.
struct SearchState<'a> {
    tokens: Vec<Token>,
    arena: Vec<(u32, WordId)>,
    work: u64,
    lexicon: &'a Lexicon,
}

impl SearchState<'_> {
    /// Finalize: prefer tokens that completed their word's last phone.
    fn finalize_best(&self, _decoder: &Decoder<'_>, frames: usize) -> DecodeResult {
        let mut finalized: Vec<&Token> = self
            .tokens
            .iter()
            .filter(|t| {
                (t.phone_idx as usize) == self.lexicon.word(t.word).pronunciation().len() - 1
            })
            .collect();
        if finalized.is_empty() {
            finalized = self.tokens.iter().collect();
        }
        finalized.sort_by(|a, b| {
            b.effective_score()
                .partial_cmp(&a.effective_score())
                .expect("scores are finite")
        });

        let Some(best) = finalized.first() else {
            return DecodeResult {
                words: Vec::new(),
                score: f64::NEG_INFINITY,
                runner_up: None,
                work: self.work,
                frames,
            };
        };
        // The runner-up is the best surviving token on a *different*
        // history — finalized or not (mid-word competitors still witness
        // ambiguity, which is what the confidence metric needs).
        let runner_up = self
            .tokens
            .iter()
            .filter(|t| t.hist != best.hist)
            .map(Token::effective_score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });

        DecodeResult {
            words: backtrace(&self.arena, best.hist),
            score: best.effective_score(),
            runner_up,
            work: self.work,
            frames,
        }
    }
}

fn push(arena: &mut Vec<(u32, WordId)>, prev: u32, word: WordId) -> u32 {
    arena.push((prev, word));
    (arena.len() - 1) as u32
}

fn backtrace(arena: &[(u32, WordId)], mut hist: u32) -> Vec<WordId> {
    let mut words = Vec::new();
    while hist != ROOT {
        let (prev, word) = arena[hist as usize];
        words.push(word);
        hist = prev;
    }
    words.reverse();
    words
}

/// Insert a token, keeping only the best-scoring token per state
/// (exact Viterbi merge: with a bigram LM the future depends only on the
/// current word).
fn upsert(tokens: &mut Vec<Token>, index: &mut HashMap<(u32, u16), usize>, token: Token) {
    match index.entry((token.word.0, token.phone_idx)) {
        std::collections::hash_map::Entry::Occupied(e) => {
            let i = *e.get();
            if tokens[i].effective_score() < token.effective_score() {
                tokens[i] = token;
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(tokens.len());
            tokens.push(token);
        }
    }
}

/// Apply the local beam and global histogram pruning.
fn prune(tokens: &mut Vec<Token>, index: &mut HashMap<(u32, u16), usize>, config: &BeamConfig) {
    if tokens.is_empty() {
        return;
    }
    let best = tokens
        .iter()
        .map(Token::effective_score)
        .fold(f64::NEG_INFINITY, f64::max);
    tokens.retain(|t| t.effective_score() >= best - config.beam);
    if tokens.len() > config.max_active {
        tokens.sort_by(|a, b| {
            b.effective_score()
                .partial_cmp(&a.effective_score())
                .expect("scores are finite")
        });
        tokens.truncate(config.max_active);
    }
    index.clear();
    for (i, t) in tokens.iter().enumerate() {
        index.insert((t.word.0, t.phone_idx), i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acoustic::AcousticModel;
    use crate::lexicon::Lexicon;
    use tt_stats::Alignment;

    struct Fixture {
        lexicon: Lexicon,
        lm: LanguageModel,
        acoustic: AcousticModel,
    }

    fn fixture() -> Fixture {
        Fixture {
            lexicon: Lexicon::synthesize(300, 11),
            lm: LanguageModel::synthesize(300, 12, 11),
            acoustic: AcousticModel::default(),
        }
    }

    fn wide() -> BeamConfig {
        BeamConfig::new("wide", 16.0, 400, 40)
    }

    fn narrow() -> BeamConfig {
        BeamConfig::new("narrow", 3.0, 12, 3)
    }

    #[test]
    fn empty_frames_decode_to_nothing() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let out = dec.decode(&[], &wide());
        assert!(out.words.is_empty());
        assert_eq!(out.work, 0);
    }

    #[test]
    fn clean_audio_decodes_exactly_under_a_wide_beam() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let reference = f.lm.sample_sentence(&mut rng, 5);
        let frames = f.acoustic.render(&f.lexicon, &reference, 0.05, 7);
        let out = dec.decode(&frames, &wide());
        assert_eq!(out.words, reference, "clean audio should decode exactly");
    }

    #[test]
    fn wide_beam_does_more_work_than_narrow() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let reference = f.lm.sample_sentence(&mut rng, 6);
        let frames = f.acoustic.render(&f.lexicon, &reference, 1.5, 21);
        let narrow_out = dec.decode(&frames, &narrow());
        let wide_out = dec.decode(&frames, &wide());
        assert!(
            wide_out.work > narrow_out.work * 2,
            "wide {} vs narrow {}",
            wide_out.work,
            narrow_out.work
        );
    }

    #[test]
    fn wide_beam_is_no_worse_on_average() {
        // Aggregate over several utterances: the wide beam's total word
        // errors must not exceed the narrow beam's.
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
        let mut narrow_errors = 0usize;
        let mut wide_errors = 0usize;
        for i in 0..12 {
            let reference = f.lm.sample_sentence(&mut rng, 6);
            let frames = f.acoustic.render(&f.lexicon, &reference, 1.8, 100 + i);
            narrow_errors +=
                Alignment::align(&dec.decode(&frames, &narrow()).words, &reference).errors();
            wide_errors +=
                Alignment::align(&dec.decode(&frames, &wide()).words, &reference).errors();
        }
        assert!(
            wide_errors <= narrow_errors,
            "wide {wide_errors} vs narrow {narrow_errors}"
        );
        // And with this noise level the narrow beam must actually err
        // somewhere, or the fixture is too easy to discriminate.
        assert!(narrow_errors > 0, "fixture too easy");
    }

    #[test]
    fn decoding_is_deterministic() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let reference = f.lm.sample_sentence(&mut rng, 5);
        let frames = f.acoustic.render(&f.lexicon, &reference, 1.0, 33);
        let a = dec.decode(&frames, &wide());
        let b = dec.decode(&frames, &wide());
        assert_eq!(a, b);
    }

    #[test]
    fn nbest_is_ranked_distinct_and_headed_by_the_one_best() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(41);
        let reference = f.lm.sample_sentence(&mut rng, 5);
        let frames = f.acoustic.render(&f.lexicon, &reference, 1.8, 77);
        let nbest = dec.decode_nbest(&frames, &wide(), 5);
        assert!(!nbest.is_empty());
        assert!(nbest.len() <= 5);
        // Ranked by score, all sequences distinct.
        for w in nbest.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert_ne!(w[0].words, w[1].words);
        }
        // 1-best agrees with decode()'s hypothesis... except when a
        // higher-scoring mid-word competitor survived; in that case the
        // 1-best hypothesis must still appear in the list.
        let one_best = dec.decode(&frames, &wide());
        assert!(
            nbest.iter().any(|h| h.words == one_best.words),
            "decode()'s hypothesis missing from the n-best list"
        );
    }

    #[test]
    fn nbest_degenerate_inputs() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        assert!(dec.decode_nbest(&[], &wide(), 3).is_empty());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(43);
        let reference = f.lm.sample_sentence(&mut rng, 3);
        let frames = f.acoustic.render(&f.lexicon, &reference, 1.0, 9);
        assert!(dec.decode_nbest(&frames, &wide(), 0).is_empty());
        assert_eq!(dec.decode_nbest(&frames, &wide(), 1).len(), 1);
    }

    #[test]
    fn runner_up_is_finite_and_usually_close_to_best() {
        let f = fixture();
        let dec = Decoder::new(&f.lexicon, &f.lm);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(29);
        for i in 0..5 {
            let reference = f.lm.sample_sentence(&mut rng, 4);
            let frames = f.acoustic.render(&f.lexicon, &reference, 2.0, 200 + i);
            let out = dec.decode(&frames, &wide());
            let r = out.runner_up.expect("wide beams always retain competitors");
            assert!(r.is_finite());
            // The competitor may slightly exceed the finalized best (a
            // mid-word token), but never by more than a word's worth of
            // score.
            assert!(
                (out.score - r).abs() < 100.0,
                "margin blew up: {}",
                out.score - r
            );
        }
    }
}
