//! The synthetic evaluation corpus.
//!
//! The paper benchmarks on VoxForge: 35 438 transcribed utterances, 53
//! hours of audio, 3 500+ speakers across varied recording environments.
//! This generator reproduces that population structure: every utterance
//! has a speaker (with a per-speaker clarity effect), a recording
//! environment (with a noise effect) and per-utterance jitter. The
//! combined noise level drives the acoustic renderer, so corpus
//! difficulty is heterogeneous in the same way VoxForge's is — which is
//! precisely what creates the paper's "unchanged / improves / varies"
//! request categories.

use crate::lexicon::WordId;
use crate::lm::LanguageModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for corpus synthesis.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorpusConfig {
    /// Number of utterances.
    pub utterances: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Likely-successor branching of the language model.
    pub branching: usize,
    /// Number of distinct speakers.
    pub speakers: usize,
    /// Number of recording environments.
    pub environments: usize,
    /// Minimum words per utterance.
    pub min_words: usize,
    /// Maximum words per utterance.
    pub max_words: usize,
    /// Base acoustic noise level.
    pub base_noise: f64,
    /// Master seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A small corpus for unit tests and doc examples (fast to decode).
    pub fn small() -> Self {
        CorpusConfig {
            utterances: 60,
            vocab: 400,
            branching: 12,
            speakers: 12,
            environments: 4,
            min_words: 3,
            max_words: 8,
            base_noise: 1.6,
            seed: 1,
        }
    }

    /// The default evaluation corpus: large enough for stable statistics,
    /// small enough to decode under all seven versions in seconds.
    pub fn evaluation() -> Self {
        CorpusConfig {
            utterances: 4_000,
            vocab: 3_000,
            branching: 16,
            speakers: 400,
            environments: 6,
            min_words: 3,
            max_words: 12,
            base_noise: 1.6,
            seed: 2019,
        }
    }

    /// Full VoxForge scale: 35 438 utterances, 3 500 speakers.
    pub fn voxforge_scale() -> Self {
        CorpusConfig {
            utterances: 35_438,
            vocab: 5_000,
            branching: 16,
            speakers: 3_500,
            environments: 8,
            min_words: 3,
            max_words: 12,
            base_noise: 1.6,
            seed: 2019,
        }
    }

    /// Replace the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the utterance count (builder-style).
    pub fn with_utterances(mut self, utterances: usize) -> Self {
        self.utterances = utterances;
        self
    }
}

/// One transcribed utterance: the reference word sequence plus the
/// acoustic parameters needed to render it deterministically.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Utterance {
    /// Corpus-unique id.
    pub id: u32,
    /// Speaker id.
    pub speaker: u32,
    /// Recording environment id.
    pub environment: u8,
    /// Reference transcript.
    pub words: Vec<WordId>,
    /// Combined acoustic noise level.
    pub noise_sigma: f64,
    /// Seed for the acoustic renderer.
    pub render_seed: u64,
}

impl Utterance {
    /// Approximate audio duration, assuming 10 ms frames and 3 frames
    /// per phone with ~5 phones per word.
    pub fn approx_audio_secs(&self) -> f64 {
        self.words.len() as f64 * 5.0 * 3.0 * 0.010
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    config: CorpusConfig,
    utterances: Vec<Utterance>,
}

impl Corpus {
    /// Generate a corpus (and nothing else; the language model and
    /// lexicon are owned by [`crate::service::AsrEngine`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero utterances,
    /// speakers or environments, or inverted word-length bounds).
    pub fn synthesize(config: CorpusConfig, lm: &LanguageModel) -> Self {
        assert!(config.utterances > 0, "corpus must contain utterances");
        assert!(config.speakers > 0, "corpus needs speakers");
        assert!(config.environments > 0, "corpus needs environments");
        assert!(
            config.min_words >= 1 && config.min_words <= config.max_words,
            "invalid word-length bounds"
        );
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x5851_F42D_4C95_7F2D));

        // Per-speaker clarity effects (log-normal-ish, mostly ~1.0).
        let speaker_factor: Vec<f64> = (0..config.speakers)
            .map(|_| (gaussian(&mut rng) * 0.12).exp())
            .collect();
        // Environments range from studio (quiet) to street (noisy).
        let env_factor: Vec<f64> = (0..config.environments)
            .map(|e| 0.9 + 0.2 * e as f64 / config.environments.max(1) as f64)
            .collect();

        let utterances = (0..config.utterances)
            .map(|id| {
                let speaker = rng.gen_range(0..config.speakers) as u32;
                let environment = rng.gen_range(0..config.environments) as u8;
                let len = rng.gen_range(config.min_words..=config.max_words);
                let words = lm.sample_sentence(&mut rng, len);
                let jitter = (gaussian(&mut rng) * 0.10).exp();
                // Difficulty is bimodal, as in real corpora: most
                // recordings are clean enough that every service version
                // transcribes them identically; a medium band is where
                // beam width genuinely matters; a small hard tail is
                // noise-floor-limited no matter the version. This is what
                // produces the paper's ">74% unchanged" request mix.
                let tier = rng.gen::<f64>();
                let difficulty = if tier < 0.75 {
                    0.38
                } else if tier < 0.85 {
                    0.80 + 0.10 * gaussian(&mut rng).abs()
                } else {
                    2.8 + 0.5 * rng.gen::<f64>()
                };
                let noise_sigma = config.base_noise
                    * difficulty
                    * speaker_factor[speaker as usize]
                    * env_factor[environment as usize]
                    * jitter;
                Utterance {
                    id: id as u32,
                    speaker,
                    environment,
                    words,
                    noise_sigma,
                    render_seed: rng.gen(),
                }
            })
            .collect();
        Corpus { config, utterances }
    }

    /// The generating configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// The utterances.
    pub fn utterances(&self) -> &[Utterance] {
        &self.utterances
    }

    /// Total reference words across the corpus.
    pub fn total_words(&self) -> usize {
        self.utterances.iter().map(|u| u.words.len()).sum()
    }

    /// Total approximate audio time in hours.
    pub fn approx_audio_hours(&self) -> f64 {
        self.utterances
            .iter()
            .map(Utterance::approx_audio_secs)
            .sum::<f64>()
            / 3600.0
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(cfg: CorpusConfig) -> Corpus {
        let lm = LanguageModel::synthesize(cfg.vocab, cfg.branching, cfg.seed);
        Corpus::synthesize(cfg, &lm)
    }

    #[test]
    fn corpus_has_requested_shape() {
        let c = build(CorpusConfig::small());
        assert_eq!(c.utterances().len(), 60);
        for u in c.utterances() {
            assert!((3..=8).contains(&u.words.len()));
            assert!((u.speaker as usize) < 12);
            assert!((u.environment as usize) < 4);
            assert!(u.noise_sigma > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build(CorpusConfig::small());
        let b = build(CorpusConfig::small());
        assert_eq!(a.utterances(), b.utterances());
        let c = build(CorpusConfig::small().with_seed(99));
        assert_ne!(a.utterances(), c.utterances());
    }

    #[test]
    fn noise_levels_are_heterogeneous() {
        let c = build(CorpusConfig::small());
        let sigmas: Vec<f64> = c.utterances().iter().map(|u| u.noise_sigma).collect();
        let min = sigmas.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sigmas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 1.5, "expected noise spread, got {min}..{max}");
    }

    #[test]
    fn total_words_and_audio_time() {
        let c = build(CorpusConfig::small());
        assert_eq!(
            c.total_words(),
            c.utterances().iter().map(|u| u.words.len()).sum::<usize>()
        );
        assert!(c.approx_audio_hours() > 0.0);
    }

    #[test]
    #[should_panic(expected = "must contain utterances")]
    fn zero_utterances_panics() {
        let cfg = CorpusConfig {
            utterances: 0,
            ..CorpusConfig::small()
        };
        let _ = build(cfg);
    }
}
