//! Word error rate.
//!
//! WER is the ratio of word-level insertions, deletions and substitutions
//! between hypothesis and reference to the reference word count. Corpus
//! WER follows the standard convention of pooling error and word counts
//! across utterances (not averaging per-utterance rates).

use crate::lexicon::WordId;
use tt_stats::Alignment;

/// WER of a single utterance.
///
/// ```
/// use tt_asr::wer::wer;
/// use tt_asr::WordId;
///
/// let reference = [WordId(1), WordId(2), WordId(3)];
/// let hypothesis = [WordId(1), WordId(9), WordId(3)];
/// assert!((wer(&hypothesis, &reference) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn wer(hypothesis: &[WordId], reference: &[WordId]) -> f64 {
    Alignment::align(hypothesis, reference).error_rate()
}

/// Word-level edit count between hypothesis and reference.
pub fn word_errors(hypothesis: &[WordId], reference: &[WordId]) -> usize {
    Alignment::align(hypothesis, reference).errors()
}

/// The composition of an utterance's word errors — the three edit
/// categories the WER definition enumerates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErrorBreakdown {
    /// Reference words replaced by different hypothesis words.
    pub substitutions: usize,
    /// Hypothesis words with no reference counterpart.
    pub insertions: usize,
    /// Reference words the hypothesis missed.
    pub deletions: usize,
}

impl ErrorBreakdown {
    /// Break down one utterance's errors.
    pub fn of(hypothesis: &[WordId], reference: &[WordId]) -> Self {
        let a = Alignment::align(hypothesis, reference);
        ErrorBreakdown {
            substitutions: a.substitutions(),
            insertions: a.insertions(),
            deletions: a.deletions(),
        }
    }

    /// Total errors.
    pub fn total(&self) -> usize {
        self.substitutions + self.insertions + self.deletions
    }

    /// Accumulate another breakdown.
    pub fn merge(&mut self, other: &ErrorBreakdown) {
        self.substitutions += other.substitutions;
        self.insertions += other.insertions;
        self.deletions += other.deletions;
    }
}

impl std::fmt::Display for ErrorBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sub, {} ins, {} del",
            self.substitutions, self.insertions, self.deletions
        )
    }
}

/// Pools word errors across utterances to report corpus-level WER.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WerAccumulator {
    errors: usize,
    reference_words: usize,
    utterances: usize,
}

impl WerAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        WerAccumulator::default()
    }

    /// Add one utterance's alignment.
    pub fn add(&mut self, hypothesis: &[WordId], reference: &[WordId]) {
        self.errors += word_errors(hypothesis, reference);
        self.reference_words += reference.len();
        self.utterances += 1;
    }

    /// Add pre-computed counts (used when decode outcomes are cached).
    pub fn add_counts(&mut self, errors: usize, reference_words: usize) {
        self.errors += errors;
        self.reference_words += reference_words;
        self.utterances += 1;
    }

    /// Pooled corpus WER; zero when nothing was accumulated.
    pub fn rate(&self) -> f64 {
        if self.reference_words == 0 {
            0.0
        } else {
            self.errors as f64 / self.reference_words as f64
        }
    }

    /// Total word errors.
    pub fn errors(&self) -> usize {
        self.errors
    }

    /// Total reference words.
    pub fn reference_words(&self) -> usize {
        self.reference_words
    }

    /// Utterances accumulated.
    pub fn utterances(&self) -> usize {
        self.utterances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(ids: &[u32]) -> Vec<WordId> {
        ids.iter().map(|&i| WordId(i)).collect()
    }

    #[test]
    fn perfect_hypothesis_has_zero_wer() {
        assert_eq!(wer(&w(&[1, 2]), &w(&[1, 2])), 0.0);
    }

    #[test]
    fn empty_hypothesis_is_all_deletions() {
        assert_eq!(wer(&[], &w(&[1, 2, 3, 4])), 1.0);
    }

    #[test]
    fn accumulator_pools_counts() {
        let mut acc = WerAccumulator::new();
        acc.add(&w(&[1, 2, 3]), &w(&[1, 2, 3])); // 0 errors / 3
        acc.add(&w(&[9]), &w(&[1])); // 1 error / 1
        assert_eq!(acc.errors(), 1);
        assert_eq!(acc.reference_words(), 4);
        assert_eq!(acc.utterances(), 2);
        assert!((acc.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accumulator_accepts_precomputed_counts() {
        let mut acc = WerAccumulator::new();
        acc.add_counts(2, 10);
        assert!((acc.rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_rates_zero() {
        assert_eq!(WerAccumulator::new().rate(), 0.0);
    }

    #[test]
    fn breakdown_matches_total_errors() {
        let hyp = w(&[1, 9, 3, 7]);
        let reference = w(&[1, 2, 3]);
        let b = ErrorBreakdown::of(&hyp, &reference);
        assert_eq!(b.total(), word_errors(&hyp, &reference));
        assert_eq!(b.substitutions, 1);
        assert_eq!(b.insertions, 1);
        assert_eq!(b.deletions, 0);
        assert!(b.to_string().contains("1 sub"));
    }

    #[test]
    fn breakdown_merges_additively() {
        let mut a = ErrorBreakdown::of(&w(&[9]), &w(&[1]));
        let b = ErrorBreakdown::of(&[], &w(&[1, 2]));
        a.merge(&b);
        assert_eq!(a.substitutions, 1);
        assert_eq!(a.deletions, 2);
        assert_eq!(a.total(), 3);
    }
}
