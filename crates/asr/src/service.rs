//! The assembled ASR engine: corpus + models + decoder + metrics.
//!
//! # Latency model
//!
//! Decode latency is derived deterministically from the decoder's work
//! counter:
//!
//! ```text
//! latency_us = frames · FRAME_OVERHEAD_US  +  work · US_PER_EXPANSION
//! ```
//!
//! The first term models the version-independent front end (feature
//! extraction and neural acoustic scoring, which production engines run
//! once per frame regardless of beam width); the second term models the
//! search itself. The constants are calibrated so the seven-version
//! ladder spans the ≈2.6× response-time spread the paper reports for its
//! production engine while keeping absolute latencies in the
//! hundreds-of-milliseconds-per-utterance range of a real-time ASR
//! service.

use crate::acoustic::AcousticModel;
use crate::corpus::{Corpus, CorpusConfig, Utterance};
use crate::decoder::{BeamConfig, DecodeResult, Decoder};
use crate::lexicon::{Lexicon, WordId};
use crate::lm::LanguageModel;
use crate::wer;

/// Version-independent per-frame front-end cost (µs).
const FRAME_OVERHEAD_US: u64 = 2_500;
/// Search cost per token expansion (µs).
const US_PER_EXPANSION: f64 = 12.0;

/// Maps decoder evidence to a `[0, 1]` result-confidence score.
///
/// Confidence combines two signals: the per-frame score margin between
/// the best and runner-up hypotheses (a large margin means no serious
/// competitor survived the beam) and the per-frame score of the best
/// path itself (noisy audio scores poorly even when it wins). Both are
/// squashed through a logistic; the weights were calibrated on held-out
/// synthetic corpora so that confidence discriminates correct from
/// incorrect transcripts — the property the paper's early-termination
/// ensembles rely on.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfidenceModel {
    /// Weight on the per-frame best/runner-up margin.
    pub w_margin: f64,
    /// Weight on the per-frame best-path score.
    pub w_score: f64,
    /// Logistic bias.
    pub bias: f64,
    /// Margin assumed when the beam retained no competitor.
    pub default_margin: f64,
}

impl Default for ConfidenceModel {
    fn default() -> Self {
        ConfidenceModel {
            w_margin: 10.0,
            w_score: 5.0,
            bias: 7.4,
            default_margin: 0.3,
        }
    }
}

impl ConfidenceModel {
    /// Score a decode result.
    pub fn confidence(&self, result: &DecodeResult) -> f64 {
        if result.frames == 0 {
            return 0.0;
        }
        let frames = result.frames as f64;
        let margin = result
            .runner_up
            .map(|r| (result.score - r) / frames)
            .unwrap_or(self.default_margin);
        let avg_score = result.score / frames;
        let x = self.w_margin * margin + self.w_score * avg_score + self.bias;
        1.0 / (1.0 + (-x).exp())
    }
}

/// Everything the engine reports for one decoded utterance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DecodeOutcome {
    /// Hypothesis transcript.
    pub hypothesis: Vec<WordId>,
    /// Word errors against the reference.
    pub errors: usize,
    /// Reference word count.
    pub reference_words: usize,
    /// Utterance WER (`errors / reference_words`).
    pub wer: f64,
    /// Result confidence in `[0, 1]`.
    pub confidence: f64,
    /// Deterministic decode latency in microseconds.
    pub latency_us: u64,
    /// Decoder work counter (token expansions).
    pub work: u64,
}

/// A complete ASR engine over a synthetic corpus.
///
/// ```
/// use tt_asr::{AsrEngine, BeamConfig, CorpusConfig};
///
/// let engine = AsrEngine::synthesize(CorpusConfig::small());
/// let versions = BeamConfig::paper_versions();
/// let out = engine.decode(&engine.corpus().utterances()[0], &versions[0]);
/// assert!(out.latency_us > 0);
/// ```
#[derive(Debug, Clone)]
pub struct AsrEngine {
    lexicon: Lexicon,
    lm: LanguageModel,
    acoustic: AcousticModel,
    corpus: Corpus,
    confidence: ConfidenceModel,
}

impl AsrEngine {
    /// Build the lexicon, language model, acoustic model and corpus from
    /// a single configuration.
    pub fn synthesize(config: CorpusConfig) -> Self {
        let lexicon = Lexicon::synthesize(config.vocab, config.seed);
        let lm = LanguageModel::synthesize(config.vocab, config.branching, config.seed);
        let corpus = Corpus::synthesize(config, &lm);
        AsrEngine {
            lexicon,
            lm,
            acoustic: AcousticModel::default(),
            corpus,
            confidence: ConfidenceModel::default(),
        }
    }

    /// The evaluation corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The language model.
    pub fn language_model(&self) -> &LanguageModel {
        &self.lm
    }

    /// Replace the confidence model (builder-style), e.g. after
    /// recalibration.
    pub fn with_confidence_model(mut self, model: ConfidenceModel) -> Self {
        self.confidence = model;
        self
    }

    /// Render an utterance's audio and decode it under `config`.
    pub fn decode(&self, utterance: &Utterance, config: &BeamConfig) -> DecodeOutcome {
        let frames = self.acoustic.render(
            &self.lexicon,
            &utterance.words,
            utterance.noise_sigma,
            utterance.render_seed,
        );
        let result = Decoder::new(&self.lexicon, &self.lm).decode(&frames, config);
        let errors = wer::word_errors(&result.words, &utterance.words);
        let latency_us = result.frames as u64 * FRAME_OVERHEAD_US
            + (result.work as f64 * US_PER_EXPANSION) as u64;
        DecodeOutcome {
            errors,
            reference_words: utterance.words.len(),
            wer: errors as f64 / utterance.words.len().max(1) as f64,
            confidence: self.confidence.confidence(&result),
            latency_us,
            work: result.work,
            hypothesis: result.words,
        }
    }

    /// Decode the whole corpus under `config`, returning outcomes in
    /// corpus order.
    pub fn decode_corpus(&self, config: &BeamConfig) -> Vec<DecodeOutcome> {
        self.corpus
            .utterances()
            .iter()
            .map(|u| self.decode(u, config))
            .collect()
    }

    /// Corpus WER under `config` (pooled across utterances).
    pub fn corpus_wer(&self, config: &BeamConfig) -> f64 {
        let mut acc = wer::WerAccumulator::new();
        for out in self.decode_corpus(config) {
            acc.add_counts(out.errors, out.reference_words);
        }
        acc.rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> AsrEngine {
        AsrEngine::synthesize(CorpusConfig::small())
    }

    #[test]
    fn decode_outcome_is_consistent() {
        let e = engine();
        let cfg = &BeamConfig::paper_versions()[3];
        let out = e.decode(&e.corpus().utterances()[0], cfg);
        assert_eq!(out.reference_words, e.corpus().utterances()[0].words.len());
        assert!((out.wer - out.errors as f64 / out.reference_words as f64).abs() < 1e-12);
        assert!(out.latency_us > 0);
        assert!((0.0..=1.0).contains(&out.confidence));
    }

    #[test]
    fn decoding_is_deterministic() {
        let e = engine();
        let cfg = &BeamConfig::paper_versions()[0];
        let u = &e.corpus().utterances()[3];
        assert_eq!(e.decode(u, cfg), e.decode(u, cfg));
    }

    #[test]
    fn version_ladder_trades_latency_for_accuracy() {
        let e = engine();
        let versions = BeamConfig::paper_versions();
        let first = &versions[0];
        let last = &versions[6];

        let outs_first: Vec<DecodeOutcome> = e.decode_corpus(first);
        let outs_last: Vec<DecodeOutcome> = e.decode_corpus(last);

        let mean_latency = |outs: &[DecodeOutcome]| {
            outs.iter().map(|o| o.latency_us as f64).sum::<f64>() / outs.len() as f64
        };
        assert!(
            mean_latency(&outs_last) > mean_latency(&outs_first) * 1.5,
            "ladder should spread latency: {} vs {}",
            mean_latency(&outs_first),
            mean_latency(&outs_last)
        );

        let errors = |outs: &[DecodeOutcome]| outs.iter().map(|o| o.errors).sum::<usize>();
        assert!(
            errors(&outs_last) <= errors(&outs_first),
            "widest beam should not err more: {} vs {}",
            errors(&outs_first),
            errors(&outs_last)
        );
    }

    #[test]
    #[ignore = "calibration aid: prints per-version statistics"]
    fn calibration_report() {
        let e = AsrEngine::synthesize(CorpusConfig::evaluation().with_utterances(400));
        for cfg in BeamConfig::paper_versions() {
            let outs = e.decode_corpus(&cfg);
            let n = outs.len() as f64;
            let mean_lat = outs.iter().map(|o| o.latency_us as f64).sum::<f64>() / n / 1000.0;
            let mean_work = outs.iter().map(|o| o.work as f64).sum::<f64>() / n;
            let mut acc = wer::WerAccumulator::new();
            for o in &outs {
                acc.add_counts(o.errors, o.reference_words);
            }
            let exact = outs.iter().filter(|o| o.errors == 0).count();
            let conf_ok: Vec<f64> = outs
                .iter()
                .filter(|o| o.errors == 0)
                .map(|o| o.confidence)
                .collect();
            let conf_bad: Vec<f64> = outs
                .iter()
                .filter(|o| o.errors > 0)
                .map(|o| o.confidence)
                .collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            let band_wer = |lo: f64, hi: f64| {
                let mut acc = wer::WerAccumulator::new();
                for (o, u) in outs.iter().zip(e.corpus().utterances()) {
                    if u.noise_sigma >= lo && u.noise_sigma < hi {
                        acc.add_counts(o.errors, o.reference_words);
                    }
                }
                acc.rate()
            };
            println!(
                "{}: wer={:.4} lat={:.1}ms work={:.0} exact={:.2} conf_ok={:.3} conf_bad={:.3} easy={:.3} med={:.3} hard={:.3}",
                cfg.name,
                acc.rate(),
                mean_lat,
                mean_work,
                exact as f64 / n,
                mean(&conf_ok),
                mean(&conf_bad),
                band_wer(0.0, 1.0),
                band_wer(1.0, 2.5),
                band_wer(2.5, 99.0),
            );
        }
    }

    #[test]
    #[ignore = "calibration aid: raw confidence signal distributions"]
    fn calibration_confidence_signals() {
        use crate::decoder::Decoder;
        let e = AsrEngine::synthesize(CorpusConfig::evaluation().with_utterances(400));
        for cfg in [
            &BeamConfig::paper_versions()[0],
            &BeamConfig::paper_versions()[6],
        ] {
            let mut ok = (0.0f64, 0.0f64, 0usize);
            let mut bad = (0.0f64, 0.0f64, 0usize);
            let mut no_runner = 0usize;
            for u in e.corpus().utterances() {
                let frames = e
                    .acoustic
                    .render(&e.lexicon, &u.words, u.noise_sigma, u.render_seed);
                let r = Decoder::new(&e.lexicon, &e.lm).decode(&frames, cfg);
                let margin = r.runner_up.map(|x| (r.score - x) / r.frames as f64);
                if margin.is_none() {
                    no_runner += 1;
                    continue;
                }
                let avg = r.score / r.frames as f64;
                let errs = wer::word_errors(&r.words, &u.words);
                let slot = if errs == 0 { &mut ok } else { &mut bad };
                slot.0 += margin.unwrap();
                slot.1 += avg;
                slot.2 += 1;
            }
            println!(
                "{}: ok(margin={:.3} avg={:.3} n={}) bad(margin={:.3} avg={:.3} n={}) no_runner={}",
                cfg.name,
                ok.0 / ok.2 as f64,
                ok.1 / ok.2 as f64,
                ok.2,
                bad.0 / bad.2 as f64,
                bad.1 / bad.2 as f64,
                bad.2,
                no_runner
            );
        }
    }

    #[test]
    #[ignore = "calibration aid: oracle decode on the easy band"]
    fn calibration_oracle() {
        let e = AsrEngine::synthesize(CorpusConfig::evaluation().with_utterances(150));
        for cfg in [
            BeamConfig::new("oracle", 40.0, 4000, 400),
            BeamConfig::new("cands-only", 14.5, 280, 400),
            BeamConfig::new("beam-only", 40.0, 4000, 44),
            BeamConfig::new("beam-mid", 14.5, 4000, 400),
            BeamConfig::new("active-mid", 40.0, 280, 400),
        ] {
            let mut acc = wer::WerAccumulator::new();
            let mut work = 0u64;
            for u in e
                .corpus()
                .utterances()
                .iter()
                .filter(|u| u.noise_sigma < 1.0)
            {
                let out = e.decode(u, &cfg);
                acc.add_counts(out.errors, out.reference_words);
                work += out.work;
            }
            println!(
                "{}: easy-band wer={:.4} work={}",
                cfg.name,
                acc.rate(),
                work
            );
        }
    }

    #[test]
    fn corpus_wer_is_in_plausible_range() {
        let e = engine();
        let wer = e.corpus_wer(&BeamConfig::paper_versions()[6]);
        assert!(wer < 0.8, "WER {wer} suspiciously high");
    }

    #[test]
    fn confidence_discriminates_correct_from_incorrect() {
        // Mean confidence of exact transcripts should exceed that of
        // erroneous ones under the cheapest version.
        let e = engine();
        let cfg = &BeamConfig::paper_versions()[0];
        let outs = e.decode_corpus(cfg);
        let (mut c_ok, mut n_ok, mut c_bad, mut n_bad) = (0.0, 0, 0.0, 0);
        for o in &outs {
            if o.errors == 0 {
                c_ok += o.confidence;
                n_ok += 1;
            } else {
                c_bad += o.confidence;
                n_bad += 1;
            }
        }
        assert!(
            n_ok > 0 && n_bad > 0,
            "need both outcomes: {n_ok} ok, {n_bad} bad"
        );
        assert!(
            c_ok / n_ok as f64 > c_bad / n_bad as f64,
            "confidence fails to discriminate: ok={} bad={}",
            c_ok / n_ok as f64,
            c_bad / n_bad as f64
        );
    }
}
