//! Acoustic simulation: rendering utterances into per-frame emission
//! scores.
//!
//! A real front-end turns audio into feature vectors and a neural
//! acoustic model turns those into per-frame phone posteriors. We skip
//! the audio and generate the posteriors directly: each frame of a
//! reference phone `q` scores every phone `p` as
//!
//! ```text
//! emission[p] = -confusion_scale · distance(p, q) + ε,   ε ~ N(0, σ²)
//! ```
//!
//! where `distance` is the phone-ring distance (confusable phones score
//! close together) and `σ` is the utterance's noise level (speaker +
//! recording environment + luck). Low-noise utterances decode correctly
//! under any beam; high-noise utterances contain frames where a wrong
//! phone outscores the right one, and only a wide beam keeps enough
//! alternative paths alive to recover the sentence through the language
//! model. That emergent behaviour is the paper's accuracy-latency
//! trade-off.

use crate::lexicon::{Lexicon, WordId};
use crate::phone::{Phone, NUM_PHONES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-frame emission scores: one `f32` log-score per phone.
pub type Frame = [f32; NUM_PHONES];

/// The acoustic renderer.
#[derive(Debug, Clone, PartialEq)]
pub struct AcousticModel {
    /// Penalty per unit of phone-ring distance.
    confusion_scale: f32,
    /// Minimum frames spent in each phone.
    min_frames_per_phone: usize,
    /// Maximum frames spent in each phone.
    max_frames_per_phone: usize,
}

impl Default for AcousticModel {
    fn default() -> Self {
        AcousticModel {
            confusion_scale: 2.0,
            min_frames_per_phone: 2,
            max_frames_per_phone: 4,
        }
    }
}

impl AcousticModel {
    /// Construct with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the scale is non-positive or the frame bounds are
    /// inverted or zero.
    pub fn new(
        confusion_scale: f32,
        min_frames_per_phone: usize,
        max_frames_per_phone: usize,
    ) -> Self {
        assert!(confusion_scale > 0.0, "confusion scale must be positive");
        assert!(
            min_frames_per_phone >= 1 && min_frames_per_phone <= max_frames_per_phone,
            "invalid frames-per-phone bounds"
        );
        AcousticModel {
            confusion_scale,
            min_frames_per_phone,
            max_frames_per_phone,
        }
    }

    /// Render a word sequence into emission frames.
    ///
    /// `noise_sigma` is the utterance's noise level; `seed` makes the
    /// rendering deterministic per utterance.
    pub fn render(
        &self,
        lexicon: &Lexicon,
        words: &[WordId],
        noise_sigma: f64,
        seed: u64,
    ) -> Vec<Frame> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACDC_0000_0000_0001);
        let mut frames = Vec::new();
        for &word in words {
            for &phone in lexicon.word(word).pronunciation() {
                let n = rng.gen_range(self.min_frames_per_phone..=self.max_frames_per_phone);
                for _ in 0..n {
                    frames.push(self.render_frame(phone, noise_sigma, &mut rng));
                }
            }
        }
        frames
    }

    /// Render a single frame of phone `q`.
    fn render_frame<R: Rng>(&self, q: Phone, noise_sigma: f64, rng: &mut R) -> Frame {
        let mut frame = [0.0f32; NUM_PHONES];
        for p in Phone::all() {
            let clean = -self.confusion_scale * q.distance(p) as f32;
            let noise = gaussian(rng) * noise_sigma;
            frame[p.index()] = clean + noise as f32;
        }
        frame
    }

    /// Expected number of frames per phone (midpoint of the bounds).
    pub fn mean_frames_per_phone(&self) -> f64 {
        (self.min_frames_per_phone + self.max_frames_per_phone) as f64 / 2.0
    }
}

/// Standard normal draw via Box-Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    fn setup() -> (AcousticModel, Lexicon) {
        (AcousticModel::default(), Lexicon::synthesize(50, 3))
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let (am, lex) = setup();
        let words = vec![WordId(0), WordId(1)];
        let a = am.render(&lex, &words, 1.0, 42);
        let b = am.render(&lex, &words, 1.0, 42);
        let c = am.render(&lex, &words, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn frame_count_matches_pronunciation_lengths() {
        let (am, lex) = setup();
        let words = vec![WordId(3), WordId(7)];
        let phones: usize = words
            .iter()
            .map(|&w| lex.word(w).pronunciation().len())
            .sum();
        let frames = am.render(&lex, &words, 0.5, 1);
        assert!(frames.len() >= phones * 2);
        assert!(frames.len() <= phones * 4);
    }

    #[test]
    fn noiseless_frames_peak_at_true_phone() {
        let (am, lex) = setup();
        let words = vec![WordId(5)];
        let frames = am.render(&lex, &words, 0.0, 9);
        // Without noise, the argmax of every frame is the reference
        // phone. Frame-block boundaries between identical adjacent
        // phones are invisible to the argmax, so compare the run-length
        // deduplicated argmax sequence against the deduplicated
        // pronunciation.
        let argmaxes: Vec<usize> = frames
            .iter()
            .map(|f| {
                f.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        let mut runs = argmaxes.clone();
        runs.dedup();
        let mut reference: Vec<usize> = lex
            .word(WordId(5))
            .pronunciation()
            .iter()
            .map(|p| p.index())
            .collect();
        reference.dedup();
        assert_eq!(runs, reference);
    }

    #[test]
    fn heavy_noise_corrupts_some_frames() {
        let (am, lex) = setup();
        let words: Vec<WordId> = (0..10).map(WordId).collect();
        let frames = am.render(&lex, &words, 4.0, 13);
        // Reconstruct reference phones per frame is fiddly; instead check
        // that at least one frame's peak differs from any phone of its word
        // sequence, i.e. noise dominates somewhere.
        let mut corrupted = 0usize;
        let reference: Vec<usize> = words
            .iter()
            .flat_map(|&w| lex.word(w).pronunciation().iter().map(|p| p.index()))
            .collect();
        for f in &frames {
            let argmax = f
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if !reference.contains(&argmax) {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "expected heavy noise to corrupt frames");
    }

    #[test]
    #[should_panic(expected = "confusion scale")]
    fn invalid_scale_panics() {
        let _ = AcousticModel::new(0.0, 2, 4);
    }

    #[test]
    #[should_panic(expected = "frames-per-phone")]
    fn inverted_bounds_panic() {
        let _ = AcousticModel::new(1.0, 5, 4);
    }
}
