//! Automatic speech recognition substrate for the `toltiers` workspace.
//!
//! The Tolerance Tiers paper characterizes a production-grade ASR engine:
//! a hidden-Markov-model decoder whose heuristic beam search trades
//! accuracy for latency through its pruning parameters. That engine is
//! proprietary, so this crate builds the same *kind* of system from
//! scratch, end to end:
//!
//! * [`phone`] — a 40-phone synthetic phone set with a confusability
//!   metric (acoustically close phones are easier to confuse).
//! * [`lexicon`] — a seeded pseudo-word vocabulary with pronunciations.
//! * [`lm`] — a bigram language model with Zipf unigram frequencies.
//! * [`acoustic`] — utterance rendering: reference word sequences become
//!   per-frame phone-emission log-probability vectors corrupted by
//!   speaker/environment noise.
//! * [`corpus`] — a VoxForge-scale corpus generator (speakers, recording
//!   environments, per-utterance difficulty).
//! * [`decoder`] — a token-passing Viterbi beam-search decoder whose
//!   pruning knobs (beam width, max active tokens, word-exit candidates)
//!   reproduce the paper's seven service versions.
//! * [`wer`] — word error rate via edit-distance alignment.
//! * [`service`] — the assembled ASR engine: decode an utterance under a
//!   beam configuration, producing hypothesis, WER, confidence and a
//!   deterministic work-derived latency.
//!
//! The accuracy-latency trade-off is *emergent*: hard (noisy) utterances
//! lose the true path under narrow beams and recover it under wide ones,
//! exactly the structural property the paper's analysis depends on.
//!
//! # Examples
//!
//! ```
//! use tt_asr::corpus::CorpusConfig;
//! use tt_asr::decoder::BeamConfig;
//! use tt_asr::service::AsrEngine;
//!
//! let engine = AsrEngine::synthesize(CorpusConfig::small().with_seed(7));
//! let utt = &engine.corpus().utterances()[0];
//! let out = engine.decode(utt, &BeamConfig::paper_versions()[6]);
//! assert!(out.wer >= 0.0);
//! assert!(out.confidence >= 0.0 && out.confidence <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acoustic;
pub mod corpus;
pub mod decoder;
pub mod lexicon;
pub mod lm;
pub mod phone;
pub mod service;
pub mod wer;

pub use corpus::{Corpus, CorpusConfig, Utterance};
pub use decoder::{BeamConfig, Decoder};
pub use lexicon::{Lexicon, WordId};
pub use phone::Phone;
pub use service::{AsrEngine, DecodeOutcome};
