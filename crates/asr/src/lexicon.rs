//! The synthetic lexicon: pseudo-words with phone pronunciations.

use crate::phone::{Phone, NUM_PHONES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a word in a [`Lexicon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WordId(pub u32);

impl WordId {
    /// Index into the lexicon's word table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A word: a spelled form plus its phone pronunciation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Word {
    spelling: String,
    pronunciation: Vec<Phone>,
}

impl Word {
    /// The word's written form.
    pub fn spelling(&self) -> &str {
        &self.spelling
    }

    /// The word's phone sequence.
    pub fn pronunciation(&self) -> &[Phone] {
        &self.pronunciation
    }
}

/// A seeded vocabulary of pseudo-words.
///
/// Pronunciations are 2–8 phones, generated with a bias towards nearby
/// phones within a word (real syllables cluster articulation); the
/// spelled form is derived from the pronunciation so it is stable and
/// human-readable in transcripts.
///
/// ```
/// use tt_asr::lexicon::Lexicon;
///
/// let lex = Lexicon::synthesize(100, 42);
/// assert_eq!(lex.len(), 100);
/// assert!(!lex.word(tt_asr::WordId(0)).spelling().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lexicon {
    words: Vec<Word>,
    /// Words grouped by first phone, each bucket in unigram-rank order
    /// (word id order). The decoder uses this to expand acoustically
    /// plausible words at word boundaries.
    by_first_phone: Vec<Vec<WordId>>,
}

/// Syllable onsets used to render spellings.
const ONSETS: [&str; 10] = ["k", "t", "r", "m", "s", "n", "b", "d", "g", "l"];
/// Syllable nuclei used to render spellings.
const NUCLEI: [&str; 4] = ["a", "e", "i", "o"];

impl Lexicon {
    /// Generate a vocabulary of `size` words from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn synthesize(size: usize, seed: u64) -> Self {
        assert!(size > 0, "lexicon must contain at least one word");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut words = Vec::with_capacity(size);
        for _ in 0..size {
            let len = rng.gen_range(2..=8usize);
            let mut pron = Vec::with_capacity(len);
            let mut current = rng.gen_range(0..NUM_PHONES as i32);
            for _ in 0..len {
                pron.push(Phone::new(current as u8));
                // Drift to a nearby phone: articulation clusters.
                let step = rng.gen_range(-6..=6i32);
                current = (current + step).rem_euclid(NUM_PHONES as i32);
            }
            let spelling: String = pron
                .iter()
                .map(|p| {
                    let idx = p.index();
                    format!(
                        "{}{}",
                        ONSETS[idx % ONSETS.len()],
                        NUCLEI[idx % NUCLEI.len()]
                    )
                })
                .collect();
            words.push(Word {
                spelling,
                pronunciation: pron,
            });
        }
        let mut by_first_phone = vec![Vec::new(); NUM_PHONES];
        for (i, w) in words.iter().enumerate() {
            by_first_phone[w.pronunciation[0].index()].push(WordId(i as u32));
        }
        Lexicon {
            words,
            by_first_phone,
        }
    }

    /// Words whose pronunciation starts with `phone`, in unigram-rank
    /// (word id) order.
    pub fn words_with_first_phone(&self, phone: Phone) -> &[WordId] {
        &self.by_first_phone[phone.index()]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the lexicon is empty (never true; construction rejects
    /// zero-size vocabularies).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Look up a word.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn word(&self, id: WordId) -> &Word {
        &self.words[id.index()]
    }

    /// Iterate over `(WordId, &Word)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &Word)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (WordId(i as u32), w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_is_deterministic() {
        let a = Lexicon::synthesize(50, 1);
        let b = Lexicon::synthesize(50, 1);
        let c = Lexicon::synthesize(50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pronunciations_are_within_length_bounds() {
        let lex = Lexicon::synthesize(500, 3);
        for (_, w) in lex.iter() {
            let len = w.pronunciation().len();
            assert!((2..=8).contains(&len));
        }
    }

    #[test]
    fn spellings_are_nonempty_and_derived() {
        let lex = Lexicon::synthesize(20, 9);
        for (_, w) in lex.iter() {
            assert!(!w.spelling().is_empty());
            // One onset+nucleus pair (>= 2 chars) per phone.
            assert!(w.spelling().len() >= 2 * w.pronunciation().len());
        }
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_size_panics() {
        let _ = Lexicon::synthesize(0, 1);
    }

    #[test]
    fn first_phone_index_is_complete_and_ordered() {
        let lex = Lexicon::synthesize(200, 5);
        let mut total = 0usize;
        for p in crate::phone::Phone::all() {
            let bucket = lex.words_with_first_phone(p);
            total += bucket.len();
            for w in bucket {
                assert_eq!(lex.word(*w).pronunciation()[0], p);
            }
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "bucket not rank-ordered"
            );
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn iter_covers_all_ids() {
        let lex = Lexicon::synthesize(10, 4);
        let ids: Vec<u32> = lex.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
    }
}
