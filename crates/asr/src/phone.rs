//! The synthetic phone set.
//!
//! Real acoustic confusions are structured: /b/ is confused with /p/ far
//! more often than with /iy/. We reproduce that structure by arranging
//! the phones on a circle and making acoustic distance (and therefore
//! confusability) proportional to circular distance.

/// Number of phones in the synthetic phone set.
pub const NUM_PHONES: usize = 40;

/// A phone (atomic speech sound) in the synthetic phone set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Phone(u8);

impl Phone {
    /// Construct from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_PHONES`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_PHONES,
            "phone index {index} out of range"
        );
        Phone(index)
    }

    /// The phone's index in `0..NUM_PHONES`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over every phone.
    pub fn all() -> impl Iterator<Item = Phone> {
        (0..NUM_PHONES as u8).map(Phone)
    }

    /// Acoustic distance to another phone: circular distance on the
    /// phone ring, in `0..=NUM_PHONES/2`. Distance 0 means identity;
    /// small distances mean confusable phones.
    pub fn distance(self, other: Phone) -> usize {
        let d = (self.0 as i32 - other.0 as i32).unsigned_abs() as usize;
        d.min(NUM_PHONES - d)
    }
}

impl std::fmt::Display for Phone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Two-letter pseudo-ARPABET labels: p0..p39 grouped by family.
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_identity() {
        for a in Phone::all() {
            assert_eq!(a.distance(a), 0);
            for b in Phone::all() {
                assert_eq!(a.distance(b), b.distance(a));
            }
        }
    }

    #[test]
    fn distance_wraps_around_the_ring() {
        let first = Phone::new(0);
        let last = Phone::new((NUM_PHONES - 1) as u8);
        assert_eq!(first.distance(last), 1);
    }

    #[test]
    fn max_distance_is_half_ring() {
        let a = Phone::new(0);
        let b = Phone::new((NUM_PHONES / 2) as u8);
        assert_eq!(a.distance(b), NUM_PHONES / 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Phone::new(NUM_PHONES as u8);
    }

    #[test]
    fn all_yields_every_phone_once() {
        let v: Vec<Phone> = Phone::all().collect();
        assert_eq!(v.len(), NUM_PHONES);
        assert_eq!(v[0].index(), 0);
        assert_eq!(v[NUM_PHONES - 1].index(), NUM_PHONES - 1);
    }
}
