//! Minimal safe wrapper over the Linux `epoll` readiness API.
//!
//! The rest of the workspace forbids `unsafe`; this crate exists so the
//! handful of syscall declarations the `tt-net` reactor engine needs
//! stay in one auditable place behind a safe surface. There is no
//! external dependency: `std` already links `libc`, so plain
//! `extern "C"` declarations of the four syscall wrappers resolve at
//! link time.
//!
//! Only Linux is supported — the crate compiles to an empty shell on
//! other targets, and `tt-net` falls back to its threaded engine there.

#![warn(missing_docs)]

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::os::unix::io::RawFd;

    // Event bits and control ops from <sys/epoll.h>. Values are part of
    // the stable kernel ABI.
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0x80000;

    /// The kernel's `struct epoll_event`. On x86-64 glibc declares it
    /// `__attribute__((packed))`, so the Rust mirror must be packed too
    /// or the `data` field lands at the wrong offset.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct RawEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// One readiness notification, decoded from the raw event mask.
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        /// The caller-chosen token the fd was registered with.
        pub token: u64,
        /// Data can be read without blocking.
        pub readable: bool,
        /// Data can be written without blocking.
        pub writable: bool,
        /// Error, hang-up, or peer shutdown — the connection is dead or
        /// dying and should be torn down after draining.
        pub closed: bool,
    }

    /// A level-triggered epoll instance.
    ///
    /// Registrations map an fd to a caller token; [`Poller::wait`]
    /// reports which tokens are ready. The fd itself stays owned by the
    /// caller — dropping the `Poller` only closes the epoll fd.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Create a new epoll instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// Returns the OS error if `epoll_create1` fails (fd limits).
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flags word and returns a new
            // fd or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
            let mut raw = RawEvent {
                events: mask,
                data: token,
            };
            // SAFETY: `raw` outlives the call and the kernel copies the
            // struct before returning; fd validity is the caller's
            // responsibility and an invalid fd yields EBADF, not UB.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut raw) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn mask(readable: bool, writable: bool) -> u32 {
            // ERR and HUP are always reported; RDHUP must be requested
            // so half-closed peers surface as `closed` instead of a
            // permanent readable-with-zero-bytes loop.
            let mut mask = EPOLLRDHUP;
            if readable {
                mask |= EPOLLIN;
            }
            if writable {
                mask |= EPOLLOUT;
            }
            mask
        }

        /// Register `fd` with the given interest set under `token`.
        ///
        /// # Errors
        ///
        /// Returns the OS error (`EEXIST` if already registered).
        pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::mask(readable, writable), token)
        }

        /// Replace the interest set of an already-registered `fd`.
        ///
        /// # Errors
        ///
        /// Returns the OS error (`ENOENT` if not registered).
        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::mask(readable, writable), token)
        }

        /// Remove `fd` from the interest list.
        ///
        /// # Errors
        ///
        /// Returns the OS error (`ENOENT` if not registered).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Block for up to `timeout_ms` (`-1` = forever) and append the
        /// ready events to `events` (cleared first). A signal landing
        /// mid-wait is reported as zero events, not an error.
        ///
        /// # Errors
        ///
        /// Returns the OS error for genuine failures (`EBADF`, `EFAULT`).
        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            const CAP: usize = 256;
            let mut raw = [RawEvent { events: 0, data: 0 }; CAP];
            // SAFETY: `raw` is a valid writable buffer of CAP entries
            // for the duration of the call; the kernel writes at most
            // `maxevents` entries and returns how many.
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                // Copy out of the packed struct before use: references
                // into packed fields are unaligned.
                let bits = ev.events;
                let token = ev.data;
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd was returned by epoll_create1 and is closed
            // exactly once, here.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
pub use imp::{Event, Poller};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::Poller;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_round_trip() {
        let poller = Poller::new().expect("epoll_create1");
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        poller.add(b.as_raw_fd(), 7, true, false).expect("add");

        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "no data yet, nothing should be ready");

        a.write_all(b"x").expect("write");
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].closed);

        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).expect("read");

        // Writable interest: a fresh socket has buffer space.
        poller.modify(b.as_raw_fd(), 9, false, true).expect("mod");
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);
        assert!(events[0].writable);

        // Peer hang-up surfaces as closed.
        poller.modify(b.as_raw_fd(), 11, true, false).expect("mod");
        drop(a);
        poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 11);
        assert!(events[0].closed);

        poller.delete(b.as_raw_fd()).expect("del");
    }
}
