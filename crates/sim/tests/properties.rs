//! Property-based tests for the discrete-event kernel.

use proptest::prelude::*;
use tt_sim::{ArrivalProcess, EventQueue, InstanceType, ServiceNode, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn events_pop_in_nondecreasing_time_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn simultaneous_events_preserve_fifo(
        n in 1usize..100,
        t in 0u64..1_000,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn node_conservation_of_busy_time(
        jobs in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..100),
        slots in 1usize..8,
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut node = ServiceNode::new(slots);
        let mut total = SimDuration::ZERO;
        for (arrival, service) in sorted {
            let service = SimDuration::from_micros(service);
            let (timing, _) = node.admit(SimTime::from_micros(arrival), service);
            // FIFO within a slot: start >= arrival, finish = start + service.
            prop_assert!(timing.start >= SimTime::from_micros(arrival));
            prop_assert_eq!(timing.finish, timing.start + service);
            total += service;
        }
        prop_assert_eq!(node.busy_time(), total);
    }

    #[test]
    fn node_single_slot_is_strictly_serial(
        jobs in prop::collection::vec((0u64..10_000, 1u64..2_000), 2..50),
    ) {
        let mut sorted = jobs.clone();
        sorted.sort();
        let mut node = ServiceNode::new(1);
        let mut prev_finish = SimTime::ZERO;
        for (arrival, service) in sorted {
            let (timing, _) =
                node.admit(SimTime::from_micros(arrival), SimDuration::from_micros(service));
            prop_assert!(timing.start >= prev_finish);
            prev_finish = timing.finish;
        }
    }

    #[test]
    fn poisson_arrivals_are_strictly_increasing(
        rate in 1.0f64..10_000.0,
        seed in 0u64..100,
    ) {
        let arrivals: Vec<SimTime> =
            ArrivalProcess::poisson(rate, seed).unwrap().take(200).collect();
        for w in arrivals.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert!(arrivals[0] > SimTime::ZERO);
    }

    #[test]
    fn instance_cost_is_linear(
        price in 0.01f64..10.0,
        a in 1u64..1_000_000,
        b in 1u64..1_000_000,
    ) {
        let inst = InstanceType::new("prop", price);
        let ca = inst.cost_of(SimDuration::from_micros(a)).as_dollars();
        let cb = inst.cost_of(SimDuration::from_micros(b)).as_dollars();
        let cab = inst.cost_of(SimDuration::from_micros(a + b)).as_dollars();
        prop_assert!((ca + cb - cab).abs() < 1e-12);
    }
}
