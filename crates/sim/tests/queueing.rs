//! Analytic cross-validation of the kernel's queueing behaviour.
//!
//! A single-slot node fed by Poisson arrivals with deterministic
//! service is an M/D/1 queue, whose mean waiting time is known in
//! closed form: `W = ρ·D / (2(1 − ρ))`. The simulated node must agree —
//! this is the strongest correctness check available for the admission
//! logic, because it exercises the full interplay of stochastic
//! arrivals and slot bookkeeping against independent theory.

use tt_sim::{ArrivalProcess, LatencyRecorder, ServiceNode, SimDuration};

/// Simulate and return the mean wait (ms) at the given utilization.
fn mean_wait_ms(rho: f64, service_ms: u64, n: usize, seed: u64) -> f64 {
    let service = SimDuration::from_millis(service_ms);
    let rate = rho / service.as_secs_f64();
    let mut node = ServiceNode::new(1);
    let mut waits = LatencyRecorder::new();
    for arrival in ArrivalProcess::poisson(rate, seed).unwrap().take(n) {
        let (timing, _) = node.admit(arrival, service);
        waits.record(timing.queueing(arrival));
    }
    waits.summary().unwrap().mean()
}

#[test]
fn md1_mean_wait_matches_theory_at_moderate_load() {
    for &rho in &[0.3f64, 0.5, 0.7] {
        let service_ms = 10u64;
        let observed = mean_wait_ms(rho, service_ms, 60_000, 42);
        let expected = rho * service_ms as f64 / (2.0 * (1.0 - rho));
        let rel = (observed - expected).abs() / expected;
        assert!(
            rel < 0.15,
            "rho {rho}: observed {observed:.3}ms vs M/D/1 {expected:.3}ms ({rel:.2} rel err)"
        );
    }
}

#[test]
fn waits_explode_as_utilization_approaches_one() {
    let low = mean_wait_ms(0.5, 10, 20_000, 7);
    let high = mean_wait_ms(0.95, 10, 20_000, 7);
    assert!(high > low * 5.0, "high {high} vs low {low}");
}

#[test]
fn multi_slot_pool_cuts_waits_superlinearly() {
    // Same offered load split over more slots: pooled capacity wins.
    let service = SimDuration::from_millis(10);
    let run = |slots: usize| {
        let rate = 0.8 * slots as f64 / service.as_secs_f64();
        let mut node = ServiceNode::new(slots);
        let mut waits = LatencyRecorder::new();
        for arrival in ArrivalProcess::poisson(rate, 3).unwrap().take(30_000) {
            let (timing, _) = node.admit(arrival, service);
            waits.record(timing.queueing(arrival));
        }
        waits.summary().unwrap().mean()
    };
    let single = run(1);
    let pooled = run(8);
    assert!(
        pooled < single / 2.0,
        "pooling should cut waits: 1 slot {single:.3}ms vs 8 slots {pooled:.3}ms"
    );
}
