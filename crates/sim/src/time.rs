//! Virtual time newtypes with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since simulation
/// start.
///
/// ```
/// use tt_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.0 as f64 / 1e3)
    }
}

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Build from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Build from seconds (fractional; rounds to the nearest
    /// microsecond, saturating at zero for negative input).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest
    /// microsecond (negative factors clamp to zero).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e3)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(100);
        let u = t + SimDuration::from_micros(50);
        assert_eq!(u - t, SimDuration::from_micros(50));
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total, SimDuration::from_millis(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SimTime::ZERO.to_string().is_empty());
        assert!(!SimDuration::ZERO.to_string().is_empty());
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
