//! Seeded, deterministic fault injection for service pools.
//!
//! Production serving clusters fail in three characteristic ways that a
//! latency/accuracy study must model to say anything about *tail*
//! behaviour:
//!
//! * **Crashes** — the replica dies partway through an invocation. The
//!   job consumes a random fraction of its nominal service time (it held
//!   the slot until the crash) and completes as [`JobCompletion::Failed`].
//! * **Transient errors** — the invocation runs to completion but the
//!   result is unusable (corrupt response, dependency timeout, OOM on
//!   the last batch). Full service time is consumed, then the job fails.
//! * **Stragglers** — the invocation succeeds but takes a multiplicative
//!   factor longer than nominal (noisy neighbour, GC pause, thermal
//!   throttling). The job completes as [`JobCompletion::Slow`].
//!
//! Faults are drawn from a [`FaultPlan`]: one independent RNG stream per
//! version pool, all derived from a single seed, so adding a pool or
//! changing one pool's rates never perturbs the draws any *other* pool
//! sees. With every rate at zero the plan never touches its RNGs and
//! timing is bit-for-bit identical to a fault-free simulation.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-pool fault rates. All probabilities are per-invocation and
/// independent draws; their sum must not exceed 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability an invocation crashes partway through.
    pub crash: f64,
    /// Probability an invocation completes but returns an error.
    pub transient: f64,
    /// Probability an invocation straggles (succeeds, but slow).
    pub straggler: f64,
    /// Service-time multiplier applied to straggling invocations
    /// (must be >= 1).
    pub straggler_factor: f64,
}

impl FaultRates {
    /// A pool that never faults.
    pub const NONE: FaultRates = FaultRates {
        crash: 0.0,
        transient: 0.0,
        straggler: 0.0,
        straggler_factor: 1.0,
    };

    /// Crash-only failures at rate `p`.
    pub fn crash_only(p: f64) -> Self {
        FaultRates {
            crash: p,
            ..FaultRates::NONE
        }
    }

    /// Validate rates: each in `[0, 1]`, summing to at most 1, and a
    /// straggler factor of at least 1.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("crash", self.crash),
            ("transient", self.transient),
            ("straggler", self.straggler),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} rate {p} outside [0, 1]"));
            }
        }
        let total = self.crash + self.transient + self.straggler;
        if total > 1.0 + 1e-12 {
            return Err(format!("fault rates sum to {total} > 1"));
        }
        if self.straggler_factor < 1.0 {
            return Err(format!(
                "straggler factor {} < 1 would speed jobs up",
                self.straggler_factor
            ));
        }
        Ok(())
    }

    /// Whether every fault mode is disabled.
    pub fn is_none(&self) -> bool {
        self.crash == 0.0 && self.transient == 0.0 && self.straggler == 0.0
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::NONE
    }
}

/// What fault (if any) afflicts one invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// Invocation proceeds normally.
    None,
    /// Replica dies after `at_fraction` of the nominal service time.
    Crash {
        /// Fraction of nominal service time consumed before the crash,
        /// in `(0, 1)`.
        at_fraction: f64,
    },
    /// Invocation consumes full service time, then errors.
    Transient,
    /// Invocation succeeds after `factor` times the nominal service
    /// time.
    Straggler {
        /// Multiplicative service-time inflation, >= 1.
        factor: f64,
    },
}

impl FaultOutcome {
    /// The slot occupancy implied by this outcome for a job with
    /// `nominal` service time.
    pub fn occupancy(&self, nominal: SimDuration) -> SimDuration {
        match *self {
            FaultOutcome::None | FaultOutcome::Transient => nominal,
            FaultOutcome::Crash { at_fraction } => nominal.mul_f64(at_fraction),
            FaultOutcome::Straggler { factor } => nominal.mul_f64(factor),
        }
    }

    /// How a job afflicted by this outcome completes.
    pub fn completion(&self) -> JobCompletion {
        match self {
            FaultOutcome::None => JobCompletion::Success,
            FaultOutcome::Crash { .. } | FaultOutcome::Transient => JobCompletion::Failed,
            FaultOutcome::Straggler { .. } => JobCompletion::Slow,
        }
    }
}

/// Terminal state of an invocation under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobCompletion {
    /// Completed normally.
    Success,
    /// Crashed or errored; the result is unusable.
    Failed,
    /// Completed with straggler-inflated latency.
    Slow,
}

impl JobCompletion {
    /// Whether the invocation produced a usable result.
    pub fn is_usable(&self) -> bool {
        !matches!(self, JobCompletion::Failed)
    }
}

/// A deterministic schedule of faults across version pools.
///
/// ```
/// use tt_sim::fault::{FaultOutcome, FaultPlan, FaultRates};
///
/// let mut plan = FaultPlan::new(7, vec![FaultRates::crash_only(1.0), FaultRates::NONE]);
/// assert!(matches!(plan.draw(0), FaultOutcome::Crash { .. }));
/// assert_eq!(plan.draw(1), FaultOutcome::None);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rates: Vec<FaultRates>,
    streams: Vec<StdRng>,
}

impl FaultPlan {
    /// Build a plan with one entry per pool. Each pool gets an
    /// independent RNG stream derived from `seed` and its index.
    ///
    /// # Panics
    ///
    /// Panics if any pool's rates fail [`FaultRates::validate`].
    pub fn new(seed: u64, rates: Vec<FaultRates>) -> Self {
        for (pool, r) in rates.iter().enumerate() {
            if let Err(e) = r.validate() {
                panic!("pool {pool}: {e}");
            }
        }
        let streams = (0..rates.len())
            .map(|pool| {
                // Distinct, seed-stable stream per pool.
                StdRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(pool as u64 + 1)),
                )
            })
            .collect();
        FaultPlan { rates, streams }
    }

    /// A plan injecting no faults into any of `pools` pools.
    pub fn disabled(pools: usize) -> Self {
        FaultPlan::new(0, vec![FaultRates::NONE; pools])
    }

    /// Number of pools covered by the plan.
    pub fn pools(&self) -> usize {
        self.rates.len()
    }

    /// The rates configured for `pool`.
    pub fn rates(&self, pool: usize) -> &FaultRates {
        &self.rates[pool]
    }

    /// Whether no pool can ever fault.
    pub fn is_disabled(&self) -> bool {
        self.rates.iter().all(FaultRates::is_none)
    }

    /// Draw the fault outcome for the next invocation of `pool`.
    ///
    /// Pools with all-zero rates never consume randomness, so a
    /// disabled plan is a pure no-op.
    pub fn draw(&mut self, pool: usize) -> FaultOutcome {
        let rates = self.rates[pool];
        if rates.is_none() {
            return FaultOutcome::None;
        }
        let rng = &mut self.streams[pool];
        let u: f64 = rng.gen();
        if u < rates.crash {
            // Crash point uniform over the invocation, never exactly at
            // the start (the replica must have accepted the job).
            let at_fraction = rng.gen_range(f64::MIN_POSITIVE..1.0);
            FaultOutcome::Crash { at_fraction }
        } else if u < rates.crash + rates.transient {
            FaultOutcome::Transient
        } else if u < rates.crash + rates.transient + rates.straggler {
            FaultOutcome::Straggler {
                factor: rates.straggler_factor,
            }
        } else {
            FaultOutcome::None
        }
    }
}

/// Per-connection wire fault rates. These model the *network* between
/// the service and its clients, the layer [`FaultRates`] deliberately
/// ignores: a response can be lost or mangled even when every model
/// invocation behind it succeeded. All probabilities are
/// per-response and independent draws; their sum must not exceed 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaultRates {
    /// Probability the connection is reset before any response byte is
    /// written (client sees ECONNRESET / EOF).
    pub reset: f64,
    /// Probability only a prefix of the response is written before the
    /// connection closes.
    pub partial_write: f64,
    /// Probability the response is written in small chunks with a
    /// pause between them (a slow, but complete, write).
    pub slow_write: f64,
    /// Per-chunk pause applied to slow writes, in microseconds.
    pub slow_write_pause_us: u64,
}

impl WireFaultRates {
    /// A wire that never faults.
    pub const NONE: WireFaultRates = WireFaultRates {
        reset: 0.0,
        partial_write: 0.0,
        slow_write: 0.0,
        slow_write_pause_us: 0,
    };

    /// Validate rates: each in `[0, 1]` and summing to at most 1.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("reset", self.reset),
            ("partial_write", self.partial_write),
            ("slow_write", self.slow_write),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} rate {p} outside [0, 1]"));
            }
        }
        let total = self.reset + self.partial_write + self.slow_write;
        if total > 1.0 + 1e-12 {
            return Err(format!("wire fault rates sum to {total} > 1"));
        }
        Ok(())
    }

    /// Whether every wire fault mode is disabled.
    pub fn is_none(&self) -> bool {
        self.reset == 0.0 && self.partial_write == 0.0 && self.slow_write == 0.0
    }
}

impl Default for WireFaultRates {
    fn default() -> Self {
        WireFaultRates::NONE
    }
}

/// What wire fault (if any) afflicts one response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFaultOutcome {
    /// The response is delivered intact.
    None,
    /// The connection is reset before any byte is written.
    Reset,
    /// Only `fraction` of the response bytes are written, then the
    /// connection closes.
    PartialWrite {
        /// Fraction of the response delivered, in `(0, 1)`.
        fraction: f64,
    },
    /// The full response is written in chunks with `pause_us` between
    /// them.
    SlowWrite {
        /// Pause between chunks, in microseconds.
        pause_us: u64,
    },
}

impl WireFaultOutcome {
    /// Whether the client can possibly parse a complete response.
    pub fn delivers_response(&self) -> bool {
        matches!(
            self,
            WireFaultOutcome::None | WireFaultOutcome::SlowWrite { .. }
        )
    }
}

/// A deterministic schedule of wire faults, one independent RNG stream
/// per listener/lane — the network-layer sibling of [`FaultPlan`], with
/// the same determinism contract: zero-rate lanes never consume
/// randomness, and one lane's draw cadence never perturbs another's.
///
/// ```
/// use tt_sim::fault::{WireFaultOutcome, WireFaultPlan, WireFaultRates};
///
/// let mut plan = WireFaultPlan::new(3, vec![
///     WireFaultRates { reset: 1.0, ..WireFaultRates::NONE },
///     WireFaultRates::NONE,
/// ]);
/// assert_eq!(plan.draw(0), WireFaultOutcome::Reset);
/// assert_eq!(plan.draw(1), WireFaultOutcome::None);
/// ```
#[derive(Debug, Clone)]
pub struct WireFaultPlan {
    rates: Vec<WireFaultRates>,
    streams: Vec<StdRng>,
}

impl WireFaultPlan {
    /// Build a plan with one entry per lane, each with an independent
    /// RNG stream derived from `seed` and the lane index.
    ///
    /// # Panics
    ///
    /// Panics if any lane's rates fail [`WireFaultRates::validate`].
    pub fn new(seed: u64, rates: Vec<WireFaultRates>) -> Self {
        for (lane, r) in rates.iter().enumerate() {
            if let Err(e) = r.validate() {
                panic!("lane {lane}: {e}");
            }
        }
        let streams = (0..rates.len())
            .map(|lane| {
                // Same stream-splitting scheme as FaultPlan, offset so a
                // wire plan sharing a seed with a pool plan still gets
                // distinct streams.
                StdRng::seed_from_u64(
                    seed ^ (0xD1B5_4A32_D192_ED03u64.wrapping_mul(lane as u64 + 1)),
                )
            })
            .collect();
        WireFaultPlan { rates, streams }
    }

    /// A uniform plan: every one of `lanes` lanes uses `rates`.
    pub fn uniform(seed: u64, lanes: usize, rates: WireFaultRates) -> Self {
        WireFaultPlan::new(seed, vec![rates; lanes])
    }

    /// A plan injecting no wire faults into any of `lanes` lanes.
    pub fn disabled(lanes: usize) -> Self {
        WireFaultPlan::new(0, vec![WireFaultRates::NONE; lanes])
    }

    /// Number of lanes covered by the plan.
    pub fn lanes(&self) -> usize {
        self.rates.len()
    }

    /// The rates configured for `lane`.
    pub fn rates(&self, lane: usize) -> &WireFaultRates {
        &self.rates[lane]
    }

    /// Whether no lane can ever fault.
    pub fn is_disabled(&self) -> bool {
        self.rates.iter().all(WireFaultRates::is_none)
    }

    /// Draw the wire fault outcome for the next response on `lane`.
    /// Lanes beyond the plan wrap around, so a fixed-size plan can
    /// cover an unbounded worker pool deterministically.
    ///
    /// Lanes with all-zero rates never consume randomness.
    pub fn draw(&mut self, lane: usize) -> WireFaultOutcome {
        let lane = lane % self.rates.len().max(1);
        let rates = self.rates[lane];
        if rates.is_none() {
            return WireFaultOutcome::None;
        }
        let rng = &mut self.streams[lane];
        let u: f64 = rng.gen();
        if u < rates.reset {
            WireFaultOutcome::Reset
        } else if u < rates.reset + rates.partial_write {
            // Deliver at least one byte, never the full response.
            let fraction = rng.gen_range(f64::MIN_POSITIVE..1.0);
            WireFaultOutcome::PartialWrite { fraction }
        } else if u < rates.reset + rates.partial_write + rates.slow_write {
            WireFaultOutcome::SlowWrite {
                pause_us: rates.slow_write_pause_us,
            }
        } else {
            WireFaultOutcome::None
        }
    }
}

/// A node-level fault in a serving fleet: whole replicas, not single
/// invocations. These extend the per-invocation vocabulary above to
/// the granularity a multi-node front tier routes around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The node process dies abruptly: the listener closes and every
    /// pooled connection to it breaks.
    Crash,
    /// A crashed node comes back (fresh listener, same identity).
    Restart,
    /// The data path between front tier and node drops: proxied
    /// requests fail as if the network ate them. The node itself keeps
    /// running.
    PartitionData,
    /// The data path heals.
    HealData,
    /// The control path drops: the node stops hearing rules-epoch
    /// broadcasts and silently serves stale rules.
    PartitionControl,
    /// The control path heals.
    HealControl,
}

/// One scheduled node-level event: after `at_request` requests have
/// completed at the front tier, apply `fault` to `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFaultEvent {
    /// Completed-request count that triggers the event.
    pub at_request: usize,
    /// Target node index.
    pub node: usize,
    /// What happens to it.
    pub fault: NodeFault,
}

/// A deterministic script of node-level faults, replayed against a
/// running fleet by whoever drives the load (the cluster load
/// generator, a bench binary, a chaos test).
///
/// The script is ordered by trigger position; [`NodeFaultScript::due`]
/// drains every event whose position has been reached, so a driver
/// only needs a completed-request counter. Same script, same counter
/// sequence → same fault timeline, which is what makes node-crash
/// benchmarks reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFaultScript {
    events: Vec<NodeFaultEvent>,
    cursor: usize,
}

impl NodeFaultScript {
    /// Build a script from events in any order; they are stably sorted
    /// by trigger position.
    pub fn new(mut events: Vec<NodeFaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_request);
        NodeFaultScript { events, cursor: 0 }
    }

    /// A script with no events.
    pub fn disabled() -> Self {
        NodeFaultScript::new(Vec::new())
    }

    /// Kill `node` after `at_request` completed requests, never to
    /// return.
    pub fn crash_at(node: usize, at_request: usize) -> Self {
        NodeFaultScript::new(vec![NodeFaultEvent {
            at_request,
            node,
            fault: NodeFault::Crash,
        }])
    }

    /// Kill `node` after `at_request` completed requests and bring it
    /// back after `restart_at`.
    pub fn crash_restart(node: usize, at_request: usize, restart_at: usize) -> Self {
        NodeFaultScript::new(vec![
            NodeFaultEvent {
                at_request,
                node,
                fault: NodeFault::Crash,
            },
            NodeFaultEvent {
                at_request: restart_at,
                node,
                fault: NodeFault::Restart,
            },
        ])
    }

    /// A seeded script of `crashes` crash→restart pairs over a fleet
    /// of `nodes` nodes and a horizon of `horizon` requests. Positions
    /// and victims are drawn from the script's own RNG stream (the
    /// seed is decorrelated from pool- and lane-level streams), so the
    /// node-fault timeline never perturbs invocation- or wire-level
    /// draws.
    pub fn seeded(seed: u64, nodes: usize, horizon: usize, crashes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
        let mut events = Vec::with_capacity(crashes * 2);
        if nodes == 0 || horizon < 2 {
            return NodeFaultScript::new(events);
        }
        for _ in 0..crashes {
            let node = rng.gen_range(0..nodes);
            let at_request = rng.gen_range(1..horizon);
            let restart_at = rng.gen_range(at_request..horizon.max(at_request + 1));
            events.push(NodeFaultEvent {
                at_request,
                node,
                fault: NodeFault::Crash,
            });
            events.push(NodeFaultEvent {
                at_request: restart_at,
                node,
                fault: NodeFault::Restart,
            });
        }
        NodeFaultScript::new(events)
    }

    /// Drain every event whose trigger position is `<= completed`.
    /// Events fire exactly once, in script order.
    pub fn due(&mut self, completed: usize) -> &[NodeFaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at_request <= completed {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Whether the script has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every event in the script, fired or not, in trigger order.
    pub fn events(&self) -> &[NodeFaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_draws_none_forever() {
        let mut plan = FaultPlan::disabled(3);
        assert!(plan.is_disabled());
        for pool in 0..3 {
            for _ in 0..100 {
                assert_eq!(plan.draw(pool), FaultOutcome::None);
            }
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let rates = vec![
            FaultRates {
                crash: 0.2,
                transient: 0.2,
                straggler: 0.2,
                straggler_factor: 3.0,
            };
            2
        ];
        let mut a = FaultPlan::new(11, rates.clone());
        let mut b = FaultPlan::new(11, rates.clone());
        let mut c = FaultPlan::new(12, rates);
        let seq_a: Vec<_> = (0..50).map(|i| a.draw(i % 2)).collect();
        let seq_b: Vec<_> = (0..50).map(|i| b.draw(i % 2)).collect();
        let seq_c: Vec<_> = (0..50).map(|i| c.draw(i % 2)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn pool_streams_are_independent() {
        let rates = FaultRates {
            crash: 0.5,
            transient: 0.0,
            straggler: 0.0,
            straggler_factor: 1.0,
        };
        // Pool 1's draws must not depend on how often pool 0 draws.
        let mut interleaved = FaultPlan::new(5, vec![rates; 2]);
        let mut solo = FaultPlan::new(5, vec![rates; 2]);
        let mut from_interleaved = Vec::new();
        for _ in 0..20 {
            let _ = interleaved.draw(0);
            from_interleaved.push(interleaved.draw(1));
        }
        let from_solo: Vec<_> = (0..20).map(|_| solo.draw(1)).collect();
        assert_eq!(from_interleaved, from_solo);
    }

    #[test]
    fn empirical_rates_match_configuration() {
        let mut plan = FaultPlan::new(
            42,
            vec![FaultRates {
                crash: 0.1,
                transient: 0.2,
                straggler: 0.3,
                straggler_factor: 2.0,
            }],
        );
        let n = 20_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let idx = match plan.draw(0) {
                FaultOutcome::None => 0,
                FaultOutcome::Crash { at_fraction } => {
                    assert!(at_fraction > 0.0 && at_fraction < 1.0);
                    1
                }
                FaultOutcome::Transient => 2,
                FaultOutcome::Straggler { factor } => {
                    assert_eq!(factor, 2.0);
                    3
                }
            };
            counts[idx] += 1;
        }
        let freq = |c: usize| c as f64 / n as f64;
        assert!(
            (freq(counts[1]) - 0.1).abs() < 0.02,
            "crash {}",
            freq(counts[1])
        );
        assert!(
            (freq(counts[2]) - 0.2).abs() < 0.02,
            "transient {}",
            freq(counts[2])
        );
        assert!(
            (freq(counts[3]) - 0.3).abs() < 0.02,
            "straggler {}",
            freq(counts[3])
        );
    }

    #[test]
    fn occupancy_and_completion_follow_outcome() {
        let nominal = SimDuration::from_millis(100);
        assert_eq!(FaultOutcome::None.occupancy(nominal), nominal);
        assert_eq!(FaultOutcome::Transient.occupancy(nominal), nominal);
        assert_eq!(
            FaultOutcome::Crash { at_fraction: 0.25 }.occupancy(nominal),
            SimDuration::from_millis(25)
        );
        assert_eq!(
            FaultOutcome::Straggler { factor: 3.0 }.occupancy(nominal),
            SimDuration::from_millis(300)
        );
        assert_eq!(FaultOutcome::None.completion(), JobCompletion::Success);
        assert_eq!(
            FaultOutcome::Crash { at_fraction: 0.5 }.completion(),
            JobCompletion::Failed
        );
        assert_eq!(FaultOutcome::Transient.completion(), JobCompletion::Failed);
        assert_eq!(
            FaultOutcome::Straggler { factor: 2.0 }.completion(),
            JobCompletion::Slow
        );
        assert!(JobCompletion::Success.is_usable());
        assert!(JobCompletion::Slow.is_usable());
        assert!(!JobCompletion::Failed.is_usable());
    }

    #[test]
    fn validation_rejects_bad_rates() {
        assert!(FaultRates::crash_only(1.5).validate().is_err());
        assert!(FaultRates::crash_only(-0.1).validate().is_err());
        assert!(FaultRates {
            crash: 0.6,
            transient: 0.6,
            straggler: 0.0,
            straggler_factor: 1.0,
        }
        .validate()
        .is_err());
        assert!(FaultRates {
            crash: 0.0,
            transient: 0.0,
            straggler: 0.1,
            straggler_factor: 0.5,
        }
        .validate()
        .is_err());
        assert!(FaultRates::NONE.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "pool 0")]
    fn plan_panics_on_invalid_rates() {
        let _ = FaultPlan::new(1, vec![FaultRates::crash_only(2.0)]);
    }

    #[test]
    fn wire_plan_is_deterministic_and_lane_independent() {
        let rates = WireFaultRates {
            reset: 0.2,
            partial_write: 0.2,
            slow_write: 0.2,
            slow_write_pause_us: 500,
        };
        let mut a = WireFaultPlan::uniform(9, 2, rates);
        let mut b = WireFaultPlan::uniform(9, 2, rates);
        let seq_a: Vec<_> = (0..60).map(|i| a.draw(i % 2)).collect();
        let seq_b: Vec<_> = (0..60).map(|i| b.draw(i % 2)).collect();
        assert_eq!(seq_a, seq_b);

        // Lane 1 must see the same stream whether or not lane 0 draws.
        let mut interleaved = WireFaultPlan::uniform(5, 2, rates);
        let mut solo = WireFaultPlan::uniform(5, 2, rates);
        let mut from_interleaved = Vec::new();
        for _ in 0..20 {
            let _ = interleaved.draw(0);
            from_interleaved.push(interleaved.draw(1));
        }
        let from_solo: Vec<_> = (0..20).map(|_| solo.draw(1)).collect();
        assert_eq!(from_interleaved, from_solo);
    }

    #[test]
    fn wire_lane_indices_wrap_around() {
        let mut plan = WireFaultPlan::new(
            3,
            vec![
                WireFaultRates {
                    reset: 1.0,
                    ..WireFaultRates::NONE
                },
                WireFaultRates::NONE,
            ],
        );
        assert_eq!(plan.draw(2), WireFaultOutcome::Reset); // 2 % 2 == 0
        assert_eq!(plan.draw(3), WireFaultOutcome::None);
    }

    #[test]
    fn wire_outcomes_have_sane_shapes() {
        let mut plan = WireFaultPlan::uniform(
            42,
            1,
            WireFaultRates {
                reset: 0.2,
                partial_write: 0.3,
                slow_write: 0.3,
                slow_write_pause_us: 250,
            },
        );
        let mut seen = [false; 4];
        for _ in 0..2_000 {
            match plan.draw(0) {
                WireFaultOutcome::None => seen[0] = true,
                WireFaultOutcome::Reset => {
                    assert!(!WireFaultOutcome::Reset.delivers_response());
                    seen[1] = true;
                }
                WireFaultOutcome::PartialWrite { fraction } => {
                    assert!(fraction > 0.0 && fraction < 1.0);
                    seen[2] = true;
                }
                WireFaultOutcome::SlowWrite { pause_us } => {
                    assert_eq!(pause_us, 250);
                    assert!(WireFaultOutcome::SlowWrite { pause_us }.delivers_response());
                    seen[3] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "not all outcomes drawn: {seen:?}");
    }

    #[test]
    fn wire_validation_rejects_bad_rates() {
        assert!(WireFaultRates {
            reset: 1.5,
            ..WireFaultRates::NONE
        }
        .validate()
        .is_err());
        assert!(WireFaultRates {
            reset: 0.6,
            partial_write: 0.6,
            slow_write: 0.0,
            slow_write_pause_us: 0,
        }
        .validate()
        .is_err());
        assert!(WireFaultRates::NONE.validate().is_ok());
        assert!(WireFaultPlan::disabled(2).is_disabled());
    }

    #[test]
    fn node_fault_script_fires_in_order_exactly_once() {
        let mut script = NodeFaultScript::new(vec![
            NodeFaultEvent {
                at_request: 40,
                node: 1,
                fault: NodeFault::Restart,
            },
            NodeFaultEvent {
                at_request: 10,
                node: 1,
                fault: NodeFault::Crash,
            },
        ]);
        assert!(script.due(9).is_empty());
        let first = script.due(10);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].fault, NodeFault::Crash);
        assert!(script.due(10).is_empty(), "events fire once");
        assert_eq!(script.due(100)[0].fault, NodeFault::Restart);
        assert_eq!(script.remaining(), 0);
    }

    #[test]
    fn seeded_node_scripts_are_reproducible_and_ordered() {
        let a = NodeFaultScript::seeded(9, 4, 500, 3);
        let b = NodeFaultScript::seeded(9, 4, 500, 3);
        let c = NodeFaultScript::seeded(10, 4, 500, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events().len(), 6);
        assert!(a
            .events()
            .windows(2)
            .all(|w| w[0].at_request <= w[1].at_request));
        assert!(a.events().iter().all(|e| e.node < 4 && e.at_request < 500));
        assert!(NodeFaultScript::seeded(1, 0, 500, 3).is_empty());
    }

    #[test]
    fn crash_restart_helper_pairs_up() {
        let script = NodeFaultScript::crash_restart(2, 50, 80);
        assert_eq!(
            script.events(),
            &[
                NodeFaultEvent {
                    at_request: 50,
                    node: 2,
                    fault: NodeFault::Crash
                },
                NodeFaultEvent {
                    at_request: 80,
                    node: 2,
                    fault: NodeFault::Restart
                },
            ]
        );
        assert!(NodeFaultScript::crash_at(0, 5).events().len() == 1);
        assert!(NodeFaultScript::disabled().is_empty());
    }
}
