//! Latency recording and summarization.

use crate::time::SimDuration;
use tt_obs::{BucketScheme, Histogram};
use tt_stats::descriptive::Summary;
use tt_stats::{Result, StatsError};

/// How a [`LatencyRecorder`] stores its observations.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Storage {
    /// Every sample kept, in recording order (the default — exact
    /// statistics, memory grows with traffic).
    Exact(Vec<f64>),
    /// Log-linear histogram over integer microseconds: O(1) record,
    /// bounded memory, quantiles within the scheme's relative-error
    /// bound. The storage a live server wants.
    Bounded(Histogram),
}

/// Records per-request latencies and produces summaries.
///
/// ```
/// use tt_sim::{LatencyRecorder, SimDuration};
///
/// let mut rec = LatencyRecorder::new();
/// rec.record(SimDuration::from_millis(10));
/// rec.record(SimDuration::from_millis(30));
/// assert_eq!(rec.len(), 2);
/// let s = rec.summary().unwrap();
/// assert!((s.mean() - 20.0).abs() < 1e-9); // milliseconds
/// ```
///
/// The default (exact) mode keeps every sample. For unbounded request
/// streams — the live HTTP server, long fault sweeps — construct with
/// [`LatencyRecorder::bounded`] to trade exact order statistics for
/// O(1) memory:
///
/// ```
/// use tt_sim::{LatencyRecorder, SimDuration};
///
/// let mut rec = LatencyRecorder::bounded();
/// for ms in [10u64, 20, 30] {
///     rec.record(SimDuration::from_millis(ms));
/// }
/// let q = rec.quantiles(&[0.5]).unwrap();
/// assert!((q[0] - 20.0).abs() / 20.0 < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyRecorder {
    storage: Storage,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder {
            storage: Storage::Exact(Vec::new()),
        }
    }
}

impl LatencyRecorder {
    /// An empty exact-mode recorder (keeps every sample).
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// An empty bounded-mode recorder: samples land in a log-linear
    /// histogram ([`tt_obs::BucketScheme::DEFAULT`]) over integer
    /// microseconds — constant memory, quantiles within the scheme's
    /// documented relative-error bound.
    pub fn bounded() -> Self {
        LatencyRecorder {
            storage: Storage::Bounded(Histogram::new(BucketScheme::DEFAULT)),
        }
    }

    /// Whether this recorder uses bounded (histogram) storage.
    pub fn is_bounded(&self) -> bool {
        matches!(self.storage, Storage::Bounded(_))
    }

    /// Record one latency observation.
    pub fn record(&mut self, latency: SimDuration) {
        match &mut self.storage {
            Storage::Exact(samples) => samples.push(latency.as_millis_f64()),
            Storage::Bounded(hist) => hist.record(latency.as_micros()),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Exact(samples) => samples.len(),
            Storage::Bounded(hist) => hist.count() as usize,
        }
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw samples in milliseconds, in recording order. Bounded-mode
    /// recorders do not retain individual samples and return an empty
    /// slice — use [`LatencyRecorder::quantiles`] there.
    pub fn samples_ms(&self) -> &[f64] {
        match &self.storage {
            Storage::Exact(samples) => samples,
            Storage::Bounded(_) => &[],
        }
    }

    /// Quantile estimates in milliseconds, one per requested `q`.
    ///
    /// Exact mode sorts the samples *once* for the whole batch and
    /// interpolates linearly (numpy's `linear`, matching
    /// `tt_stats::descriptive::percentile`); bounded mode reads the
    /// histogram, within its relative-error bound. Returns `None` when
    /// empty or any `q` is not a probability.
    pub fn quantiles(&self, qs: &[f64]) -> Option<Vec<f64>> {
        if self.is_empty() || qs.iter().any(|q| !(0.0..=1.0).contains(q)) {
            return None;
        }
        match &self.storage {
            Storage::Exact(samples) => tt_stats::descriptive::quantiles(samples, qs).ok(),
            Storage::Bounded(hist) => Some(
                qs.iter()
                    .map(|&q| hist.quantile(q).expect("non-empty histogram") as f64 / 1e3)
                    .collect(),
            ),
        }
    }

    /// Mean latency in milliseconds; `None` when empty. Exact in both
    /// modes (the histogram keeps an exact integer sum).
    pub fn mean_ms(&self) -> Option<f64> {
        match &self.storage {
            Storage::Exact(samples) => {
                (!samples.is_empty()).then(|| samples.iter().sum::<f64>() / samples.len() as f64)
            }
            Storage::Bounded(hist) => hist.mean().map(|us| us / 1e3),
        }
    }

    /// Summary statistics over the recorded latencies, in milliseconds.
    ///
    /// # Errors
    ///
    /// Returns an error if nothing was recorded, or if the recorder is
    /// in bounded mode (a summary needs the raw samples; bounded
    /// callers should use [`LatencyRecorder::quantiles`] and
    /// [`LatencyRecorder::mean_ms`]).
    pub fn summary(&self) -> Result<Summary> {
        match &self.storage {
            Storage::Exact(samples) => Summary::from_slice(samples),
            Storage::Bounded(_) => Err(StatsError::InvalidParameter {
                what: "bounded-mode recorder",
            }),
        }
    }

    /// A fixed-width-bucket histogram with `buckets` bins spanning
    /// `[0, max]`. Returns bucket counts; observations above `max` land
    /// in the final bucket. In bounded mode each log-linear bucket's
    /// count is attributed to the bin holding its midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `max_ms <= 0`.
    pub fn histogram(&self, buckets: usize, max_ms: f64) -> Vec<usize> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(max_ms > 0.0, "histogram span must be positive");
        let mut counts = vec![0usize; buckets];
        let width = max_ms / buckets as f64;
        match &self.storage {
            Storage::Exact(samples) => {
                for &s in samples {
                    let idx = ((s / width) as usize).min(buckets - 1);
                    counts[idx] += 1;
                }
            }
            Storage::Bounded(hist) => {
                for (lower, bucket_width, count) in hist.nonzero_buckets() {
                    let mid_ms = (lower + bucket_width / 2) as f64 / 1e3;
                    let idx = ((mid_ms / width) as usize).min(buckets - 1);
                    counts[idx] += count as usize;
                }
            }
        }
        counts
    }

    /// Merge another recorder's observations into this one. Merging a
    /// bounded recorder into an exact one converts this recorder to
    /// bounded first (individual samples cannot be resurrected), so
    /// bounded-ness is contagious in the conservative direction.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        if !self.is_bounded() && other.is_bounded() {
            self.convert_to_bounded(other.scheme().expect("bounded recorder has a scheme"));
        }
        match (&mut self.storage, &other.storage) {
            (Storage::Exact(mine), Storage::Exact(theirs)) => mine.extend_from_slice(theirs),
            (Storage::Bounded(mine), Storage::Bounded(theirs)) => mine.merge(theirs),
            (Storage::Bounded(mine), Storage::Exact(theirs)) => {
                for &ms in theirs {
                    mine.record(ms_to_us(ms));
                }
            }
            (Storage::Exact(_), Storage::Bounded(_)) => unreachable!("converted above"),
        }
    }

    fn scheme(&self) -> Option<BucketScheme> {
        match &self.storage {
            Storage::Exact(_) => None,
            Storage::Bounded(hist) => Some(hist.scheme()),
        }
    }

    fn convert_to_bounded(&mut self, scheme: BucketScheme) {
        if let Storage::Exact(samples) = &self.storage {
            let mut hist = Histogram::new(scheme);
            for &ms in samples {
                hist.record(ms_to_us(ms));
            }
            self.storage = Storage::Bounded(hist);
        }
    }
}

fn ms_to_us(ms: f64) -> u64 {
    (ms.max(0.0) * 1e3).round() as u64
}

impl Extend<SimDuration> for LatencyRecorder {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for LatencyRecorder {
    fn from_iter<T: IntoIterator<Item = SimDuration>>(iter: T) -> Self {
        let mut rec = LatencyRecorder::new();
        rec.extend(iter);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_recorder_errors() {
        assert!(LatencyRecorder::new().summary().is_err());
    }

    #[test]
    fn histogram_buckets_counts() {
        let rec: LatencyRecorder = [1u64, 5, 9, 15, 100]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        let h = rec.histogram(2, 20.0);
        // [0,10): 1,5,9 -> 3; [10,20]+overflow: 15,100 -> 2
        assert_eq!(h, vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        LatencyRecorder::new().histogram(0, 10.0);
    }

    #[test]
    fn merge_concatenates() {
        let mut a: LatencyRecorder = std::iter::once(SimDuration::from_millis(1)).collect();
        let b: LatencyRecorder = std::iter::once(SimDuration::from_millis(2)).collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn quantiles_sort_once_and_match_percentile() {
        let rec: LatencyRecorder = [30u64, 10, 20, 40, 50]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        let qs = rec.quantiles(&[0.0, 0.5, 1.0]).unwrap();
        assert_eq!(qs, vec![10.0, 30.0, 50.0]);
        for (q, want) in [(0.0, 10.0), (0.5, 30.0), (1.0, 50.0)] {
            let exact = tt_stats::descriptive::percentile(rec.samples_ms(), q).unwrap();
            assert_eq!(exact, want);
        }
        // Interpolated position between order statistics.
        let q25 = rec.quantiles(&[0.25]).unwrap()[0];
        assert!((q25 - 20.0).abs() < 1e-12);
        assert!(rec.quantiles(&[1.5]).is_none());
        assert!(LatencyRecorder::new().quantiles(&[0.5]).is_none());
    }

    #[test]
    fn bounded_mode_tracks_quantiles_within_bound() {
        let mut rec = LatencyRecorder::bounded();
        assert!(rec.is_bounded());
        for i in 0..1_000u64 {
            rec.record(SimDuration::from_micros(1_000 + i * 97));
        }
        assert_eq!(rec.len(), 1_000);
        assert!(rec.samples_ms().is_empty());
        assert!(rec.summary().is_err());
        let q = rec.quantiles(&[0.5]).unwrap()[0];
        let exact_ms = (1_000.0 + 500.0 * 97.0) / 1e3;
        assert!(
            (q - exact_ms).abs() / exact_ms < 0.02,
            "p50 {q} vs exact {exact_ms}"
        );
        let mean = rec.mean_ms().unwrap();
        let exact_mean = (1_000.0 + (999.0 * 97.0) / 2.0) / 1e3;
        assert!((mean - exact_mean).abs() < 1e-9, "histogram sum is exact");
    }

    #[test]
    fn merging_bounded_into_exact_converts() {
        let mut exact: LatencyRecorder = [1u64, 2]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        let mut bounded = LatencyRecorder::bounded();
        bounded.record(SimDuration::from_millis(3));
        exact.merge(&bounded);
        assert!(exact.is_bounded());
        assert_eq!(exact.len(), 3);
        // And the other direction: exact samples feed the histogram.
        let mut b2 = LatencyRecorder::bounded();
        let e2: LatencyRecorder = std::iter::once(SimDuration::from_millis(5)).collect();
        b2.merge(&e2);
        assert_eq!(b2.len(), 1);
    }

    #[test]
    fn bounded_histogram_render_approximates_fixed_buckets() {
        let mut rec = LatencyRecorder::bounded();
        for &ms in &[1u64, 5, 9, 15, 100] {
            rec.record(SimDuration::from_millis(ms));
        }
        let h = rec.histogram(2, 20.0);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert!(h[1] >= 2, "slow samples land in the tail bucket");
    }
}
