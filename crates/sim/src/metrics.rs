//! Latency recording and summarization.

use crate::time::SimDuration;
use tt_stats::descriptive::Summary;
use tt_stats::Result;

/// Records per-request latencies and produces summaries.
///
/// ```
/// use tt_sim::{LatencyRecorder, SimDuration};
///
/// let mut rec = LatencyRecorder::new();
/// rec.record(SimDuration::from_millis(10));
/// rec.record(SimDuration::from_millis(30));
/// assert_eq!(rec.len(), 2);
/// let s = rec.summary().unwrap();
/// assert!((s.mean() - 20.0).abs() < 1e-9); // milliseconds
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Record one latency observation.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples_ms.push(latency.as_millis_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// Raw samples in milliseconds, in recording order.
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Summary statistics over the recorded latencies, in milliseconds.
    ///
    /// # Errors
    ///
    /// Returns an error if nothing was recorded.
    pub fn summary(&self) -> Result<Summary> {
        Summary::from_slice(&self.samples_ms)
    }

    /// A fixed-width-bucket histogram with `buckets` bins spanning
    /// `[0, max]`. Returns bucket counts; observations above `max` land
    /// in the final bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `max_ms <= 0`.
    pub fn histogram(&self, buckets: usize, max_ms: f64) -> Vec<usize> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(max_ms > 0.0, "histogram span must be positive");
        let mut counts = vec![0usize; buckets];
        let width = max_ms / buckets as f64;
        for &s in &self.samples_ms {
            let idx = ((s / width) as usize).min(buckets - 1);
            counts[idx] += 1;
        }
        counts
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }
}

impl Extend<SimDuration> for LatencyRecorder {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for LatencyRecorder {
    fn from_iter<T: IntoIterator<Item = SimDuration>>(iter: T) -> Self {
        let mut rec = LatencyRecorder::new();
        rec.extend(iter);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_recorder_errors() {
        assert!(LatencyRecorder::new().summary().is_err());
    }

    #[test]
    fn histogram_buckets_counts() {
        let rec: LatencyRecorder = [1u64, 5, 9, 15, 100]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect();
        let h = rec.histogram(2, 20.0);
        // [0,10): 1,5,9 -> 3; [10,20]+overflow: 15,100 -> 2
        assert_eq!(h, vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        LatencyRecorder::new().histogram(0, 10.0);
    }

    #[test]
    fn merge_concatenates() {
        let mut a: LatencyRecorder = std::iter::once(SimDuration::from_millis(1)).collect();
        let b: LatencyRecorder = std::iter::once(SimDuration::from_millis(2)).collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }
}
