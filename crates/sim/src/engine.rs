//! A generic discrete-event queue.
//!
//! Events carry a user-defined payload `E` and fire in timestamp order;
//! events scheduled for the same instant fire in FIFO (schedule) order,
//! which keeps simulations deterministic. Scheduled events can be
//! cancelled by token, which is how early termination of a concurrent
//! service invocation is modelled.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Token identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic event queue advancing a virtual clock.
///
/// ```
/// use tt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let tok = q.schedule(SimTime::from_micros(10), "late");
/// q.schedule(SimTime::from_micros(5), "early");
/// q.cancel(tok);
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "early")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at `at`.
    ///
    /// Scheduling in the past is allowed (the event fires "immediately",
    /// before anything later), because analytic service models sometimes
    /// discover completions retroactively; the clock itself never runs
    /// backwards below the last popped timestamp.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, payload }));
        EventToken(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// had not yet fired (or been cancelled).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        // We cannot cheaply know whether the event already fired; track
        // cancellations and skip on pop. Inserting twice is idempotent.
        self.cancelled.insert(token.0)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    /// Cancelled events are skipped. The clock is monotone: an event
    /// scheduled in the past fires at the current clock value.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = self.now.max(ev.at);
            return Some((self.now, ev.payload));
        }
        None
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.cancelled.contains(&ev.seq) {
                let seq = ev.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(ev.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.schedule(t, "first");
        q.schedule(t, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn clock_advances_monotonically_even_for_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "a");
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(100));
        // Scheduled "in the past" relative to the clock.
        q.schedule(SimTime::from_micros(50), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(100));
        assert_eq!(q.now(), SimTime::from_micros(100));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let tok = q.schedule(SimTime::from_micros(10), "x");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(tok));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(99)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.schedule(SimTime::from_micros(1), "dead");
        q.schedule(SimTime::from_micros(2), "live");
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(q.pop().unwrap().1, "live");
    }

    #[test]
    fn schedule_in_chain() {
        // A small two-event cascade driven by the queue itself.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut fired = Vec::new();
        while let Some((t, stage)) = q.pop() {
            fired.push((t, stage));
            if stage < 3 {
                q.schedule(t + SimDuration::from_millis(1), stage + 1);
            }
        }
        assert_eq!(fired.len(), 4);
        assert_eq!(fired[3].0, SimTime::from_micros(3_000));
    }
}
