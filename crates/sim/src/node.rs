//! Service nodes: `c` parallel execution slots with FIFO admission.
//!
//! A node models one scaled-out instantiation of a service version (the
//! paper's "service node"). Work is admitted in arrival order; each job
//! occupies the earliest-available slot. The timing model is analytic —
//! admission immediately yields the job's start and finish instants — but
//! jobs may later be *released early* (cancelled), which is how the early
//! termination (ET) routing policy frees capacity and stops accruing IaaS
//! cost for the expensive version.

use crate::fault::{FaultOutcome, JobCompletion};
use crate::time::{SimDuration, SimTime};

/// Identifier of a job admitted to a node, used for early release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId {
    slot: usize,
    seq: u64,
}

/// The computed schedule for an admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobTiming {
    /// Instant the job begins executing (>= its arrival).
    pub start: SimTime,
    /// Instant the job completes.
    pub finish: SimTime,
}

impl JobTiming {
    /// Queueing delay experienced before execution started.
    pub fn queueing(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }

    /// Total time from arrival to completion.
    pub fn response_time(&self, arrival: SimTime) -> SimDuration {
        self.finish.saturating_since(arrival)
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    free_at: SimTime,
    last_job: Option<(u64, SimTime)>, // (seq, start) of the job finishing at free_at
}

/// A service node with a fixed number of parallel slots.
///
/// ```
/// use tt_sim::{ServiceNode, SimDuration, SimTime};
///
/// let mut node = ServiceNode::new(1);
/// let (a, _) = node.admit(SimTime::ZERO, SimDuration::from_millis(10));
/// let (b, _) = node.admit(SimTime::ZERO, SimDuration::from_millis(10));
/// assert_eq!(a.finish, SimTime::from_micros(10_000));
/// assert_eq!(b.start, a.finish); // queued behind the first job
/// ```
#[derive(Debug, Clone)]
pub struct ServiceNode {
    slots: Vec<Slot>,
    next_seq: u64,
    busy: SimDuration,
}

impl ServiceNode {
    /// Create a node with `slots` parallel execution slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a service node needs at least one slot");
        ServiceNode {
            slots: vec![
                Slot {
                    free_at: SimTime::ZERO,
                    last_job: None,
                };
                slots
            ],
            next_seq: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Number of parallel slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Total busy time accrued so far (including time scheduled in the
    /// future for already-admitted jobs; early release refunds it).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Admit a job arriving at `arrival` needing `service` execution
    /// time. Returns its schedule and an id usable with
    /// [`ServiceNode::release_early`].
    pub fn admit(&mut self, arrival: SimTime, service: SimDuration) -> (JobTiming, JobId) {
        // Earliest-free slot; ties broken by index for determinism.
        let (slot_idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.free_at, *i))
            .expect("at least one slot");
        let slot = &mut self.slots[slot_idx];
        let start = arrival.max(slot.free_at);
        let finish = start + service;
        let seq = self.next_seq;
        self.next_seq += 1;
        slot.free_at = finish;
        slot.last_job = Some((seq, start));
        self.busy += service;
        (
            JobTiming { start, finish },
            JobId {
                slot: slot_idx,
                seq,
            },
        )
    }

    /// Admit a job whose invocation is afflicted by `fault`.
    ///
    /// The slot is occupied for the fault-adjusted time ([`FaultOutcome::
    /// occupancy`]): crashes hold it only until the crash instant,
    /// stragglers hold it for the inflated service time, and transient
    /// errors consume the full nominal time before failing. With
    /// [`FaultOutcome::None`] this is exactly [`ServiceNode::admit`].
    pub fn admit_faulty(
        &mut self,
        arrival: SimTime,
        service: SimDuration,
        fault: FaultOutcome,
    ) -> (JobTiming, JobId, JobCompletion) {
        let (timing, id) = self.admit(arrival, fault.occupancy(service));
        (timing, id, fault.completion())
    }

    /// Cancel a running job at instant `at`, freeing its slot and
    /// refunding the unexecuted portion of its busy time.
    ///
    /// Only the *most recently admitted* job on a slot can be released
    /// (later admissions already queued behind it would otherwise need
    /// rescheduling); attempting to release anything else returns
    /// `false` and changes nothing. This matches how the serving layer
    /// uses it: a concurrent ensemble admits the expensive job last and
    /// cancels it as soon as the cheap version's confident answer
    /// arrives.
    pub fn release_early(&mut self, job: JobId, at: SimTime) -> bool {
        let slot = &mut self.slots[job.slot];
        match slot.last_job {
            Some((seq, start)) if seq == job.seq => {
                let effective_end = at.max(start).min(slot.free_at);
                let refund = slot.free_at.saturating_since(effective_end);
                self.busy = self.busy.saturating_sub(refund);
                slot.free_at = effective_end;
                slot.last_job = None;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_micros(v * 1_000)
    }

    #[test]
    fn single_slot_queues_fifo() {
        let mut n = ServiceNode::new(1);
        let (a, _) = n.admit(at(0), ms(10));
        let (b, _) = n.admit(at(2), ms(10));
        assert_eq!(a.start, at(0));
        assert_eq!(a.finish, at(10));
        assert_eq!(b.start, at(10));
        assert_eq!(b.finish, at(20));
        assert_eq!(b.queueing(at(2)), ms(8));
        assert_eq!(b.response_time(at(2)), ms(18));
    }

    #[test]
    fn parallel_slots_run_concurrently() {
        let mut n = ServiceNode::new(2);
        let (a, _) = n.admit(at(0), ms(10));
        let (b, _) = n.admit(at(0), ms(10));
        assert_eq!(a.start, at(0));
        assert_eq!(b.start, at(0));
        assert_eq!(n.busy_time(), ms(20));
    }

    #[test]
    fn idle_gap_before_late_arrival() {
        let mut n = ServiceNode::new(1);
        let (a, _) = n.admit(at(0), ms(5));
        let (b, _) = n.admit(at(100), ms(5));
        assert_eq!(a.finish, at(5));
        assert_eq!(b.start, at(100));
    }

    #[test]
    fn early_release_refunds_busy_time() {
        let mut n = ServiceNode::new(1);
        let (t, id) = n.admit(at(0), ms(100));
        assert_eq!(n.busy_time(), ms(100));
        assert!(n.release_early(id, at(30)));
        assert_eq!(n.busy_time(), ms(30));
        // Slot is free again at t=30.
        let (next, _) = n.admit(at(30), ms(10));
        assert_eq!(next.start, at(30));
        let _ = t;
    }

    #[test]
    fn early_release_before_start_refunds_everything() {
        let mut n = ServiceNode::new(1);
        let (_, first) = n.admit(at(0), ms(50));
        let (_, second) = n.admit(at(0), ms(50)); // queued: starts at 50
                                                  // Cancel the queued job at t=10, before it started.
        assert!(n.release_early(second, at(10)));
        assert_eq!(n.busy_time(), ms(50));
        let _ = first;
    }

    #[test]
    fn release_of_stale_job_is_rejected() {
        let mut n = ServiceNode::new(1);
        let (_, first) = n.admit(at(0), ms(10));
        let (_, _second) = n.admit(at(0), ms(10));
        // `first` is no longer the slot's most recent admission.
        assert!(!n.release_early(first, at(1)));
        assert_eq!(n.busy_time(), ms(20));
    }

    #[test]
    fn double_release_is_rejected() {
        let mut n = ServiceNode::new(1);
        let (_, id) = n.admit(at(0), ms(10));
        assert!(n.release_early(id, at(1)));
        assert!(!n.release_early(id, at(2)));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = ServiceNode::new(0);
    }
}
