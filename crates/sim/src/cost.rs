//! Cost accounting: IaaS busy-time charges and per-invocation API prices.
//!
//! The paper reports two cost perspectives: what the *provider* pays for
//! the compute (instance-hours of the nodes executing the service
//! versions — GPU nodes cost roughly 3× a CPU node) and what the *API
//! consumer* pays per invocation. Both reduce to the same accounting:
//! time × rate and count × price.

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign};

/// An amount of money in dollars.
///
/// A thin newtype over `f64` so costs cannot be confused with latencies
/// or error rates in APIs that juggle all three.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Money(f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Build from a dollar amount.
    ///
    /// # Panics
    ///
    /// Panics if `dollars` is NaN.
    pub fn from_dollars(dollars: f64) -> Self {
        assert!(!dollars.is_nan(), "money cannot be NaN");
        Money(dollars)
    }

    /// Amount in dollars.
    pub fn as_dollars(self) -> f64 {
        self.0
    }

    /// Scale by a dimensionless factor.
    pub fn scaled(self, factor: f64) -> Money {
        Money(self.0 * factor)
    }
}

impl Add for Money {
    type Output = Money;

    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Self {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.6}", self.0)
    }
}

/// A machine instance type with an hourly price.
///
/// ```
/// use tt_sim::{InstanceType, SimDuration};
///
/// let gpu = InstanceType::new("gpu-k80", 2.70);
/// let cost = gpu.cost_of(SimDuration::from_secs_f64(3600.0));
/// assert!((cost.as_dollars() - 2.70).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstanceType {
    name: String,
    price_per_hour: f64,
}

impl InstanceType {
    /// Define an instance type.
    ///
    /// # Panics
    ///
    /// Panics if the price is negative or non-finite.
    pub fn new(name: impl Into<String>, price_per_hour: f64) -> Self {
        assert!(
            price_per_hour.is_finite() && price_per_hour >= 0.0,
            "invalid instance price"
        );
        InstanceType {
            name: name.into(),
            price_per_hour,
        }
    }

    /// Instance type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hourly price in dollars.
    pub fn price_per_hour(&self) -> f64 {
        self.price_per_hour
    }

    /// Cost of keeping this instance busy for `busy` time.
    pub fn cost_of(&self, busy: SimDuration) -> Money {
        Money(self.price_per_hour * busy.as_secs_f64() / 3600.0)
    }

    /// The CPU node type used throughout the reproduction (2017-era
    /// c4.xlarge-class list price).
    pub fn cpu_node() -> InstanceType {
        InstanceType::new("cpu-c4", 0.199)
    }

    /// The GPU node type (K80-class p2.xlarge list price).
    pub fn gpu_node() -> InstanceType {
        InstanceType::new("gpu-k80", 0.90)
    }
}

/// Accumulates compute and invocation charges over a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostLedger {
    compute: Money,
    invocation: Money,
    invocations: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charge compute time on an instance type.
    pub fn charge_compute(&mut self, instance: &InstanceType, busy: SimDuration) {
        self.compute += instance.cost_of(busy);
    }

    /// Charge one API invocation at `price`.
    pub fn charge_invocation(&mut self, price: Money) {
        self.invocation += price;
        self.invocations += 1;
    }

    /// Refund compute (early termination gives unused busy time back).
    pub fn refund_compute(&mut self, instance: &InstanceType, unused: SimDuration) {
        self.compute += instance.cost_of(unused).scaled(-1.0);
    }

    /// Total compute (IaaS) charges.
    pub fn compute_cost(&self) -> Money {
        self.compute
    }

    /// Total invocation (API) charges.
    pub fn invocation_cost(&self) -> Money {
        self.invocation
    }

    /// Number of invocations charged.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Grand total.
    pub fn total(&self) -> Money {
        self.compute + self.invocation
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.compute += other.compute;
        self.invocation += other.invocation;
        self.invocations += other.invocations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_cost_scales_linearly() {
        let cpu = InstanceType::new("cpu", 0.40);
        let one_hr = cpu.cost_of(SimDuration::from_secs_f64(3600.0));
        let two_hr = cpu.cost_of(SimDuration::from_secs_f64(7200.0));
        assert!((one_hr.as_dollars() - 0.40).abs() < 1e-12);
        assert!((two_hr.as_dollars() - 0.80).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid instance price")]
    fn negative_price_panics() {
        let _ = InstanceType::new("bad", -1.0);
    }

    #[test]
    fn ledger_accumulates_and_refunds() {
        let cpu = InstanceType::new("cpu", 3.6); // $0.001/sec
        let mut ledger = CostLedger::new();
        ledger.charge_compute(&cpu, SimDuration::from_secs_f64(10.0));
        assert!((ledger.compute_cost().as_dollars() - 0.01).abs() < 1e-12);
        ledger.refund_compute(&cpu, SimDuration::from_secs_f64(5.0));
        assert!((ledger.compute_cost().as_dollars() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn ledger_counts_invocations() {
        let mut ledger = CostLedger::new();
        ledger.charge_invocation(Money::from_dollars(0.004));
        ledger.charge_invocation(Money::from_dollars(0.004));
        assert_eq!(ledger.invocations(), 2);
        assert!((ledger.invocation_cost().as_dollars() - 0.008).abs() < 1e-12);
        assert!((ledger.total().as_dollars() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn ledger_merge() {
        let mut a = CostLedger::new();
        a.charge_invocation(Money::from_dollars(1.0));
        let mut b = CostLedger::new();
        b.charge_invocation(Money::from_dollars(2.0));
        a.merge(&b);
        assert_eq!(a.invocations(), 2);
        assert!((a.invocation_cost().as_dollars() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn money_sum_and_display() {
        let total: Money = [1.0, 2.0].iter().map(|&d| Money::from_dollars(d)).sum();
        assert_eq!(total, Money::from_dollars(3.0));
        assert!(total.to_string().starts_with('$'));
    }
}
