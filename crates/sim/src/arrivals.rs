//! Arrival processes generating request timestamps.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of arrival instants.
///
/// ```
/// use tt_sim::ArrivalProcess;
///
/// // 100 requests/second, seeded.
/// let arrivals: Vec<_> = ArrivalProcess::poisson(100.0, 7).unwrap().take(10).collect();
/// assert_eq!(arrivals.len(), 10);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    kind: Kind,
    now: SimTime,
}

#[derive(Debug, Clone)]
enum Kind {
    Poisson {
        rate_per_sec: f64,
        rng: StdRng,
    },
    Deterministic {
        gap: SimDuration,
    },
    /// A non-homogeneous Poisson process realised by thinning a
    /// homogeneous candidate stream at the peak rate (Lewis–Shedler):
    /// every candidate instant is kept with probability
    /// `rate(t) / peak_rate`, which reproduces the exact time-varying
    /// intensity while staying deterministic per seed.
    Modulated {
        peak_rate_per_sec: f64,
        rng: StdRng,
        shape: RateShape,
    },
}

/// Time-varying intensity profiles for [`Kind::Modulated`].
#[derive(Debug, Clone)]
enum RateShape {
    /// Sinusoidal day/night cycle: the rate starts at the trough
    /// (`base * (1 - amplitude)`), peaks at `base * (1 + amplitude)`
    /// half a period in, and returns to the trough each full period.
    Diurnal {
        base: f64,
        amplitude: f64,
        period_s: f64,
    },
    /// Steady base rate with a flash crowd: within
    /// `[start, start + duration)` the rate jumps to
    /// `base * multiplier`, then falls back.
    Flash {
        base: f64,
        multiplier: f64,
        start_s: f64,
        duration_s: f64,
    },
}

impl RateShape {
    fn rate_at(&self, t_s: f64) -> f64 {
        match self {
            RateShape::Diurnal {
                base,
                amplitude,
                period_s,
            } => {
                let phase = std::f64::consts::TAU * t_s / period_s;
                base * (1.0 - amplitude * phase.cos())
            }
            RateShape::Flash {
                base,
                multiplier,
                start_s,
                duration_s,
            } => {
                if t_s >= *start_s && t_s < start_s + duration_s {
                    base * multiplier
                } else {
                    *base
                }
            }
        }
    }
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate_per_sec` requests per second
    /// (exponential inter-arrival times), seeded for determinism.
    ///
    /// # Errors
    ///
    /// Returns an error message if the rate is non-positive or
    /// non-finite.
    pub fn poisson(rate_per_sec: f64, seed: u64) -> Result<Self, String> {
        if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
            return Err(format!("invalid arrival rate: {rate_per_sec}"));
        }
        Ok(ArrivalProcess {
            kind: Kind::Poisson {
                rate_per_sec,
                rng: StdRng::seed_from_u64(seed),
            },
            now: SimTime::ZERO,
        })
    }

    /// Deterministic arrivals separated by `gap`.
    pub fn deterministic(gap: SimDuration) -> Self {
        ArrivalProcess {
            kind: Kind::Deterministic { gap },
            now: SimTime::ZERO,
        }
    }

    /// A diurnal (sinusoidal) arrival process: the rate starts at the
    /// trough `base * (1 - amplitude)`, peaks at `base * (1 + amplitude)`
    /// half a `period` in, and completes one full cycle per `period`.
    /// Seeded and deterministic; realised by thinning a homogeneous
    /// Poisson stream at the peak rate.
    ///
    /// # Errors
    ///
    /// Returns an error message if `base_rate_per_sec` is non-positive
    /// or non-finite, `amplitude` is outside `(0, 1]`, or `period` is
    /// zero.
    pub fn diurnal(
        base_rate_per_sec: f64,
        amplitude: f64,
        period: SimDuration,
        seed: u64,
    ) -> Result<Self, String> {
        if !base_rate_per_sec.is_finite() || base_rate_per_sec <= 0.0 {
            return Err(format!("invalid arrival rate: {base_rate_per_sec}"));
        }
        if !amplitude.is_finite() || amplitude <= 0.0 || amplitude > 1.0 {
            return Err(format!("diurnal amplitude must be in (0, 1]: {amplitude}"));
        }
        if period == SimDuration::ZERO {
            return Err("diurnal period must be positive".into());
        }
        Ok(ArrivalProcess {
            kind: Kind::Modulated {
                peak_rate_per_sec: base_rate_per_sec * (1.0 + amplitude),
                rng: StdRng::seed_from_u64(seed),
                shape: RateShape::Diurnal {
                    base: base_rate_per_sec,
                    amplitude,
                    period_s: period.as_secs_f64(),
                },
            },
            now: SimTime::ZERO,
        })
    }

    /// A flash-crowd arrival process: steady `base_rate_per_sec`
    /// arrivals except within `[start, start + duration)`, where the
    /// rate jumps to `base_rate_per_sec * multiplier`. Seeded and
    /// deterministic; realised by thinning at the crowd rate.
    ///
    /// # Errors
    ///
    /// Returns an error message if the base rate is non-positive or
    /// non-finite, `multiplier < 1` or non-finite, or `duration` is
    /// zero.
    pub fn flash(
        base_rate_per_sec: f64,
        multiplier: f64,
        start: SimDuration,
        duration: SimDuration,
        seed: u64,
    ) -> Result<Self, String> {
        if !base_rate_per_sec.is_finite() || base_rate_per_sec <= 0.0 {
            return Err(format!("invalid arrival rate: {base_rate_per_sec}"));
        }
        if !multiplier.is_finite() || multiplier < 1.0 {
            return Err(format!("flash multiplier must be >= 1: {multiplier}"));
        }
        if duration == SimDuration::ZERO {
            return Err("flash duration must be positive".into());
        }
        Ok(ArrivalProcess {
            kind: Kind::Modulated {
                peak_rate_per_sec: base_rate_per_sec * multiplier,
                rng: StdRng::seed_from_u64(seed),
                shape: RateShape::Flash {
                    base: base_rate_per_sec,
                    multiplier,
                    start_s: start.as_secs_f64(),
                    duration_s: duration.as_secs_f64(),
                },
            },
            now: SimTime::ZERO,
        })
    }
}

impl Iterator for ArrivalProcess {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        match &mut self.kind {
            Kind::Poisson { rate_per_sec, rng } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.now += SimDuration::from_secs_f64(-u.ln() / *rate_per_sec);
            }
            Kind::Deterministic { gap } => {
                self.now += *gap;
            }
            Kind::Modulated {
                peak_rate_per_sec,
                rng,
                shape,
            } => loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.now += SimDuration::from_secs_f64(-u.ln() / *peak_rate_per_sec);
                let keep: f64 = rng.gen_range(0.0..1.0);
                if keep * *peak_rate_per_sec < shape.rate_at(self.now.as_secs_f64()) {
                    break;
                }
            },
        }
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rejects_bad_rate() {
        assert!(ArrivalProcess::poisson(0.0, 1).is_err());
        assert!(ArrivalProcess::poisson(-5.0, 1).is_err());
        assert!(ArrivalProcess::poisson(f64::NAN, 1).is_err());
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let n = 20_000;
        let last = ArrivalProcess::poisson(200.0, 42)
            .unwrap()
            .take(n)
            .last()
            .unwrap();
        let observed_rate = n as f64 / last.as_secs_f64();
        assert!(
            (observed_rate - 200.0).abs() / 200.0 < 0.05,
            "observed {observed_rate}"
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a: Vec<_> = ArrivalProcess::poisson(50.0, 9)
            .unwrap()
            .take(100)
            .collect();
        let b: Vec<_> = ArrivalProcess::poisson(50.0, 9)
            .unwrap()
            .take(100)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_spacing() {
        let gaps: Vec<_> = ArrivalProcess::deterministic(SimDuration::from_millis(10))
            .take(3)
            .collect();
        assert_eq!(
            gaps,
            vec![
                SimTime::from_micros(10_000),
                SimTime::from_micros(20_000),
                SimTime::from_micros(30_000)
            ]
        );
    }

    #[test]
    fn diurnal_rejects_bad_parameters() {
        let day = SimDuration::from_millis(60_000);
        assert!(ArrivalProcess::diurnal(0.0, 0.5, day, 1).is_err());
        assert!(ArrivalProcess::diurnal(100.0, 0.0, day, 1).is_err());
        assert!(ArrivalProcess::diurnal(100.0, 1.5, day, 1).is_err());
        assert!(ArrivalProcess::diurnal(100.0, 0.5, SimDuration::ZERO, 1).is_err());
        assert!(ArrivalProcess::diurnal(f64::NAN, 0.5, day, 1).is_err());
    }

    #[test]
    fn flash_rejects_bad_parameters() {
        let s = SimDuration::from_millis(1_000);
        assert!(ArrivalProcess::flash(-1.0, 5.0, s, s, 1).is_err());
        assert!(ArrivalProcess::flash(100.0, 0.5, s, s, 1).is_err());
        assert!(ArrivalProcess::flash(100.0, 5.0, s, SimDuration::ZERO, 1).is_err());
        assert!(ArrivalProcess::flash(100.0, f64::INFINITY, s, s, 1).is_err());
    }

    #[test]
    fn diurnal_is_deterministic_per_seed_and_monotone() {
        let mk = || {
            ArrivalProcess::diurnal(200.0, 0.8, SimDuration::from_millis(10_000), 21)
                .unwrap()
                .take(500)
                .collect::<Vec<_>>()
        };
        let a = mk();
        assert_eq!(a, mk());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diurnal_peak_half_outpaces_trough_half() {
        // Trough at t=0, peak at period/2: the second quarter-cycle
        // around the peak must see far more arrivals than the first
        // quarter around the trough.
        let period = SimDuration::from_millis(100_000);
        let arrivals: Vec<_> = ArrivalProcess::diurnal(100.0, 0.9, period, 7)
            .unwrap()
            .take_while(|t| t.as_secs_f64() < 100.0)
            .collect();
        let trough = arrivals
            .iter()
            .filter(|t| t.as_secs_f64() < 12.5 || t.as_secs_f64() >= 87.5)
            .count();
        let peak = arrivals
            .iter()
            .filter(|t| (37.5..62.5).contains(&t.as_secs_f64()))
            .count();
        assert!(
            peak > trough * 3,
            "peak quarter {peak} vs trough quarter {trough}"
        );
    }

    #[test]
    fn flash_crowd_multiplies_the_rate_inside_its_window() {
        let arrivals: Vec<_> = ArrivalProcess::flash(
            100.0,
            5.0,
            SimDuration::from_millis(10_000),
            SimDuration::from_millis(10_000),
            13,
        )
        .unwrap()
        .take_while(|t| t.as_secs_f64() < 30.0)
        .collect();
        let pre = arrivals.iter().filter(|t| t.as_secs_f64() < 10.0).count();
        let during = arrivals
            .iter()
            .filter(|t| (10.0..20.0).contains(&t.as_secs_f64()))
            .count();
        let post = arrivals.iter().filter(|t| t.as_secs_f64() >= 20.0).count();
        let ratio = during as f64 / pre.max(1) as f64;
        assert!(
            (3.5..6.5).contains(&ratio),
            "crowd ratio {ratio} (pre {pre}, during {during})"
        );
        let post_ratio = during as f64 / post.max(1) as f64;
        assert!(post_ratio > 3.5, "rate must fall back after the crowd");
    }

    #[test]
    fn flash_is_deterministic_per_seed() {
        let mk = |seed| {
            ArrivalProcess::flash(
                50.0,
                4.0,
                SimDuration::from_millis(2_000),
                SimDuration::from_millis(1_000),
                seed,
            )
            .unwrap()
            .take(300)
            .collect::<Vec<_>>()
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn arrivals_are_monotone() {
        let a: Vec<_> = ArrivalProcess::poisson(1000.0, 3)
            .unwrap()
            .take(1000)
            .collect();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}
