//! Arrival processes generating request timestamps.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of arrival instants.
///
/// ```
/// use tt_sim::ArrivalProcess;
///
/// // 100 requests/second, seeded.
/// let arrivals: Vec<_> = ArrivalProcess::poisson(100.0, 7).unwrap().take(10).collect();
/// assert_eq!(arrivals.len(), 10);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    kind: Kind,
    now: SimTime,
}

#[derive(Debug, Clone)]
enum Kind {
    Poisson { rate_per_sec: f64, rng: StdRng },
    Deterministic { gap: SimDuration },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate_per_sec` requests per second
    /// (exponential inter-arrival times), seeded for determinism.
    ///
    /// # Errors
    ///
    /// Returns an error message if the rate is non-positive or
    /// non-finite.
    pub fn poisson(rate_per_sec: f64, seed: u64) -> Result<Self, String> {
        if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
            return Err(format!("invalid arrival rate: {rate_per_sec}"));
        }
        Ok(ArrivalProcess {
            kind: Kind::Poisson {
                rate_per_sec,
                rng: StdRng::seed_from_u64(seed),
            },
            now: SimTime::ZERO,
        })
    }

    /// Deterministic arrivals separated by `gap`.
    pub fn deterministic(gap: SimDuration) -> Self {
        ArrivalProcess {
            kind: Kind::Deterministic { gap },
            now: SimTime::ZERO,
        }
    }
}

impl Iterator for ArrivalProcess {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        let gap = match &mut self.kind {
            Kind::Poisson { rate_per_sec, rng } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                SimDuration::from_secs_f64(-u.ln() / *rate_per_sec)
            }
            Kind::Deterministic { gap } => *gap,
        };
        self.now += gap;
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rejects_bad_rate() {
        assert!(ArrivalProcess::poisson(0.0, 1).is_err());
        assert!(ArrivalProcess::poisson(-5.0, 1).is_err());
        assert!(ArrivalProcess::poisson(f64::NAN, 1).is_err());
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let n = 20_000;
        let last = ArrivalProcess::poisson(200.0, 42)
            .unwrap()
            .take(n)
            .last()
            .unwrap();
        let observed_rate = n as f64 / last.as_secs_f64();
        assert!(
            (observed_rate - 200.0).abs() / 200.0 < 0.05,
            "observed {observed_rate}"
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a: Vec<_> = ArrivalProcess::poisson(50.0, 9)
            .unwrap()
            .take(100)
            .collect();
        let b: Vec<_> = ArrivalProcess::poisson(50.0, 9)
            .unwrap()
            .take(100)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_spacing() {
        let gaps: Vec<_> = ArrivalProcess::deterministic(SimDuration::from_millis(10))
            .take(3)
            .collect();
        assert_eq!(
            gaps,
            vec![
                SimTime::from_micros(10_000),
                SimTime::from_micros(20_000),
                SimTime::from_micros(30_000)
            ]
        );
    }

    #[test]
    fn arrivals_are_monotone() {
        let a: Vec<_> = ArrivalProcess::poisson(1000.0, 3)
            .unwrap()
            .take(1000)
            .collect();
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}
