//! Deterministic discrete-event simulation kernel for the `toltiers`
//! workspace.
//!
//! The Tolerance Tiers paper evaluates routing policies on a production
//! serving cluster. This crate provides the machinery to reproduce that
//! environment deterministically:
//!
//! * [`time`] — virtual time newtypes ([`SimTime`], [`SimDuration`],
//!   microsecond resolution).
//! * [`engine`] — a generic event queue with stable FIFO ordering for
//!   simultaneous events.
//! * [`node`] — service nodes with `c` parallel slots and FIFO admission,
//!   including early release for cancelled work (the paper's early
//!   termination policy).
//! * [`fault`] — seeded per-pool fault injection (crashes, transient
//!   errors, stragglers) with deterministic, independent streams.
//! * [`arrivals`] — Poisson, deterministic, diurnal, and flash-crowd
//!   arrival processes.
//! * [`cost`] — IaaS (busy-time) and per-invocation API cost accounting.
//! * [`metrics`] — latency recording and summaries.
//!
//! # Examples
//!
//! ```
//! use tt_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO, "a");
//! assert_eq!(q.pop(), Some((SimTime::ZERO, "a")));
//! assert_eq!(q.pop().map(|(t, e)| (t.as_micros(), e)), Some((5_000, "b")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod time;

pub use arrivals::ArrivalProcess;
pub use cost::{CostLedger, InstanceType, Money};
pub use engine::EventQueue;
pub use fault::{
    FaultOutcome, FaultPlan, FaultRates, JobCompletion, NodeFault, NodeFaultEvent, NodeFaultScript,
    WireFaultOutcome, WireFaultPlan, WireFaultRates,
};
pub use metrics::LatencyRecorder;
pub use node::{JobTiming, ServiceNode};
pub use time::{SimDuration, SimTime};
