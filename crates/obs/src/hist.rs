//! Log-linear fixed-bucket histograms with O(1) record, bounded
//! memory, and associative merge.
//!
//! The bucket layout is the classic HdrHistogram shape: values below
//! `2^sub_bits` get one exact bucket each; above that, every power-of-
//! two octave is divided into `2^sub_bits` linear sub-buckets. A
//! bucket's width is therefore at most `1/2^sub_bits` of its lower
//! edge, so quantile estimates (reported at the bucket midpoint) carry
//! a relative error of at most [`BucketScheme::relative_error`] — with
//! the default scheme, under 1.6 %.
//!
//! Two flavours share the layout:
//!
//! * [`Histogram`] — plain counts, for single-writer recording
//!   (simulations, snapshots, merging).
//! * [`AtomicHistogram`] — lock-free shared recording from many
//!   threads; per-bucket `fetch_add` makes the totals *exact* (no
//!   sampling, no lost updates) and independent of thread
//!   interleaving, so two runs that record the same multiset of values
//!   produce bit-identical snapshots.
//!
//! Merging adds bucket counts, which is associative and commutative —
//! shard-local histograms can be folded in any order.

use std::sync::atomic::{AtomicU64, Ordering};

/// The bucket layout: `2^sub_bits` linear sub-buckets per octave,
/// values saturating at `2^max_bits - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BucketScheme {
    sub_bits: u32,
    max_bits: u32,
}

impl BucketScheme {
    /// The default layout: 64 sub-buckets per octave (≤ 1.6 % relative
    /// error) over values up to `2^40 - 1` — about 12.7 days when the
    /// unit is microseconds — in 2 240 buckets (≈ 18 KiB).
    pub const DEFAULT: BucketScheme = BucketScheme {
        sub_bits: 6,
        max_bits: 40,
    };

    /// A custom layout.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < sub_bits < max_bits <= 63`.
    pub fn new(sub_bits: u32, max_bits: u32) -> Self {
        assert!(sub_bits > 0, "need at least two sub-buckets per octave");
        assert!(
            sub_bits < max_bits && max_bits <= 63,
            "need sub_bits < max_bits <= 63"
        );
        BucketScheme { sub_bits, max_bits }
    }

    /// Largest recordable value; anything above saturates to it.
    pub fn max_value(&self) -> u64 {
        (1u64 << self.max_bits) - 1
    }

    /// Total number of buckets.
    pub fn buckets(&self) -> usize {
        ((self.max_bits - self.sub_bits + 1) as usize) << self.sub_bits
    }

    /// Worst-case relative error of a quantile estimate: the midpoint
    /// of a bucket is within `width/2 <= lower_edge / 2^(sub_bits+1)`
    /// of any value in the bucket; `1/2^sub_bits` is the conservative
    /// documented bound.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// Bucket index for `value` (saturating).
    fn index(&self, value: u64) -> usize {
        let v = value.min(self.max_value());
        let sub = 1u64 << self.sub_bits;
        if v < sub {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - self.sub_bits;
            ((shift as usize) << self.sub_bits) + (v >> shift) as usize
        }
    }

    /// `(lower_edge, width)` of bucket `i`.
    fn bounds(&self, i: usize) -> (u64, u64) {
        let sub = 1usize << self.sub_bits;
        if i < sub {
            (i as u64, 1)
        } else {
            let shift = (i >> self.sub_bits) as u32 - 1;
            let off = (i & (sub - 1)) as u64;
            (((sub as u64) + off) << shift, 1u64 << shift)
        }
    }

    /// Midpoint representative of bucket `i` (exact for the unit-width
    /// buckets below `2^sub_bits`).
    fn midpoint(&self, i: usize) -> u64 {
        let (lower, width) = self.bounds(i);
        lower + width / 2
    }
}

/// A plain (single-writer) log-linear histogram.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    scheme: BucketScheme,
    counts: Vec<u64>,
    count: u64,
    /// Sum of recorded (saturated) values — an exact integer total.
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(BucketScheme::DEFAULT)
    }
}

impl Histogram {
    /// An empty histogram with the given layout.
    pub fn new(scheme: BucketScheme) -> Self {
        Histogram {
            scheme,
            counts: vec![0; scheme.buckets()],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket layout.
    pub fn scheme(&self) -> BucketScheme {
        self.scheme
    }

    /// Record one value (O(1); values above the scheme cap saturate).
    pub fn record(&mut self, value: u64) {
        let v = value.min(self.scheme.max_value());
        self.counts[self.scheme.index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded (saturated) values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimate of the `q`-quantile (`q` in `[0, 1]`): the midpoint of
    /// the bucket holding the sample of rank `round(q · (n-1))`,
    /// clamped into the observed `[min, max]` range. Within
    /// [`BucketScheme::relative_error`] of the true sample quantile.
    ///
    /// Returns `None` when the histogram is empty or `q` is not a
    /// probability.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(self.scheme.midpoint(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram's counts into this one (associative and
    /// commutative).
    ///
    /// # Panics
    ///
    /// Panics if the schemes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.scheme, other.scheme,
            "cannot merge histograms with different bucket schemes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier`, where `earlier` is a
    /// previous snapshot of the *same* growing histogram (counts are
    /// monotone, so the difference is the exact histogram of the
    /// values recorded in between). Min/max of the delta are recovered
    /// from its non-empty bucket bounds, so they stay within one
    /// bucket width of the true extremes.
    ///
    /// # Panics
    ///
    /// Panics if the schemes differ or any bucket shrank.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        assert_eq!(
            self.scheme, earlier.scheme,
            "cannot diff histograms with different bucket schemes"
        );
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(now, before)| {
                now.checked_sub(*before)
                    .expect("histogram counts shrank between snapshots")
            })
            .collect();
        let mut delta = Histogram {
            scheme: self.scheme,
            counts,
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
            min: u64::MAX,
            max: 0,
        };
        if delta.count > 0 {
            let first = delta.counts.iter().position(|&c| c > 0).expect("count > 0");
            let last = delta
                .counts
                .iter()
                .rposition(|&c| c > 0)
                .expect("count > 0");
            let (lower, _) = delta.scheme.bounds(first);
            let (upper_lower, upper_width) = delta.scheme.bounds(last);
            delta.min = lower.max(self.min);
            delta.max = (upper_lower + upper_width - 1).min(self.max);
        }
        delta
    }

    /// Per-bucket `(lower_edge, width, count)` for the non-empty
    /// buckets, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lower, width) = self.scheme.bounds(i);
                (lower, width, c)
            })
    }
}

/// A lock-free multi-writer log-linear histogram.
#[derive(Debug)]
pub struct AtomicHistogram {
    scheme: BucketScheme,
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new(BucketScheme::DEFAULT)
    }
}

impl AtomicHistogram {
    /// An empty histogram with the given layout.
    pub fn new(scheme: BucketScheme) -> Self {
        AtomicHistogram {
            scheme,
            counts: (0..scheme.buckets()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket layout.
    pub fn scheme(&self) -> BucketScheme {
        self.scheme
    }

    /// Record one value. O(1), wait-free, and exact: concurrent
    /// writers never lose updates, and the final totals are
    /// independent of interleaving.
    pub fn record(&self, value: u64) {
        let v = value.min(self.scheme.max_value());
        self.counts[self.scheme.index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a plain [`Histogram`]. Quiescent state
    /// (no concurrent writers) snapshots exactly; under concurrency
    /// the copy is a valid histogram of a subset/superset of the
    /// in-flight updates.
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        Histogram {
            scheme: self.scheme,
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 7, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 71);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // Below 2^sub_bits every bucket is width one: quantiles exact.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(63));
    }

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let s = BucketScheme::new(3, 12); // 8 sub-buckets, tiny for scanning
        let mut last = 0usize;
        for v in 0..=s.max_value() {
            let i = s.index(v);
            assert!(i == last || i == last + 1, "index jumped at {v}");
            let (lower, width) = s.bounds(i);
            assert!(
                lower <= v && v < lower + width,
                "v={v} not in bucket {i} [{lower}, {})",
                lower + width
            );
            last = i;
        }
        assert_eq!(last, s.buckets() - 1);
    }

    #[test]
    fn quantile_respects_relative_error_bound() {
        let mut h = Histogram::default();
        let values: Vec<u64> = (0..10_000).map(|i| 1_000 + i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        let err = h.scheme().relative_error();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = (q * (values.len() - 1) as f64).round() as usize;
            let exact = values[rank] as f64;
            let est = h.quantile(q).unwrap() as f64;
            assert!(
                (est - exact).abs() <= exact * err + 1.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn oversized_values_saturate() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.max(), Some(h.scheme().max_value()));
        assert_eq!(h.sum(), h.scheme().max_value());
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [5u64, 500, 50_000] {
            a.record(v);
        }
        for v in [7u64, 700_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut all = Histogram::default();
        for v in [5u64, 500, 50_000, 7, 700_000] {
            all.record(v);
        }
        assert_eq!(merged, all);
    }

    #[test]
    #[should_panic(expected = "different bucket schemes")]
    fn merge_rejects_mismatched_schemes() {
        let mut a = Histogram::new(BucketScheme::new(3, 12));
        a.merge(&Histogram::default());
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let atomic = AtomicHistogram::default();
        let mut plain = Histogram::default();
        for v in [1u64, 99, 12_345, 1 << 35] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(1.5), None);
    }
}
