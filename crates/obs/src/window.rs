//! Windowed telemetry store — the capacity planner's input contract.
//!
//! A [`WindowStore`] accumulates per-tier arrival/admission/cache
//! counts and per-version service-time histograms into an *open*
//! window, seals that window on a caller-injected heartbeat
//! ([`WindowStore::tick`]), and retains sealed windows in a bounded
//! ring. Sealed windows are immutable. The store additionally keeps a
//! *cumulative* accumulator — the fold of every window since boot,
//! open one included — which is the deterministic artifact: window
//! *boundaries* depend on wall-clock heartbeat timing, but the
//! cumulative fold equals the plain multiset total of everything
//! recorded, so it is bit-identical across thread counts, node
//! partitions, and heartbeat jitter.
//!
//! Determinism rules, inherited from the rest of the crate:
//!
//! * no clock reads — `tick` receives its timestamp from the caller;
//! * integer accumulation only (counts and histogram bucket sums);
//! * tier keys live in a [`BTreeMap`], so iteration (and therefore
//!   any rendering or merge) walks keys in one canonical order;
//! * [`WindowAccum::merge`] is commutative and associative, so a
//!   fleet-level fold over per-node accumulators does not depend on
//!   node order.

use crate::hist::{BucketScheme, Histogram};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Per-tier counts inside one window. All fields are monotonic counts
/// of *events*, so merging two windows is field-wise addition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TierWindow {
    /// Requests that arrived for this tier (pre-admission).
    pub arrivals: u64,
    /// Requests admitted at full quality.
    pub admitted: u64,
    /// Requests rejected with a retryable 429.
    pub rejected: u64,
    /// Requests shed/dropped after admission (faults, overload).
    pub shed: u64,
    /// Requests served in a brownout (degraded) plan.
    pub browned_out: u64,
    /// Result-cache hits (exact + semantic) attributed to this tier.
    pub cache_hits: u64,
    /// Result-cache misses attributed to this tier.
    pub cache_misses: u64,
}

impl TierWindow {
    fn absorb(&mut self, other: &TierWindow) {
        self.arrivals += other.arrivals;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.browned_out += other.browned_out;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    fn is_empty(&self) -> bool {
        self.arrivals == 0
            && self.admitted == 0
            && self.rejected == 0
            && self.shed == 0
            && self.browned_out == 0
            && self.cache_hits == 0
            && self.cache_misses == 0
    }
}

/// One window's (or the cumulative fold's) full payload: per-tier
/// counts plus per-version service-time histograms. Both maps are
/// ordered, so rendering walks a canonical key order.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowAccum {
    /// Counts keyed by tier key (`"{objective}/{tolerance:.3}"`).
    pub tiers: BTreeMap<String, TierWindow>,
    /// Service-time histograms keyed by the answering model version.
    pub versions: BTreeMap<usize, Histogram>,
}

impl WindowAccum {
    /// Fold `other` into `self`. Field-wise integer addition per tier
    /// and histogram bucket addition per version — commutative and
    /// associative, so fleet-level folds are order-independent.
    ///
    /// # Panics
    ///
    /// Panics if the same version's histograms use different bucket
    /// schemes (propagated from [`Histogram::merge`]).
    pub fn merge(&mut self, other: &WindowAccum) {
        for (key, tier) in &other.tiers {
            self.tiers.entry(key.clone()).or_default().absorb(tier);
        }
        for (version, hist) in &other.versions {
            match self.versions.get_mut(version) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.versions.insert(*version, hist.clone());
                }
            }
        }
    }

    /// Total arrivals across every tier in this accumulator.
    pub fn total_arrivals(&self) -> u64 {
        self.tiers.values().map(|t| t.arrivals).sum()
    }

    /// True when nothing has been recorded: every tier count is zero
    /// and every version histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.tiers.values().all(TierWindow::is_empty)
            && self.versions.values().all(|h| h.count() == 0)
    }
}

/// An immutable sealed window: its ordinal, its wall-clock bounds (as
/// injected by the sealing heartbeat), and its payload.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SealedWindow {
    /// Zero-based ordinal of this window since boot.
    pub index: u64,
    /// Heartbeat timestamp (µs since service start) that opened it.
    pub start_us: u64,
    /// Heartbeat timestamp (µs since service start) that sealed it.
    pub end_us: u64,
    /// The window's counts and histograms.
    pub accum: WindowAccum,
}

#[derive(Debug)]
struct StoreInner {
    open: WindowAccum,
    open_start_us: u64,
    next_index: u64,
    sealed: VecDeque<SealedWindow>,
    cumulative: WindowAccum,
    dropped_windows: u64,
}

/// Bounded ring of fixed-duration telemetry windows plus the
/// cumulative fold of everything recorded since boot.
///
/// Thread-safe via one short-critical-section mutex: every record is
/// a handful of integer additions under the lock. The store never
/// reads a clock; sealing happens only inside [`WindowStore::tick`],
/// driven by the serving engines' idle heartbeat.
#[derive(Debug)]
pub struct WindowStore {
    window_us: u64,
    capacity: usize,
    scheme: BucketScheme,
    inner: Mutex<StoreInner>,
}

impl WindowStore {
    /// A store sealing windows every `window_us` microseconds and
    /// retaining at most `capacity` sealed windows (oldest evicted,
    /// counted in [`WindowStore::dropped_windows`]).
    pub fn new(window_us: u64, capacity: usize) -> Self {
        Self::with_scheme(window_us, capacity, BucketScheme::DEFAULT)
    }

    /// Like [`WindowStore::new`] with an explicit histogram scheme for
    /// the per-version service-time histograms.
    pub fn with_scheme(window_us: u64, capacity: usize, scheme: BucketScheme) -> Self {
        assert!(window_us > 0, "window duration must be positive");
        assert!(capacity > 0, "must retain at least one sealed window");
        Self {
            window_us,
            capacity,
            scheme,
            inner: Mutex::new(StoreInner {
                open: WindowAccum::default(),
                open_start_us: 0,
                next_index: 0,
                sealed: VecDeque::new(),
                cumulative: WindowAccum::default(),
                dropped_windows: 0,
            }),
        }
    }

    /// The configured window duration in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The maximum number of sealed windows the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count a request arriving for `tier` (pre-admission).
    pub fn record_arrival(&self, tier: &str) {
        self.record_tier(tier, |t| t.arrivals += 1);
    }

    /// Count an admission-controller outcome for `tier`.
    pub fn record_admission(&self, tier: &str, outcome: AdmissionOutcome) {
        self.record_tier(tier, |t| match outcome {
            AdmissionOutcome::Admitted => t.admitted += 1,
            AdmissionOutcome::BrownedOut => t.browned_out += 1,
            AdmissionOutcome::Rejected => t.rejected += 1,
            AdmissionOutcome::Shed => t.shed += 1,
        });
    }

    /// Count a result-cache consult for `tier`.
    pub fn record_cache(&self, tier: &str, hit: bool) {
        self.record_tier(tier, |t| {
            if hit {
                t.cache_hits += 1;
            } else {
                t.cache_misses += 1;
            }
        });
    }

    /// Record one served request's accounted (simulated) service time
    /// against the answering model version.
    pub fn record_service(&self, version: usize, sim_latency_us: u64) {
        let scheme = self.scheme;
        let mut inner = self.inner.lock().expect("window store poisoned");
        inner
            .open
            .versions
            .entry(version)
            .or_insert_with(|| Histogram::new(scheme))
            .record(sim_latency_us);
        inner
            .cumulative
            .versions
            .entry(version)
            .or_insert_with(|| Histogram::new(scheme))
            .record(sim_latency_us);
    }

    fn record_tier(&self, tier: &str, mutate: impl Fn(&mut TierWindow)) {
        let mut inner = self.inner.lock().expect("window store poisoned");
        mutate(inner.open.tiers.entry(tier.to_string()).or_default());
        mutate(inner.cumulative.tiers.entry(tier.to_string()).or_default());
    }

    /// Heartbeat: seal the open window if it has run for at least the
    /// configured duration (and is non-empty, or a sealed window
    /// already exists — empty leading windows before first traffic are
    /// not minted). Returns the sealed window's index when a seal
    /// happened.
    ///
    /// `now_us` is microseconds since service start, injected by the
    /// caller — the store itself never reads a clock.
    pub fn tick(&self, now_us: u64) -> Option<u64> {
        let mut inner = self.inner.lock().expect("window store poisoned");
        if now_us.saturating_sub(inner.open_start_us) < self.window_us {
            return None;
        }
        if inner.open.is_empty() && inner.sealed.is_empty() {
            // Nothing has ever happened: slide the open window forward
            // instead of minting empty leading windows.
            inner.open_start_us = now_us;
            return None;
        }
        let index = inner.next_index;
        inner.next_index += 1;
        let accum = std::mem::take(&mut inner.open);
        let start_us = inner.open_start_us;
        inner.open_start_us = now_us;
        inner.sealed.push_back(SealedWindow {
            index,
            start_us,
            end_us: now_us,
            accum,
        });
        while inner.sealed.len() > self.capacity {
            inner.sealed.pop_front();
            inner.dropped_windows += 1;
        }
        Some(index)
    }

    /// The most recent `limit` sealed windows, oldest first.
    pub fn sealed(&self, limit: usize) -> Vec<SealedWindow> {
        let inner = self.inner.lock().expect("window store poisoned");
        let skip = inner.sealed.len().saturating_sub(limit);
        inner.sealed.iter().skip(skip).cloned().collect()
    }

    /// How many windows have been sealed since boot (including any
    /// since evicted from the ring).
    pub fn sealed_count(&self) -> u64 {
        self.inner.lock().expect("window store poisoned").next_index
    }

    /// Sealed windows evicted from the bounded ring.
    pub fn dropped_windows(&self) -> u64 {
        self.inner
            .lock()
            .expect("window store poisoned")
            .dropped_windows
    }

    /// The cumulative fold of everything recorded since boot — sealed
    /// windows *and* the open one. This is the deterministic planner
    /// contract: independent of heartbeat timing, thread interleaving,
    /// and window boundaries.
    pub fn cumulative(&self) -> WindowAccum {
        self.inner
            .lock()
            .expect("window store poisoned")
            .cumulative
            .clone()
    }
}

/// What the admission controller decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted at full quality.
    Admitted,
    /// Served, but on a degraded (brownout) plan.
    BrownedOut,
    /// Rejected with a retryable 429.
    Rejected,
    /// Dropped after admission (fault path, overload shed).
    Shed,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> WindowStore {
        WindowStore::new(1_000, 4)
    }

    #[test]
    fn cumulative_equals_multiset_total_regardless_of_sealing() {
        let a = store();
        let b = store();
        // Same events, different heartbeat cadence.
        for i in 0..100u64 {
            for s in [&a, &b] {
                s.record_arrival("cost/0.050");
                s.record_admission("cost/0.050", AdmissionOutcome::Admitted);
                s.record_service(2, 1_000 + i * 17);
            }
            if i % 10 == 0 {
                a.tick(i * 200);
            }
            if i % 3 == 0 {
                b.tick(i * 900);
            }
        }
        assert_ne!(a.sealed_count(), 0);
        assert_eq!(a.cumulative(), b.cumulative());
        assert_eq!(a.cumulative().total_arrivals(), 100);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mk = |versions: &[(usize, u64)], tier: &str, n: u64| {
            let s = store();
            for _ in 0..n {
                s.record_arrival(tier);
            }
            for &(v, us) in versions {
                s.record_service(v, us);
            }
            s.cumulative()
        };
        let x = mk(&[(0, 500), (1, 900)], "cost/0.010", 3);
        let y = mk(&[(1, 1_200)], "cost/0.050", 5);
        let z = mk(&[(2, 80)], "cost/0.010", 2);

        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy, yx);

        let mut xy_z = xy.clone();
        xy_z.merge(&z);
        let mut yz = y.clone();
        yz.merge(&z);
        let mut x_yz = x.clone();
        x_yz.merge(&yz);
        assert_eq!(xy_z, x_yz);
        assert_eq!(xy_z.total_arrivals(), 10);
    }

    #[test]
    fn sealing_respects_duration_and_ring_capacity() {
        let s = WindowStore::new(1_000, 2);
        // Empty store: heartbeats slide the window, mint nothing.
        assert_eq!(s.tick(5_000), None);
        assert_eq!(s.sealed_count(), 0);

        s.record_arrival("cost/0.000");
        assert_eq!(s.tick(5_500), None, "window not yet elapsed");
        assert_eq!(s.tick(6_100), Some(0));
        // Subsequent windows seal even when empty (trailing gaps are
        // real observations once traffic has started).
        assert_eq!(s.tick(7_200), Some(1));
        assert_eq!(s.tick(8_300), Some(2));
        assert_eq!(s.tick(9_400), Some(3));
        assert_eq!(s.sealed_count(), 4);
        assert_eq!(s.dropped_windows(), 2);

        let sealed = s.sealed(10);
        assert_eq!(sealed.len(), 2, "ring capacity bounds retention");
        assert_eq!(sealed[0].index, 2);
        assert_eq!(sealed[1].index, 3);
        assert!(sealed[0].start_us < sealed[0].end_us);
    }

    #[test]
    fn sealed_windows_partition_the_cumulative_fold() {
        let s = WindowStore::new(100, 16);
        for i in 0..60u64 {
            s.record_arrival("response-time/0.010");
            s.record_service(i as usize % 3, 700 + i);
            if i % 25 == 24 {
                s.tick((i + 1) * 50);
            }
        }
        let mut folded = WindowAccum::default();
        for w in s.sealed(16) {
            folded.merge(&w.accum);
        }
        // Fold the still-open remainder in via a sealing heartbeat.
        s.tick(u64::MAX);
        let mut complete = WindowAccum::default();
        for w in s.sealed(16) {
            complete.merge(&w.accum);
        }
        assert_ne!(folded, complete, "open window held the remainder");
        assert_eq!(complete, s.cumulative());
    }

    #[test]
    fn admission_and_cache_counts_land_on_their_tier() {
        let s = store();
        s.record_admission("cost/0.050", AdmissionOutcome::Rejected);
        s.record_admission("cost/0.050", AdmissionOutcome::BrownedOut);
        s.record_admission("cost/0.100", AdmissionOutcome::Shed);
        s.record_cache("cost/0.050", true);
        s.record_cache("cost/0.050", false);
        let cum = s.cumulative();
        let t = &cum.tiers["cost/0.050"];
        assert_eq!(
            (t.rejected, t.browned_out, t.cache_hits, t.cache_misses),
            (1, 1, 1, 1)
        );
        assert_eq!(cum.tiers["cost/0.100"].shed, 1);
    }
}
