//! A sharded, bounded metrics registry.
//!
//! Lookups take a shard lock keyed by the metric name's hash; the
//! returned handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are
//! `Arc`s whose hot-path operations are plain atomics — callers
//! resolve a handle once at wiring time and record lock-free
//! thereafter.
//!
//! The registry enforces a global series cap. Registration beyond the
//! cap returns a shared *overflow* metric (one per kind) and bumps a
//! drop counter, so a label-cardinality bug degrades metrics fidelity
//! instead of memory — the same stance the bounded trace and latency
//! recorders take.

use crate::hist::{AtomicHistogram, BucketScheme, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared handle to a registered histogram.
pub type HistogramHandle = Arc<AtomicHistogram>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(HistogramHandle),
}

/// A deterministic snapshot of every registered series, sorted by
/// name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Registrations refused because the series cap was hit.
    pub dropped_series: u64,
}

/// The sharded registry.
pub struct MetricsRegistry {
    shards: [Mutex<BTreeMap<String, Metric>>; SHARDS],
    scheme: BucketScheme,
    max_series: usize,
    series: AtomicU64,
    dropped: Arc<Counter>,
    overflow_counter: Arc<Counter>,
    overflow_gauge: Arc<Gauge>,
    overflow_histogram: HistogramHandle,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(1024, BucketScheme::DEFAULT)
    }
}

impl MetricsRegistry {
    /// A registry holding at most `max_series` named series, with
    /// `scheme` as the layout for every histogram it vends.
    pub fn new(max_series: usize, scheme: BucketScheme) -> Self {
        MetricsRegistry {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            scheme,
            max_series,
            series: AtomicU64::new(0),
            dropped: Arc::new(Counter::default()),
            overflow_counter: Arc::new(Counter::default()),
            overflow_gauge: Arc::new(Gauge::default()),
            overflow_histogram: Arc::new(AtomicHistogram::new(scheme)),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<BTreeMap<String, Metric>> {
        &self.shards[(fnv1a(name) as usize) % SHARDS]
    }

    fn admit(&self) -> bool {
        // Optimistically claim a slot; release it if over the cap.
        let claimed = self.series.fetch_add(1, Ordering::Relaxed);
        if claimed as usize >= self.max_series {
            self.series.fetch_sub(1, Ordering::Relaxed);
            self.dropped.inc();
            false
        } else {
            true
        }
    }

    /// Get or register the counter `name`. Returns the shared
    /// overflow counter when the series cap is exhausted.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        if let Some(Metric::Counter(c)) = shard.get(name) {
            return Arc::clone(c);
        }
        if shard.contains_key(name) {
            // Name registered as a different kind: treat as overflow
            // rather than silently shadowing.
            self.dropped.inc();
            return Arc::clone(&self.overflow_counter);
        }
        if !self.admit() {
            return Arc::clone(&self.overflow_counter);
        }
        let c = Arc::new(Counter::default());
        shard.insert(name.to_string(), Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Get or register the gauge `name`. Returns the shared overflow
    /// gauge when the series cap is exhausted.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        if let Some(Metric::Gauge(g)) = shard.get(name) {
            return Arc::clone(g);
        }
        if shard.contains_key(name) {
            self.dropped.inc();
            return Arc::clone(&self.overflow_gauge);
        }
        if !self.admit() {
            return Arc::clone(&self.overflow_gauge);
        }
        let g = Arc::new(Gauge::default());
        shard.insert(name.to_string(), Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Get or register the histogram `name`. Returns the shared
    /// overflow histogram when the series cap is exhausted.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        if let Some(Metric::Histogram(h)) = shard.get(name) {
            return Arc::clone(h);
        }
        if shard.contains_key(name) {
            self.dropped.inc();
            return Arc::clone(&self.overflow_histogram);
        }
        if !self.admit() {
            return Arc::clone(&self.overflow_histogram);
        }
        let h = Arc::new(AtomicHistogram::new(self.scheme));
        shard.insert(name.to_string(), Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Number of live named series.
    pub fn series_count(&self) -> usize {
        self.series.load(Ordering::Relaxed) as usize
    }

    /// Registrations refused (cap hit or kind mismatch) so far.
    pub fn dropped_series(&self) -> u64 {
        self.dropped.get()
    }

    /// A name-sorted snapshot of every series. Deterministic for a
    /// quiescent registry regardless of registration or shard order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            dropped_series: self.dropped.get(),
            ..MetricsSnapshot::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard poisoned");
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Metric::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.get());
                    }
                    Metric::Histogram(h) => {
                        snap.histograms.insert(name.clone(), h.snapshot());
                    }
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("series", &self.series_count())
            .field("max_series", &self.max_series)
            .field("dropped", &self.dropped.get())
            .finish()
    }
}

/// FNV-1a — the same tiny stable hash the payload hasher uses, so
/// shard assignment is identical across platforms and runs.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.series_count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::default();
        reg.counter("b_counter").add(5);
        reg.gauge("a_gauge").set(-7);
        reg.histogram("c_hist").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("b_counter"), Some(&5));
        assert_eq!(snap.gauges.get("a_gauge"), Some(&-7));
        assert_eq!(snap.histograms["c_hist"].count(), 1);
        assert_eq!(snap.dropped_series, 0);
    }

    #[test]
    fn series_cap_degrades_to_overflow_metrics() {
        let reg = MetricsRegistry::new(2, BucketScheme::DEFAULT);
        let a = reg.counter("a");
        let b = reg.counter("b");
        let c = reg.counter("c"); // over cap -> overflow handle
        let d = reg.counter("d"); // same overflow handle
        c.inc();
        d.inc();
        assert_eq!(a.get() + b.get(), 0);
        assert_eq!(c.get(), 2, "overflow counters share one cell");
        assert_eq!(reg.series_count(), 2);
        assert_eq!(reg.dropped_series(), 2);
        // Existing names still resolve to their real metric.
        assert!(Arc::ptr_eq(&a, &reg.counter("a")));
    }

    #[test]
    fn kind_mismatch_is_not_shadowed() {
        let reg = MetricsRegistry::default();
        reg.counter("latency");
        let g = reg.gauge("latency");
        g.set(9);
        assert_eq!(reg.snapshot().counters["latency"], 0);
        assert_eq!(reg.dropped_series(), 1);
    }
}
