//! Control-plane event log — a bounded, seq-stamped ring of structured
//! events recording *why* the system changed state: epoch publishes,
//! node fence/unfence, supervisor transitions, AIMD limit changes,
//! cache purges, drain acknowledgements.
//!
//! Tests and operators consume it via `GET /events?since=seq` instead
//! of grepping stdout: `since` plus the monotonic sequence number give
//! a cheap cursor (poll, remember the last seq you saw, ask for
//! everything after it). The ring is bounded; evictions are counted,
//! never silent.
//!
//! Like every tt-obs primitive the log never reads a clock — the
//! caller injects the timestamp, so replayed or simulated control
//! planes produce byte-identical logs.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One control-plane event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Event {
    /// Monotonic sequence number, starting at 1, never reused.
    pub seq: u64,
    /// Caller-injected timestamp (µs since service start).
    pub at_us: u64,
    /// Machine-matchable kind, e.g. `"epoch_publish"`, `"node_fence"`.
    pub kind: &'static str,
    /// Human-readable detail, e.g. `"node-2 stale epoch 3 < 4"`.
    pub detail: String,
}

#[derive(Debug)]
struct LogInner {
    next_seq: u64,
    ring: VecDeque<Event>,
    dropped: u64,
}

/// Bounded ring of [`Event`]s with a monotonic sequence cursor.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<LogInner>,
}

impl EventLog {
    /// A log retaining at most `capacity` events (oldest evicted,
    /// counted in [`EventLog::dropped`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(LogInner {
                next_seq: 1,
                ring: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Append an event; returns its sequence number.
    pub fn record(&self, at_us: u64, kind: &'static str, detail: impl Into<String>) -> u64 {
        let mut inner = self.inner.lock().expect("event log poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ring.push_back(Event {
            seq,
            at_us,
            kind,
            detail: detail.into(),
        });
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        seq
    }

    /// Every retained event with `seq > since`, oldest first. Pass
    /// `since = 0` for everything retained.
    pub fn since(&self, since: u64) -> Vec<Event> {
        let inner = self.inner.lock().expect("event log poisoned");
        inner
            .ring
            .iter()
            .filter(|e| e.seq > since)
            .cloned()
            .collect()
    }

    /// Sequence number of the newest event, 0 when none recorded.
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().expect("event log poisoned").next_seq - 1
    }

    /// Events evicted from the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event log poisoned").dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_monotonic_and_cursor_resumes() {
        let log = EventLog::new(16);
        assert_eq!(log.last_seq(), 0);
        assert!(log.since(0).is_empty());
        let a = log.record(10, "epoch_publish", "epoch 1");
        let b = log.record(20, "node_fence", "node-2 stale");
        assert_eq!((a, b), (1, 2));
        assert_eq!(log.last_seq(), 2);

        let all = log.since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].kind, "epoch_publish");

        // Cursor: remember last seq, ask for everything after.
        let c = log.record(30, "node_unfence", "node-2 healed");
        let tail = log.since(b);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, c);
        assert_eq!(tail[0].detail, "node-2 healed");
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let log = EventLog::new(3);
        for i in 0..10u64 {
            log.record(i, "aimd_limit", format!("limit {i}"));
        }
        let retained = log.since(0);
        assert_eq!(retained.len(), 3);
        // Oldest retained is seq 8 — seqs never reset on eviction.
        assert_eq!(retained[0].seq, 8);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.last_seq(), 10);
        // A cursor past the tail returns nothing.
        assert!(log.since(10).is_empty());
    }
}
