//! The SLO sentinel: a background evaluator that folds live per-tier
//! telemetry against each tier's *advertised* guarantee over sliding
//! windows.
//!
//! The paper's contract is per-tier: "this tier degrades accuracy at
//! most ε versus the premium tier". The sentinel makes that contract
//! observable at runtime. Each tier registers an [`SloTarget`]
//! (tolerance ε plus a latency bound at a chosen quantile, both taken
//! from the routing-rule generator's predictions) and an associated
//! [`TierTelemetry`] sink that the serving hot path feeds. On every
//! [`SloSentinel::tick`] whose timestamp closes the current window,
//! the sentinel diffs telemetry snapshots, evaluates the window's
//! delta, and publishes one [`SloVerdict`] per tier.
//!
//! Determinism notes: quality sums are accumulated as *fixed-point
//! integer nano-units* (`err × 1e9`), so the total is independent of
//! thread interleaving — summing `f64`s in completion order would
//! wobble by an ulp between runs. Latency enters a mergeable
//! [`AtomicHistogram`], exact in counts for the same reason.

use crate::hist::{AtomicHistogram, BucketScheme, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed-point scale for quality-error sums: 1e9 units per 1.0 error.
const ERR_NANOS: f64 = 1e9;

/// Cap for reported degradation when the baseline error is zero (the
/// true ratio is unbounded; `/metrics` must stay finite for the JSON
/// emitter).
const DEGRADATION_CAP: f64 = 1e6;

/// One tier's advertised guarantee, as the sentinel checks it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SloTarget {
    /// Stable tier key, e.g. `"cost/0.050"`.
    pub key: String,
    /// Advertised tolerance ε: mean relative quality degradation vs.
    /// the baseline must not exceed this.
    pub max_degradation: f64,
    /// Quantile at which latency is checked (e.g. 0.99).
    pub latency_quantile: f64,
    /// Latency bound in microseconds at that quantile.
    pub max_latency_us: u64,
    /// Minimum window requests before a verdict is rendered; below
    /// this the tier stays in contract with an "insufficient traffic"
    /// reason.
    pub min_requests: u64,
}

/// Live telemetry for one tier. The hot path calls
/// [`TierTelemetry::record`]; the sentinel snapshots and diffs.
#[derive(Debug)]
pub struct TierTelemetry {
    requests: AtomicU64,
    degraded: AtomicU64,
    /// Σ quality_err in fixed-point nanos (order-independent).
    err_nanos: AtomicU64,
    /// Σ baseline quality_err in fixed-point nanos.
    baseline_err_nanos: AtomicU64,
    latency: AtomicHistogram,
}

impl TierTelemetry {
    /// Fresh telemetry with the given histogram layout.
    pub fn new(scheme: BucketScheme) -> Self {
        TierTelemetry {
            requests: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            err_nanos: AtomicU64::new(0),
            baseline_err_nanos: AtomicU64::new(0),
            latency: AtomicHistogram::new(scheme),
        }
    }

    /// Record one served request: its (simulated) latency, its quality
    /// error, the baseline (premium-tier) error on the same payload,
    /// and whether resilience degraded it to a cheaper version.
    pub fn record(&self, latency_us: u64, quality_err: f64, baseline_err: f64, degraded: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let err = (quality_err.max(0.0) * ERR_NANOS).round() as u64;
        let base = (baseline_err.max(0.0) * ERR_NANOS).round() as u64;
        self.err_nanos.fetch_add(err, Ordering::Relaxed);
        self.baseline_err_nanos.fetch_add(base, Ordering::Relaxed);
        self.latency.record(latency_us);
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests served by a degraded (cheaper-than-planned) version.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The lifetime latency histogram.
    pub fn latency(&self) -> &AtomicHistogram {
        &self.latency
    }

    /// Lifetime mean quality error; `None` before any traffic.
    pub fn mean_err(&self) -> Option<f64> {
        let n = self.requests();
        (n > 0).then(|| self.err_nanos.load(Ordering::Relaxed) as f64 / ERR_NANOS / n as f64)
    }

    fn snap(&self) -> TelemetrySnap {
        TelemetrySnap {
            requests: self.requests.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            err_nanos: self.err_nanos.load(Ordering::Relaxed),
            baseline_err_nanos: self.baseline_err_nanos.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

#[derive(Debug, Clone)]
struct TelemetrySnap {
    requests: u64,
    degraded: u64,
    err_nanos: u64,
    baseline_err_nanos: u64,
    latency: Histogram,
}

impl TelemetrySnap {
    fn empty(scheme: BucketScheme) -> Self {
        TelemetrySnap {
            requests: 0,
            degraded: 0,
            err_nanos: 0,
            baseline_err_nanos: 0,
            latency: Histogram::new(scheme),
        }
    }
}

/// The sentinel's published judgment for one tier over the last
/// closed window.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SloVerdict {
    /// Tier key (matches [`SloTarget::key`]).
    pub key: String,
    /// Whether the tier honored its guarantee in the window.
    pub in_contract: bool,
    /// Human-readable reason (always set; "within guarantee" when
    /// passing).
    pub reason: String,
    /// Requests observed in the window.
    pub window_requests: u64,
    /// Degraded requests observed in the window.
    pub window_degraded: u64,
    /// Observed mean degradation vs. baseline (capped to stay
    /// finite).
    pub observed_degradation: f64,
    /// Observed latency at the target quantile, microseconds (0 when
    /// the window saw no traffic).
    pub latency_us_at_quantile: u64,
    /// Whether at least one full window has been evaluated.
    pub evaluated: bool,
}

impl SloVerdict {
    fn awaiting(key: &str) -> Self {
        SloVerdict {
            key: key.to_string(),
            in_contract: true,
            reason: "awaiting first window".to_string(),
            window_requests: 0,
            window_degraded: 0,
            observed_degradation: 0.0,
            latency_us_at_quantile: 0,
            evaluated: false,
        }
    }
}

struct SentinelState {
    window_started_us: u64,
    prior: Vec<TelemetrySnap>,
    verdicts: Vec<SloVerdict>,
    windows_evaluated: u64,
}

/// Background evaluator folding live telemetry against advertised
/// guarantees over sliding windows.
pub struct SloSentinel {
    window_us: u64,
    tiers: Vec<(SloTarget, Arc<TierTelemetry>)>,
    state: Mutex<SentinelState>,
}

impl SloSentinel {
    /// A sentinel evaluating every `window_us` microseconds of
    /// caller-injected time.
    pub fn new(window_us: u64, tiers: Vec<(SloTarget, Arc<TierTelemetry>)>) -> Self {
        let verdicts = tiers
            .iter()
            .map(|(t, _)| SloVerdict::awaiting(&t.key))
            .collect();
        let prior = tiers
            .iter()
            .map(|(_, tel)| TelemetrySnap::empty(tel.latency().scheme()))
            .collect();
        SloSentinel {
            window_us: window_us.max(1),
            tiers,
            state: Mutex::new(SentinelState {
                window_started_us: 0,
                prior,
                verdicts,
                windows_evaluated: 0,
            }),
        }
    }

    /// Window length in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The tier targets being watched.
    pub fn targets(&self) -> impl Iterator<Item = &SloTarget> {
        self.tiers.iter().map(|(t, _)| t)
    }

    /// Advance the sentinel's clock. If `now_us` closes the current
    /// window, evaluate it and publish fresh verdicts; otherwise a
    /// no-op. Returns `true` when a window was evaluated.
    pub fn tick(&self, now_us: u64) -> bool {
        let mut state = self.state.lock().expect("sentinel poisoned");
        if now_us.saturating_sub(state.window_started_us) < self.window_us {
            return false;
        }
        self.evaluate(&mut state, now_us);
        true
    }

    /// Restart the window origin at `now_us`: snapshot the telemetry
    /// as the new baseline *without* publishing verdicts. Used when a
    /// sentinel is wired over [`TierTelemetry`] sinks that already
    /// carry history (a routing-rules hot-swap reuses the sinks so
    /// `/metrics` lifetime series stay continuous) — without the
    /// rebase, the first window would judge the entire backlog.
    pub fn rebase(&self, now_us: u64) {
        let mut state = self.state.lock().expect("sentinel poisoned");
        state.prior = self.tiers.iter().map(|(_, tel)| tel.snap()).collect();
        state.window_started_us = now_us;
    }

    /// Close the current window immediately regardless of elapsed
    /// time (tests, drain paths).
    pub fn force_tick(&self, now_us: u64) {
        let mut state = self.state.lock().expect("sentinel poisoned");
        self.evaluate(&mut state, now_us);
    }

    fn evaluate(&self, state: &mut SentinelState, now_us: u64) {
        let mut verdicts = Vec::with_capacity(self.tiers.len());
        let mut next_prior = Vec::with_capacity(self.tiers.len());
        for (i, (target, telemetry)) in self.tiers.iter().enumerate() {
            let snap = telemetry.snap();
            let verdict = judge(target, &state.prior[i], &snap);
            verdicts.push(verdict);
            next_prior.push(snap);
        }
        state.prior = next_prior;
        state.verdicts = verdicts;
        state.window_started_us = now_us;
        state.windows_evaluated += 1;
    }

    /// Latest published verdicts, one per tier in registration order.
    pub fn verdicts(&self) -> Vec<SloVerdict> {
        self.state
            .lock()
            .expect("sentinel poisoned")
            .verdicts
            .clone()
    }

    /// Tier keys currently out of contract.
    pub fn violations(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("sentinel poisoned")
            .verdicts
            .iter()
            .filter(|v| !v.in_contract)
            .map(|v| v.key.clone())
            .collect()
    }

    /// Number of windows evaluated so far.
    pub fn windows_evaluated(&self) -> u64 {
        self.state
            .lock()
            .expect("sentinel poisoned")
            .windows_evaluated
    }
}

impl std::fmt::Debug for SloSentinel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloSentinel")
            .field("window_us", &self.window_us)
            .field("tiers", &self.tiers.len())
            .field("windows_evaluated", &self.windows_evaluated())
            .finish()
    }
}

/// Judge one tier's window delta against its target.
fn judge(target: &SloTarget, prior: &TelemetrySnap, current: &TelemetrySnap) -> SloVerdict {
    let requests = current.requests - prior.requests;
    let degraded = current.degraded - prior.degraded;
    // Histogram counts only grow, so the window is the bucket-wise
    // difference of snapshots (merge's inverse).
    let delta_latency = current.latency.delta_since(&prior.latency);
    let latency_at_q = delta_latency.quantile(target.latency_quantile).unwrap_or(0);

    if requests < target.min_requests {
        return SloVerdict {
            key: target.key.clone(),
            in_contract: true,
            reason: format!(
                "insufficient traffic ({requests} < {} requests)",
                target.min_requests
            ),
            window_requests: requests,
            window_degraded: degraded,
            observed_degradation: 0.0,
            latency_us_at_quantile: latency_at_q,
            evaluated: true,
        };
    }

    let err = (current.err_nanos - prior.err_nanos) as f64 / ERR_NANOS / requests as f64;
    let base = (current.baseline_err_nanos - prior.baseline_err_nanos) as f64
        / ERR_NANOS
        / requests as f64;
    let degradation = if base > 0.0 {
        ((err - base) / base).clamp(0.0, DEGRADATION_CAP)
    } else if err > 0.0 {
        DEGRADATION_CAP
    } else {
        0.0
    };

    // Match the rule generator's epsilon so a tier sitting exactly at
    // its advertised tolerance is in contract.
    let quality_ok = degradation <= target.max_degradation + 1e-9;
    let latency_ok = latency_at_q <= target.max_latency_us;
    let reason = if quality_ok && latency_ok {
        "within guarantee".to_string()
    } else if !quality_ok {
        format!(
            "quality degradation {:.4} exceeds tolerance {:.4} ({degraded}/{requests} degraded)",
            degradation, target.max_degradation
        )
    } else {
        format!(
            "p{} latency {}us exceeds bound {}us",
            target.latency_quantile * 100.0,
            latency_at_q,
            target.max_latency_us
        )
    };
    SloVerdict {
        key: target.key.clone(),
        in_contract: quality_ok && latency_ok,
        reason,
        window_requests: requests,
        window_degraded: degraded,
        observed_degradation: degradation,
        latency_us_at_quantile: latency_at_q,
        evaluated: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(key: &str, tol: f64, max_latency_us: u64) -> SloTarget {
        SloTarget {
            key: key.to_string(),
            max_degradation: tol,
            latency_quantile: 0.99,
            max_latency_us,
            min_requests: 5,
        }
    }

    fn feed(tel: &TierTelemetry, n: usize, latency_us: u64, err: f64, base: f64) {
        for _ in 0..n {
            tel.record(latency_us, err, base, false);
        }
    }

    #[test]
    fn initial_verdicts_await_first_window() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        let sentinel = SloSentinel::new(1_000_000, vec![(target("t", 0.05, 10_000), tel)]);
        let v = &sentinel.verdicts()[0];
        assert!(v.in_contract && !v.evaluated);
        assert_eq!(v.reason, "awaiting first window");
    }

    #[test]
    fn tick_only_fires_after_window_elapses() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), tel)]);
        assert!(!sentinel.tick(500));
        assert!(sentinel.tick(1_000));
        assert!(!sentinel.tick(1_500));
        assert!(sentinel.tick(2_100));
        assert_eq!(sentinel.windows_evaluated(), 2);
    }

    #[test]
    fn healthy_tier_is_in_contract() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        feed(&tel, 20, 2_000, 0.10, 0.10);
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), Arc::clone(&tel))]);
        sentinel.force_tick(1_000);
        let v = &sentinel.verdicts()[0];
        assert!(v.in_contract, "{}", v.reason);
        assert_eq!(v.reason, "within guarantee");
        assert_eq!(v.window_requests, 20);
        assert!(v.evaluated);
        assert!(sentinel.violations().is_empty());
    }

    #[test]
    fn quality_violation_is_flagged_with_reason() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        // err 0.20 vs baseline 0.10 -> degradation 1.0 >> 0.05.
        feed(&tel, 20, 2_000, 0.20, 0.10);
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), tel)]);
        sentinel.force_tick(1_000);
        let v = &sentinel.verdicts()[0];
        assert!(!v.in_contract);
        assert!(v.reason.contains("quality degradation"), "{}", v.reason);
        assert!((v.observed_degradation - 1.0).abs() < 1e-6);
        assert_eq!(sentinel.violations(), vec!["t".to_string()]);
    }

    #[test]
    fn latency_violation_is_flagged_with_reason() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        feed(&tel, 20, 50_000, 0.10, 0.10);
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), tel)]);
        sentinel.force_tick(1_000);
        let v = &sentinel.verdicts()[0];
        assert!(!v.in_contract);
        assert!(v.reason.contains("latency"), "{}", v.reason);
    }

    #[test]
    fn rebase_discards_backlog_without_publishing() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        // Backlog recorded before this sentinel existed: way out of
        // contract.
        feed(&tel, 50, 50_000, 0.90, 0.10);
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), Arc::clone(&tel))]);
        sentinel.rebase(5_000);
        // No verdict was published by the rebase itself.
        assert!(!sentinel.verdicts()[0].evaluated);
        assert_eq!(sentinel.windows_evaluated(), 0);
        // The window clock restarted at the rebase instant.
        assert!(!sentinel.tick(5_500));
        // Only post-rebase traffic is judged.
        feed(&tel, 20, 2_000, 0.10, 0.10);
        assert!(sentinel.tick(6_000));
        let v = &sentinel.verdicts()[0];
        assert!(v.in_contract, "{}", v.reason);
        assert_eq!(v.window_requests, 20);
    }

    #[test]
    fn windows_are_deltas_not_lifetimes() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), Arc::clone(&tel))]);
        // Window 1: violating traffic.
        feed(&tel, 10, 2_000, 0.30, 0.10);
        sentinel.force_tick(1_000);
        assert!(!sentinel.verdicts()[0].in_contract);
        // Window 2: healthy traffic only — old violations must not
        // leak into the new window.
        feed(&tel, 10, 2_000, 0.10, 0.10);
        sentinel.force_tick(2_000);
        let v = &sentinel.verdicts()[0];
        assert!(v.in_contract, "{}", v.reason);
        assert_eq!(v.window_requests, 10);
    }

    #[test]
    fn sparse_window_stays_in_contract() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        feed(&tel, 2, 2_000, 0.90, 0.10); // terrible, but only 2 requests
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), tel)]);
        sentinel.force_tick(1_000);
        let v = &sentinel.verdicts()[0];
        assert!(v.in_contract);
        assert!(v.reason.contains("insufficient traffic"), "{}", v.reason);
    }

    #[test]
    fn zero_baseline_with_error_caps_degradation_finite() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        feed(&tel, 10, 2_000, 0.10, 0.0);
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), tel)]);
        sentinel.force_tick(1_000);
        let v = &sentinel.verdicts()[0];
        assert!(!v.in_contract);
        assert!(v.observed_degradation.is_finite());
    }

    #[test]
    fn degraded_counts_surface_in_verdict() {
        let tel = Arc::new(TierTelemetry::new(BucketScheme::DEFAULT));
        for _ in 0..10 {
            tel.record(2_000, 0.10, 0.10, true);
        }
        let sentinel = SloSentinel::new(1_000, vec![(target("t", 0.05, 10_000), tel)]);
        sentinel.force_tick(1_000);
        assert_eq!(sentinel.verdicts()[0].window_degraded, 10);
    }
}
