//! Request-scoped tracing: timed spans with propagated request IDs,
//! retained in a bounded ring buffer and optionally mirrored to a
//! JSONL file sink.
//!
//! A [`Tracer`] mints one [`TraceHandle`] per request. The handle is a
//! cheap `Arc` clone, so it survives arbitrary hand-offs between
//! thread pools (HTTP worker → model-call worker): any clone can open
//! child spans or attach attributes, and the request's span tree is
//! assembled no matter which thread closed which span. Timestamps are
//! injected by the caller (simulation clock or a monotonic anchor) —
//! the tracer itself never reads a clock, which keeps simulated traces
//! deterministic.
//!
//! Finished traces land in a ring buffer of bounded capacity (oldest
//! evicted first), readable via [`Tracer::recent`]; each finished
//! trace can also be appended as one JSON line to a file sink for
//! offline correlation with load-generator logs.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An attribute value on a span.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttrValue {
    /// An integer attribute (counts, versions, microseconds).
    Int(i64),
    /// A string attribute (names, outcomes).
    Str(String),
}

/// One timed span inside a request trace.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpanEvent {
    /// Span ID, unique within the request.
    pub id: u32,
    /// Parent span ID; `None` for the root.
    pub parent: Option<u32>,
    /// Span name (static, from the instrumentation site).
    pub name: &'static str,
    /// Start timestamp in caller-defined microseconds.
    pub start_us: u64,
    /// End timestamp; `u64::MAX` until closed.
    pub end_us: u64,
    /// Attributes in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanEvent {
    /// Whether the span was closed before the trace finished.
    pub fn closed(&self) -> bool {
        self.end_us != u64::MAX
    }
}

/// The wire-carried distributed-tracing context: which fleet-wide
/// trace a request belongs to, which remote span is its parent, and
/// how many proxy hops deep it is.
///
/// The front tier originates a context (hop 0, no parent) and stamps
/// it on proxied requests via the `X-Trace-Id` / `X-Parent-Span`
/// headers; a node receiving those headers joins its local span tree
/// to the remote parent via [`Tracer::begin_remote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceContext {
    /// Fleet-wide trace ID, minted once at the originating tier.
    pub trace_id: u64,
    /// The remote parent span's ID (in the hop-above trace); `None`
    /// at the originating tier.
    pub parent_span: Option<u32>,
    /// Proxy depth: 0 at the originating tier, parent's hop + 1 below.
    pub hop: u32,
}

impl TraceContext {
    /// A locally-originated context: this request is its own trace.
    pub fn local(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span: None,
            hop: 0,
        }
    }
}

/// A finished request trace: the request ID plus its spans in open
/// order.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestTrace {
    /// The propagated request ID (local to the tracing process).
    pub request_id: u64,
    /// Fleet-wide trace ID (equals `request_id` when locally minted).
    pub trace_id: u64,
    /// Remote parent span ID, when this trace joined a remote parent.
    pub parent_span: Option<u32>,
    /// Proxy depth of this trace within its fleet-wide tree.
    pub hop: u32,
    /// Spans in the order they were opened.
    pub spans: Vec<SpanEvent>,
}

impl RequestTrace {
    /// The first span with `name`, if any.
    pub fn span(&self, name: &str) -> Option<&SpanEvent> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with `name`.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanEvent> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Render as a single JSON line (hand-rolled: IDs and integer
    /// microseconds need no float formatting).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        let _ = write!(
            out,
            "{{\"request_id\": {}, \"trace_id\": {}, \"hop\": {}, \"parent_span\": ",
            self.request_id, self.trace_id, self.hop
        );
        match self.parent_span {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"id\": {}, \"parent\": ", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ", \"name\": \"{}\", \"start_us\": {}",
                s.name, s.start_us
            );
            if s.closed() {
                let _ = write!(out, ", \"end_us\": {}", s.end_us);
            } else {
                out.push_str(", \"end_us\": null");
            }
            if !s.attrs.is_empty() {
                out.push_str(", \"attrs\": {");
                for (j, (k, v)) in s.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{k}\": ");
                    match v {
                        AttrValue::Int(n) => {
                            let _ = write!(out, "{n}");
                        }
                        AttrValue::Str(text) => {
                            out.push('"');
                            for ch in text.chars() {
                                match ch {
                                    '"' => out.push_str("\\\""),
                                    '\\' => out.push_str("\\\\"),
                                    '\n' => out.push_str("\\n"),
                                    '\r' => out.push_str("\\r"),
                                    '\t' => out.push_str("\\t"),
                                    c if (c as u32) < 0x20 => {
                                        let _ = write!(out, "\\u{:04x}", c as u32);
                                    }
                                    c => out.push(c),
                                }
                            }
                            out.push('"');
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug, Default)]
struct HandleState {
    spans: Vec<SpanEvent>,
}

#[derive(Debug)]
struct HandleInner {
    request_id: u64,
    context: TraceContext,
    state: Mutex<HandleState>,
}

/// A per-request tracing handle. Clone freely across threads; all
/// clones append to the same span tree.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    inner: Arc<HandleInner>,
}

impl TraceHandle {
    /// A standalone handle (not attached to a [`Tracer`]) — useful in
    /// tests and simulations that only want the span tree. The trace
    /// context is local: the request is its own trace at hop 0.
    pub fn detached(request_id: u64) -> Self {
        Self::detached_with_context(request_id, TraceContext::local(request_id))
    }

    /// A standalone handle joined to an explicit (possibly remote)
    /// trace context.
    pub fn detached_with_context(request_id: u64, context: TraceContext) -> Self {
        TraceHandle {
            inner: Arc::new(HandleInner {
                request_id,
                context,
                state: Mutex::new(HandleState::default()),
            }),
        }
    }

    /// The propagated request ID.
    pub fn request_id(&self) -> u64 {
        self.inner.request_id
    }

    /// The fleet-wide trace ID this handle's spans belong to.
    pub fn trace_id(&self) -> u64 {
        self.inner.context.trace_id
    }

    /// The full trace context (trace ID, remote parent, hop).
    pub fn context(&self) -> TraceContext {
        self.inner.context
    }

    /// Open a span; returns its ID for closing and parenting.
    pub fn open(&self, name: &'static str, parent: Option<u32>, start_us: u64) -> u32 {
        let mut state = self.inner.state.lock().expect("trace handle poisoned");
        let id = state.spans.len() as u32;
        state.spans.push(SpanEvent {
            id,
            parent,
            name,
            start_us,
            end_us: u64::MAX,
            attrs: Vec::new(),
        });
        id
    }

    /// Close a span at `end_us`. Unknown IDs and double-closes are
    /// ignored (a cancelled hedge call may race the trace finishing).
    pub fn close(&self, id: u32, end_us: u64) {
        let mut state = self.inner.state.lock().expect("trace handle poisoned");
        if let Some(span) = state.spans.get_mut(id as usize) {
            if !span.closed() {
                span.end_us = end_us;
            }
        }
    }

    /// Attach an integer attribute to a span.
    pub fn attr_int(&self, id: u32, key: &'static str, value: i64) {
        let mut state = self.inner.state.lock().expect("trace handle poisoned");
        if let Some(span) = state.spans.get_mut(id as usize) {
            span.attrs.push((key, AttrValue::Int(value)));
        }
    }

    /// Attach a string attribute to a span.
    pub fn attr_str(&self, id: u32, key: &'static str, value: impl Into<String>) {
        let mut state = self.inner.state.lock().expect("trace handle poisoned");
        if let Some(span) = state.spans.get_mut(id as usize) {
            span.attrs.push((key, AttrValue::Str(value.into())));
        }
    }

    /// Record an already-timed span in one call.
    pub fn span(&self, name: &'static str, parent: Option<u32>, start_us: u64, end_us: u64) -> u32 {
        let id = self.open(name, parent, start_us);
        self.close(id, end_us);
        id
    }

    fn take_trace(&self) -> RequestTrace {
        let mut state = self.inner.state.lock().expect("trace handle poisoned");
        RequestTrace {
            request_id: self.inner.request_id,
            trace_id: self.inner.context.trace_id,
            parent_span: self.inner.context.parent_span,
            hop: self.inner.context.hop,
            spans: std::mem::take(&mut state.spans),
        }
    }
}

#[derive(Debug)]
struct TracerState {
    ring: VecDeque<RequestTrace>,
    sink_error: bool,
}

/// The per-process trace collector: mints request IDs, retains the
/// last `capacity` finished traces, and optionally appends each as a
/// JSON line to `file_sink`.
pub struct Tracer {
    capacity: usize,
    next_id: AtomicU64,
    finished: AtomicU64,
    evicted: AtomicU64,
    state: Mutex<TracerState>,
    sink: Option<Mutex<std::fs::File>>,
    sink_path: Option<PathBuf>,
}

impl Tracer {
    /// A tracer retaining the last `capacity` traces in memory.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            finished: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            state: Mutex::new(TracerState {
                ring: VecDeque::new(),
                sink_error: false,
            }),
            sink: None,
            sink_path: None,
        }
    }

    /// Attach a JSONL file sink: every finished trace is appended as
    /// one line. Sink I/O errors are recorded (see
    /// [`Tracer::sink_healthy`]) but never fail the request path.
    pub fn with_file_sink(mut self, path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        self.sink = Some(Mutex::new(file));
        self.sink_path = Some(path);
        Ok(self)
    }

    /// Begin a trace for a new request, minting the next request ID.
    /// The request is the origin of its own fleet-wide trace (hop 0).
    pub fn begin(&self) -> TraceHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        TraceHandle::detached(id)
    }

    /// Begin a trace for a request that arrived with a remote trace
    /// context (`X-Trace-Id` / `X-Parent-Span` on the wire): a local
    /// request ID is minted as usual, but the finished trace carries
    /// the remote trace ID, parent span, and hop so a fleet-level
    /// assembler can join this node's span tree to the remote parent.
    pub fn begin_remote(&self, context: TraceContext) -> TraceHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        TraceHandle::detached_with_context(id, context)
    }

    /// Finish a trace: move its spans into the ring (evicting the
    /// oldest past capacity) and mirror to the file sink if attached.
    /// Spans opened on surviving handle clones *after* this call are
    /// dropped silently — a cancelled hedge call that loses the race
    /// cannot resurrect the request's trace.
    pub fn finish(&self, handle: &TraceHandle) {
        let trace = handle.take_trace();
        let line = self.sink.is_some().then(|| trace.to_json_line());
        {
            let mut state = self.state.lock().expect("tracer poisoned");
            state.ring.push_back(trace);
            while state.ring.len() > self.capacity {
                state.ring.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.finished.fetch_add(1, Ordering::Relaxed);
        if let (Some(sink), Some(line)) = (&self.sink, line) {
            let mut file = sink.lock().expect("trace sink poisoned");
            if writeln!(file, "{line}").is_err() {
                self.state.lock().expect("tracer poisoned").sink_error = true;
            }
        }
    }

    /// The most recent finished traces, newest last, at most `limit`.
    pub fn recent(&self, limit: usize) -> Vec<RequestTrace> {
        let state = self.state.lock().expect("tracer poisoned");
        let skip = state.ring.len().saturating_sub(limit);
        state.ring.iter().skip(skip).cloned().collect()
    }

    /// Every retained trace belonging to fleet-wide trace `trace_id`,
    /// oldest first. A node that served several hops of the same trace
    /// (e.g. a retry relanded here) returns them all.
    pub fn find(&self, trace_id: u64) -> Vec<RequestTrace> {
        let state = self.state.lock().expect("tracer poisoned");
        state
            .ring
            .iter()
            .filter(|t| t.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// Total traces finished (including evicted ones).
    pub fn finished_count(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    /// Finished traces evicted from the bounded ring — the tracer's
    /// drop count. Zero in any run whose request count stays within
    /// the configured retention.
    pub fn dropped_traces(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// In-memory retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the file sink (if any) has seen no write errors.
    pub fn sink_healthy(&self) -> bool {
        !self.state.lock().expect("tracer poisoned").sink_error
    }

    /// Path of the attached file sink, if any.
    pub fn sink_path(&self) -> Option<&std::path::Path> {
        self.sink_path.as_deref()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("finished", &self.finished_count())
            .field("sink", &self.sink_path)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_tree_across_clones() {
        let tracer = Tracer::new(8);
        let handle = tracer.begin();
        let root = handle.open("request", None, 0);
        let clone = handle.clone();
        let worker = std::thread::spawn(move || {
            let call = clone.open("model_call", Some(root), 10);
            clone.attr_str(call, "version", "fast");
            clone.attr_int(call, "attempt", 1);
            clone.close(call, 30);
        });
        worker.join().unwrap();
        handle.close(root, 40);
        tracer.finish(&handle);

        let recent = tracer.recent(10);
        assert_eq!(recent.len(), 1);
        let trace = &recent[0];
        assert_eq!(trace.request_id, 1);
        let call = trace.span("model_call").unwrap();
        assert_eq!(call.parent, Some(0));
        assert_eq!(call.attrs[0], ("version", AttrValue::Str("fast".into())));
        assert!(trace.span("request").unwrap().closed());
    }

    #[test]
    fn ring_evicts_oldest() {
        let tracer = Tracer::new(2);
        for _ in 0..5 {
            let h = tracer.begin();
            h.span("request", None, 0, 1);
            tracer.finish(&h);
        }
        let recent = tracer.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].request_id, 4);
        assert_eq!(recent[1].request_id, 5);
        assert_eq!(tracer.finished_count(), 5);
        assert_eq!(tracer.dropped_traces(), 3);
    }

    #[test]
    fn remote_context_joins_and_is_findable() {
        let tracer = Tracer::new(8);
        // A locally-minted request is its own trace.
        let local = tracer.begin();
        assert_eq!(local.trace_id(), local.request_id());
        assert_eq!(local.context().hop, 0);
        local.span("request", None, 0, 1);
        tracer.finish(&local);

        // A proxied request joins the remote parent.
        let ctx = TraceContext {
            trace_id: 9_001,
            parent_span: Some(3),
            hop: 1,
        };
        let remote = tracer.begin_remote(ctx);
        assert_eq!(remote.trace_id(), 9_001);
        assert_ne!(remote.request_id(), 9_001, "local id minted as usual");
        remote.span("request", None, 5, 9);
        tracer.finish(&remote);

        let found = tracer.find(9_001);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].parent_span, Some(3));
        assert_eq!(found[0].hop, 1);
        assert!(tracer.find(424_242).is_empty());
        assert_eq!(tracer.dropped_traces(), 0);

        let line = found[0].to_json_line();
        assert!(line.contains("\"trace_id\": 9001"));
        assert!(line.contains("\"hop\": 1"));
        assert!(line.contains("\"parent_span\": 3"));
    }

    #[test]
    fn late_spans_after_finish_are_dropped() {
        let tracer = Tracer::new(4);
        let h = tracer.begin();
        h.span("request", None, 0, 5);
        tracer.finish(&h);
        h.open("straggler", None, 6); // cancelled hedge, lost the race
        assert_eq!(tracer.recent(10)[0].spans.len(), 1);
    }

    #[test]
    fn json_line_escapes_strings() {
        let h = TraceHandle::detached(7);
        let s = h.span("request", None, 1, 2);
        h.attr_str(s, "note", "quo\"te\nline");
        let line = h.take_trace().to_json_line();
        assert!(line.contains("\"request_id\": 7"));
        assert!(line.contains("quo\\\"te\\nline"));
        assert!(line.contains("\"parent\": null"));
    }

    #[test]
    fn file_sink_appends_one_line_per_trace() {
        let dir = std::env::temp_dir().join("tt-obs-span-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let tracer = Tracer::new(4).with_file_sink(&path).unwrap();
        for _ in 0..3 {
            let h = tracer.begin();
            h.span("request", None, 0, 1);
            tracer.finish(&h);
        }
        assert!(tracer.sink_healthy());
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.lines().all(|l| l.starts_with("{\"request_id\": ")));
        let _ = std::fs::remove_file(&path);
    }
}
