//! `tt-obs` — observability primitives for the tiered serving stack.
//!
//! The paper's product is a *per-tier guarantee*: each Tolerance Tier
//! promises bounded accuracy degradation versus the premium tier at a
//! differentiated price. A serving stack that cannot *observe* that
//! guarantee at runtime can violate it silently. This crate supplies
//! the three observability layers the stack wires in:
//!
//! * [`registry`] — a sharded metrics registry vending counters,
//!   gauges, and mergeable log-linear histograms ([`hist`]) with O(1)
//!   record and bounded memory;
//! * [`span`] — request-scoped tracing whose handles survive
//!   thread-pool hand-offs, retained in a bounded ring with an
//!   optional JSONL file sink;
//! * [`slo`] — a sentinel that folds live telemetry against each
//!   tier's advertised guarantee over sliding windows and publishes
//!   in/out-of-contract verdicts;
//! * [`window`] — a bounded ring of sealed telemetry windows
//!   (per-tier arrival/admission/cache counts, per-version
//!   service-time histograms) whose cumulative fold is bit-identical
//!   at any thread or node count — the capacity planner's input;
//! * [`events`] — a bounded, seq-stamped control-plane event log
//!   (epoch publishes, fences, supervisor transitions) so tests can
//!   assert *why* the system acted, not just that it did.
//!
//! Everything is dependency-free `std` (matching the workspace's
//! vendored-only stance) and deterministic by construction: counts
//! and sums are integers, histogram merge is associative, and no
//! component reads a clock — timestamps are always injected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod hist;
pub mod registry;
pub mod slo;
pub mod span;
pub mod window;

pub use events::{Event, EventLog};
pub use hist::{AtomicHistogram, BucketScheme, Histogram};
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry, MetricsSnapshot};
pub use slo::{SloSentinel, SloTarget, SloVerdict, TierTelemetry};
pub use span::{AttrValue, RequestTrace, SpanEvent, TraceContext, TraceHandle, Tracer};
pub use window::{AdmissionOutcome, SealedWindow, TierWindow, WindowAccum, WindowStore};
