//! Concurrency guarantees of the metrics layer: totals are *exact*
//! under many writer threads (no sampled or lost updates), and
//! histogram merge is associative and order-independent, so sharded
//! recording folds to the same result no matter the fold order.

use proptest::prelude::*;
use std::sync::Arc;
use tt_obs::{BucketScheme, Histogram, MetricsRegistry};

const WRITERS: usize = 8;
const PER_WRITER: usize = 5_000;

#[test]
fn counter_totals_are_exact_under_threads() {
    let registry = Arc::new(MetricsRegistry::default());
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let counter = registry.counter("requests_total");
                let gauge = registry.gauge("inflight");
                for i in 0..PER_WRITER {
                    counter.inc();
                    gauge.add(if (i + w) % 2 == 0 { 1 } else { -1 });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters["requests_total"],
        (WRITERS * PER_WRITER) as u64
    );
    // Each writer nets 0 over an even number of alternating updates.
    assert_eq!(snap.gauges["inflight"], 0);
    assert_eq!(snap.dropped_series, 0);
}

#[test]
fn histogram_totals_are_exact_under_threads() {
    let registry = Arc::new(MetricsRegistry::default());
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let hist = registry.histogram("latency_us");
                for i in 0..PER_WRITER {
                    // Deterministic per-thread values spanning several
                    // octaves.
                    hist.record(((w * PER_WRITER + i) as u64 % 1_000) * 37 + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let live = registry.snapshot().histograms["latency_us"].clone();

    // Replay the same multiset single-threaded: every count, the sum,
    // min and max must match bit-for-bit — interleaving is invisible.
    let mut replay = Histogram::default();
    for w in 0..WRITERS {
        for i in 0..PER_WRITER {
            replay.record(((w * PER_WRITER + i) as u64 % 1_000) * 37 + 1);
        }
    }
    assert_eq!(live, replay);
    assert_eq!(live.count(), (WRITERS * PER_WRITER) as u64);
}

#[test]
fn threaded_runs_are_bit_identical() {
    // Two independent threaded runs over the same multiset produce
    // identical snapshots even though thread interleaving differs —
    // the property the `/metrics` endpoint's determinism rests on.
    let run = || {
        let registry = Arc::new(MetricsRegistry::default());
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let hist = registry.histogram("latency_us");
                    for i in 0..1_000 {
                        hist.record((w as u64 * 7 + i as u64 * 13) % 40_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        registry.snapshot().histograms["latency_us"].clone()
    };
    assert_eq!(run(), run());
}

fn hist_of(values: &[u64], scheme: BucketScheme) -> Histogram {
    let mut h = Histogram::new(scheme);
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..2_000_000, 0..60),
        b in prop::collection::vec(0u64..2_000_000, 0..60),
        c in prop::collection::vec(0u64..2_000_000, 0..60),
    ) {
        let scheme = BucketScheme::DEFAULT;
        let (ha, hb, hc) = (hist_of(&a, scheme), hist_of(&b, scheme), hist_of(&c, scheme));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Order independence: c ⊕ a ⊕ b matches too.
        let mut shuffled = hc.clone();
        shuffled.merge(&ha);
        shuffled.merge(&hb);
        prop_assert_eq!(&left, &shuffled);

        // And the merge equals recording the concatenation directly.
        let mut all: Vec<u64> = Vec::new();
        all.extend(&a);
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &hist_of(&all, scheme));
    }

    #[test]
    fn delta_since_inverts_merge(
        first in prop::collection::vec(0u64..1_000_000, 1..50),
        second in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let scheme = BucketScheme::DEFAULT;
        let earlier = hist_of(&first, scheme);
        let mut later = earlier.clone();
        for &v in &second {
            later.record(v);
        }
        let delta = later.delta_since(&earlier);
        prop_assert_eq!(delta.count(), second.len() as u64);
        prop_assert_eq!(delta.sum(), second.iter().sum::<u64>());
        // Re-merging the delta onto the earlier snapshot restores the
        // later one exactly.
        let mut restored = earlier.clone();
        restored.merge(&delta);
        prop_assert_eq!(restored.count(), later.count());
        prop_assert_eq!(restored.sum(), later.sum());
    }
}
