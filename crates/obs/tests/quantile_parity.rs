//! Quantile parity: the log-linear histogram's p50/p99/p999 must sit
//! within the scheme's documented relative-error bound of the exact
//! sample percentile (`tt_stats::descriptive::percentile`) on seeded
//! latency-shaped distributions — uniform, lognormal-ish, and the
//! bimodal mixture a cascade policy produces (fast-path hits plus
//! slow-path escalations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_obs::Histogram;
use tt_stats::descriptive::percentile;

const QUANTILES: [f64; 3] = [0.50, 0.99, 0.999];
const SAMPLES: usize = 20_000;

/// Exact-vs-estimate check: the histogram reports the midpoint of the
/// bucket holding the nearest-rank sample, while `percentile`
/// interpolates between bracketing order statistics — so the estimate
/// must land within the relative-error bound of the *bracketing*
/// exact values (± one unit for integer truncation).
fn assert_parity(label: &str, values_us: &[u64]) {
    let mut hist = Histogram::default();
    for &v in values_us {
        hist.record(v);
    }
    let floats: Vec<f64> = values_us.iter().map(|&v| v as f64).collect();
    let mut sorted = values_us.to_vec();
    sorted.sort_unstable();
    let err = hist.scheme().relative_error();

    for q in QUANTILES {
        let est = hist.quantile(q).expect("non-empty") as f64;
        let exact = percentile(&floats, q).expect("valid percentile");
        // Bracketing order statistics around both the interpolated
        // position and the nearest rank the histogram targets.
        let pos = q * (sorted.len() - 1) as f64;
        let lo = sorted[pos.floor() as usize] as f64;
        let hi = sorted[(pos.ceil() as usize).min(sorted.len() - 1)] as f64;
        let rank = pos.round() as usize;
        let nearest = sorted[rank] as f64;
        let lower_ok = est >= lo.min(nearest) * (1.0 - err) - 1.0;
        let upper_ok = est <= hi.max(nearest) * (1.0 + err) + 1.0;
        assert!(
            lower_ok && upper_ok,
            "{label} q={q}: estimate {est} outside error band of exact {exact} \
             (bracket [{lo}, {hi}], nearest {nearest}, rel err {err})"
        );
        // And the headline form of the bound: within rel-err of the
        // nearest-rank sample the histogram actually targets.
        assert!(
            (est - nearest).abs() <= nearest * err + 1.0,
            "{label} q={q}: estimate {est} vs nearest-rank {nearest} exceeds {err}"
        );
    }
}

#[test]
fn uniform_latencies_match_exact_percentiles() {
    let mut rng = StdRng::seed_from_u64(42);
    let values: Vec<u64> = (0..SAMPLES)
        .map(|_| rng.gen_range(500u64..50_000))
        .collect();
    assert_parity("uniform", &values);
}

#[test]
fn lognormalish_latencies_match_exact_percentiles() {
    // Heavy right tail without a `ln`/`exp` sampler: multiply a few
    // uniform factors (a log-scale random walk), which skews exactly
    // the way real service latencies do.
    let mut rng = StdRng::seed_from_u64(7);
    let values: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let mut v = 1_000.0f64;
            for _ in 0..4 {
                v *= rng.gen_range(0.6f64..2.2);
            }
            v as u64
        })
        .collect();
    assert_parity("lognormal-ish", &values);
}

#[test]
fn bimodal_cascade_latencies_match_exact_percentiles() {
    // A cascade policy answers most requests from the fast version
    // (~2-4 ms) and escalates the rest to the accurate one
    // (~24-36 ms) — the histogram must track both modes and the gap.
    let mut rng = StdRng::seed_from_u64(1234);
    let values: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            if rng.gen_bool(0.8) {
                rng.gen_range(2_000u64..4_000)
            } else {
                rng.gen_range(24_000u64..36_000)
            }
        })
        .collect();
    assert_parity("bimodal-cascade", &values);
}

#[test]
fn merged_shards_preserve_parity() {
    // Recording through several shard-local histograms and merging
    // gives the same quantiles as one histogram over everything.
    let mut rng = StdRng::seed_from_u64(99);
    let values: Vec<u64> = (0..SAMPLES)
        .map(|_| rng.gen_range(100u64..1_000_000))
        .collect();
    let mut whole = Histogram::default();
    let mut shards = vec![Histogram::default(); 4];
    for (i, &v) in values.iter().enumerate() {
        whole.record(v);
        shards[i % 4].record(v);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(whole, merged);
    for q in QUANTILES {
        assert_eq!(whole.quantile(q), merged.quantile(q));
    }
}
