//! Property tests for the flight recorder's determinism contracts:
//! histogram merge is commutative, associative, and bit-identical
//! across arbitrary shard interleavings, and the windowed telemetry
//! store's cumulative fold is invariant under thread count — the two
//! facts the fleet-merged `/metrics/windows` view rests on.

use proptest::prelude::*;
use std::sync::Arc;
use tt_obs::{AdmissionOutcome, AtomicHistogram, BucketScheme, Histogram, WindowStore};

/// Tier keys the window strategies draw from (sorted-key rendering is
/// part of the contract, so include keys that sort differently than
/// they arrive).
const TIERS: [&str; 4] = [
    "response-time/0.000",
    "response-time/0.010",
    "cost/0.050",
    "cost/0.010",
];

fn fold(shards: &[Histogram], order: &[usize]) -> Histogram {
    let mut out = Histogram::new(BucketScheme::DEFAULT);
    for &i in order {
        out.merge(&shards[i]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any partition of a value multiset across shards, folded in any
    /// order, equals single-shard recording: merge is commutative and
    /// associative, and no count or sum is lost to sharding.
    #[test]
    fn histogram_merge_is_shard_and_order_invariant(
        values in prop::collection::vec(0u64..2_000_000, 1..200),
        assignment in prop::collection::vec(0usize..4, 1..200),
        swap in 0usize..4,
    ) {
        let mut reference = Histogram::new(BucketScheme::DEFAULT);
        for &v in &values {
            reference.record(v);
        }

        let shards: Vec<AtomicHistogram> =
            (0..4).map(|_| AtomicHistogram::new(BucketScheme::DEFAULT)).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[assignment[i % assignment.len()]].record(v);
        }
        let snaps: Vec<Histogram> = shards.iter().map(AtomicHistogram::snapshot).collect();

        let forward = fold(&snaps, &[0, 1, 2, 3]);
        let mut order = vec![3, 2, 1, 0];
        order.swap(0, swap);
        let shuffled = fold(&snaps, &order);

        prop_assert_eq!(&forward, &reference);
        prop_assert_eq!(&shuffled, &reference);
        prop_assert_eq!(forward.count(), values.len() as u64);
        prop_assert_eq!(forward.sum(), values.iter().sum::<u64>());

        // Associativity: ((0+1)+(2+3)) == (0+(1+(2+3))).
        let mut left = snaps[0].clone();
        left.merge(&snaps[1]);
        let mut right = snaps[2].clone();
        right.merge(&snaps[3]);
        let mut paired = left;
        paired.merge(&right);
        prop_assert_eq!(&paired, &reference);
    }

    /// The window store's cumulative fold is a pure function of the
    /// operation multiset: recording the same operations from 1 or 4
    /// threads — with heartbeat ticks racing the writers — yields the
    /// same cumulative accumulator.
    #[test]
    fn window_cumulative_fold_is_thread_count_invariant(
        ops in prop::collection::vec(
            (0usize..4, 0u8..6, 1u64..500_000), 8..120),
    ) {
        let record = |store: &WindowStore, op: &(usize, u8, u64)| {
            let (tier, kind, value) = *op;
            let key = TIERS[tier];
            match kind {
                0 => store.record_arrival(key),
                1 => store.record_admission(key, AdmissionOutcome::Admitted),
                2 => store.record_admission(key, AdmissionOutcome::BrownedOut),
                3 => store.record_admission(key, AdmissionOutcome::Shed),
                4 => store.record_cache(key, value % 2 == 0),
                _ => store.record_service((value % 3) as usize, value),
            }
        };

        let single = WindowStore::new(1_000, 16);
        for op in &ops {
            record(&single, op);
        }

        let sharded = Arc::new(WindowStore::new(1_000, 16));
        std::thread::scope(|scope| {
            for lane in 0..4usize {
                let sharded = Arc::clone(&sharded);
                let ops = &ops;
                scope.spawn(move || {
                    for (i, op) in ops.iter().enumerate() {
                        if i % 4 == lane {
                            record(&sharded, op);
                        }
                        if i % 16 == lane {
                            // Heartbeats race the writers; sealing
                            // must never lose or duplicate a record.
                            sharded.tick((i as u64 + 1) * 300);
                        }
                    }
                });
            }
        });

        prop_assert_eq!(single.cumulative(), sharded.cumulative());

        // The sealed ring plus the open window partition the
        // cumulative fold exactly: fold every sealed window into the
        // still-open remainder and the totals must match.
        let mut folded = tt_obs::WindowAccum::default();
        for window in sharded.sealed(usize::MAX) {
            folded.merge(&window.accum);
        }
        let cumulative = sharded.cumulative();
        prop_assert!(folded.total_arrivals() <= cumulative.total_arrivals());
    }
}
