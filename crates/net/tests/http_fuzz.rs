//! Property/fuzz tests for the HTTP wire layer: the parser must never
//! panic on any byte sequence — malformed, truncated, hostile, or
//! oversized — and its limits must map to the documented typed errors
//! (431 for header floods, 413 for oversized bodies).

use proptest::prelude::*;
use std::io::Cursor;
use tt_net::http::{read_request, read_response, HttpError, Limits, RequestAssembler};

fn parse(bytes: &[u8], limits: &Limits) -> Result<Option<tt_net::http::Request>, HttpError> {
    read_request(&mut Cursor::new(bytes.to_vec()), limits)
}

/// A syntactically valid `/compute` request, as the load generator
/// would send it.
fn valid_wire(tolerance: f64, objective: &str, payload: usize, body_len: usize) -> Vec<u8> {
    let body = "x".repeat(body_len);
    format!(
        "POST /compute HTTP/1.1\r\nTolerance: {tolerance}\r\nObjective: {objective}\r\n\
         Payload: {payload}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..1024)) {
        // Any outcome is acceptable; panicking or hanging is not.
        let _ = parse(&bytes, &Limits::default());
    }

    #[test]
    fn rules_epoch_parsing_never_panics_and_matches_a_model(
        raw in prop::collection::vec(32u8..=126u8, 0..24),
    ) {
        let value = String::from_utf8(raw).expect("printable ASCII");
        // Any printable header value either parses as a decimal u64
        // (modulo surrounding whitespace) or maps to the 400 class —
        // never a panic, never a silent None for a present stamp.
        let got = tt_net::http::parse_rules_epoch(Some(&value));
        match value.trim().parse::<u64>() {
            Ok(epoch) => prop_assert_eq!(got, Ok(Some(epoch))),
            Err(_) => {
                let err = got.unwrap_err();
                prop_assert_eq!(err.status(), Some((400, "Bad Request")));
            }
        }
        // And a stamped wire request agrees with direct parsing.
        let wire = format!(
            "POST /compute HTTP/1.1\r\nRules-Epoch: {value}\r\nContent-Length: 0\r\n\r\n"
        );
        if let Ok(Some(request)) = parse(wire.as_bytes(), &Limits::default()) {
            // Header parsing may normalize surrounding whitespace, so
            // compare the epoch/status outcome, not error text.
            prop_assert_eq!(
                request.rules_epoch().map_err(|e| e.status()),
                tt_net::http::parse_rules_epoch(Some(&value)).map_err(|e| e.status())
            );
        }
    }

    #[test]
    fn http_shaped_garbage_never_panics(
        tail in prop::collection::vec(0u8..=255u8, 0..512),
    ) {
        // A plausible request line followed by garbage exercises the
        // header and body paths rather than dying on the first line.
        let mut bytes = b"POST /compute HTTP/1.1\r\n".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = parse(&bytes, &Limits::default());
    }

    #[test]
    fn truncating_a_valid_request_never_panics(
        tolerance in 0.0f64..0.5,
        objective_pick in 0usize..2,
        payload in 0usize..500,
        body_len in 0usize..64,
        cut_permille in 0u32..1000,
    ) {
        let objective = ["response-time", "cost"][objective_pick];
        let wire = valid_wire(tolerance, objective, payload, body_len);
        // The full request parses.
        let full = parse(&wire, &Limits::default());
        prop_assert!(matches!(full, Ok(Some(_))), "full request failed: {full:?}");
        // Every prefix either parses, reports clean EOF, or reports a
        // typed error — truncation mid-request must be `Truncated`.
        let cut = (wire.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        match parse(&wire[..cut], &Limits::default()) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only on the empty prefix"),
            Ok(Some(_)) => {
                // A prefix that still contains the whole head and a
                // consistent body is a complete request; that can only
                // happen at full length here.
                prop_assert_eq!(cut, wire.len());
            }
            Err(HttpError::Truncated) => {}
            Err(other) => {
                // Typed errors are acceptable (a cut can land inside a
                // number, say), panics are not. They must carry a
                // status for the error path.
                prop_assert!(other.status().is_some(), "unreportable error {other:?}");
            }
        }
    }

    #[test]
    fn header_floods_map_to_431(extra in 0usize..40) {
        let limits = Limits::default();
        let mut wire = b"GET /healthz HTTP/1.1\r\n".to_vec();
        for i in 0..(limits.max_headers + 1 + extra) {
            wire.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        prop_assert_eq!(parse(&wire, &limits), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn unbounded_header_lines_map_to_431(line_len in 0usize..100_000) {
        let limits = Limits { max_head_bytes: 4096, ..Limits::default() };
        let mut wire = b"GET / HTTP/1.1\r\nLong: ".to_vec();
        wire.extend(std::iter::repeat_n(b'a', line_len));
        wire.extend_from_slice(b"\r\n\r\n");
        let result = parse(&wire, &limits);
        if wire.len() > limits.max_head_bytes {
            prop_assert_eq!(result, Err(HttpError::HeadersTooLarge));
        } else {
            prop_assert!(matches!(result, Ok(Some(_))), "under-limit failed: {result:?}");
        }
    }

    #[test]
    fn oversized_declared_bodies_map_to_413_without_arrival(
        declared in 1u64..u64::from(u32::MAX),
    ) {
        let limits = Limits { max_body_bytes: 1024, ..Limits::default() };
        // The declaration alone must be enough to refuse: no body bytes
        // follow at all, so an implementation that allocated or waited
        // for them would hang or blow up here.
        let wire = format!("POST /compute HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let result = parse(wire.as_bytes(), &limits);
        if declared as usize > limits.max_body_bytes {
            prop_assert_eq!(result, Err(HttpError::PayloadTooLarge));
        } else {
            prop_assert_eq!(result, Err(HttpError::Truncated));
        }
    }

    #[test]
    fn response_reader_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..1024)) {
        let _ = read_response(&mut Cursor::new(bytes), &Limits::default());
    }

    /// The incremental assembler fed a valid request in arbitrary-sized
    /// dribbles must agree byte-for-byte with the blocking reader: one
    /// request, identical fields, nothing left buffered.
    #[test]
    fn dribbled_valid_request_matches_blocking_reader(
        tolerance_milli in 0u32..500,
        objective_pick in 0usize..2,
        payload in 0usize..10_000,
        body_len in 0usize..128,
        chunk in 1usize..7,
    ) {
        let tolerance = f64::from(tolerance_milli) / 1000.0;
        let objective = ["response-time", "cost"][objective_pick];
        let wire = valid_wire(tolerance, objective, payload, body_len);
        let blocking = parse(&wire, &Limits::default()).unwrap().unwrap();

        let mut assembler = RequestAssembler::new(Limits::default());
        let mut yielded = Vec::new();
        for piece in wire.chunks(chunk) {
            assembler.push(piece);
            while let Some(request) = assembler.next_request().unwrap() {
                yielded.push(request);
            }
        }
        prop_assert_eq!(yielded.len(), 1, "dribbling split or dropped the request");
        let incremental = &yielded[0];
        prop_assert_eq!(&incremental.method, &blocking.method);
        prop_assert_eq!(incremental.path(), blocking.path());
        prop_assert_eq!(incremental.header("tolerance"), blocking.header("tolerance"));
        prop_assert_eq!(incremental.header("objective"), blocking.header("objective"));
        prop_assert_eq!(incremental.header("payload"), blocking.header("payload"));
        prop_assert_eq!(&incremental.body, &blocking.body);
        // Never over-read: a lone complete request leaves the buffer empty.
        prop_assert!(assembler.is_empty(), "assembler kept {} stray bytes", assembler.buffered());
        prop_assert!(!assembler.awaiting_body());
    }

    /// Pipelined requests pushed across arbitrary chunk boundaries come
    /// back one per `next_request` call, in order, and a cut that lands
    /// inside request N+1 leaves exactly that prefix buffered — the
    /// parser must not consume bytes belonging to the next request.
    #[test]
    fn pipelined_requests_never_overread_or_reorder(
        payloads in prop::collection::vec(0usize..10_000, 2..5),
        cut_permille in 0u32..1000,
        chunk in 1usize..64,
    ) {
        let wires: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| valid_wire(0.01 * (i as f64 + 1.0), "cost", p, i % 9))
            .collect();
        let last = wires.last().unwrap();
        let cut = (last.len() as u64 * u64::from(cut_permille) / 1000) as usize;

        // Everything except a tail of the final request, in one stream.
        let mut stream: Vec<u8> = wires[..wires.len() - 1].concat();
        stream.extend_from_slice(&last[..cut]);

        let mut assembler = RequestAssembler::new(Limits::default());
        let mut yielded = Vec::new();
        for piece in stream.chunks(chunk) {
            assembler.push(piece);
            while let Some(request) = assembler.next_request().unwrap() {
                yielded.push(request);
            }
        }
        prop_assert_eq!(yielded.len(), wires.len() - 1, "complete requests must all surface");
        // The partial tail is exactly what remains buffered: no byte of
        // it leaked into the previous request, none was discarded.
        prop_assert_eq!(assembler.buffered(), cut);

        // Feeding the rest completes the final request.
        assembler.push(&last[cut..]);
        while let Some(request) = assembler.next_request().unwrap() {
            yielded.push(request);
        }
        prop_assert_eq!(yielded.len(), wires.len());
        prop_assert!(assembler.is_empty());
        for (i, request) in yielded.iter().enumerate() {
            let expected = payloads[i].to_string();
            prop_assert_eq!(request.header("payload"), Some(expected.as_str()), "order broke at {}", i);
        }
    }

    /// Arbitrary bytes dribbled one at a time: the assembler must never
    /// panic, and its verdict must match the blocking reader's on the
    /// same bytes — same request out, or the same typed error. The only
    /// allowed divergence is `Truncated`, which for the blocking reader
    /// means EOF mid-request and for the assembler means "still waiting
    /// with bytes buffered".
    #[test]
    fn dribbled_garbage_matches_blocking_verdict(
        bytes in prop::collection::vec(0u8..=255u8, 0..768),
    ) {
        let blocking = parse(&bytes, &Limits::default());

        let mut assembler = RequestAssembler::new(Limits::default());
        let mut outcome: Result<Option<tt_net::http::Request>, HttpError> = Ok(None);
        'feed: for &byte in &bytes {
            assembler.push(&[byte]);
            match assembler.next_request() {
                Ok(Some(request)) => {
                    outcome = Ok(Some(request));
                    break 'feed; // compare first requests only
                }
                Ok(None) => {}
                Err(e) => {
                    outcome = Err(e);
                    break 'feed;
                }
            }
        }

        match blocking {
            Ok(Some(expected)) => {
                let got = outcome.unwrap().expect("assembler missed a complete request");
                prop_assert_eq!(got.method, expected.method);
                prop_assert_eq!(got.target, expected.target);
                prop_assert_eq!(got.body, expected.body);
            }
            Ok(None) => {
                // Empty input: nothing fed, nothing out.
                prop_assert!(matches!(outcome, Ok(None)));
                prop_assert!(assembler.is_empty());
            }
            Err(HttpError::Truncated) => {
                // EOF mid-request: the assembler is simply still waiting.
                prop_assert!(matches!(outcome, Ok(None)), "assembler invented {outcome:?}");
                prop_assert!(!assembler.is_empty());
            }
            Err(expected) => {
                // Typed rejections must agree exactly.
                prop_assert_eq!(outcome, Err(expected));
            }
        }
    }

    #[test]
    fn valid_requests_round_trip_their_annotations(
        tolerance_milli in 0u32..500,
        objective_pick in 0usize..2,
        payload in 0usize..10_000,
        body_len in 0usize..128,
    ) {
        let tolerance = f64::from(tolerance_milli) / 1000.0;
        let objective = ["response-time", "cost"][objective_pick];
        let wire = valid_wire(tolerance, objective, payload, body_len);
        let request = parse(&wire, &Limits::default()).unwrap().unwrap();
        prop_assert_eq!(request.method.as_str(), "POST");
        prop_assert_eq!(request.path(), "/compute");
        prop_assert_eq!(request.header("objective"), Some(objective));
        let payload_text = payload.to_string();
        prop_assert_eq!(request.header("payload"), Some(payload_text.as_str()));
        prop_assert_eq!(request.body.len(), body_len);
        prop_assert!(request.keep_alive);
        let parsed_tolerance: f64 = request.header("tolerance").unwrap().parse().unwrap();
        prop_assert!((parsed_tolerance - tolerance).abs() < 1e-12);
    }
}

/// Slow-loris regression: a client trickling a request one byte at a
/// time must not pin an HTTP worker past the per-request deadline, and
/// the worker must be free to serve well-behaved clients afterwards.
#[test]
fn slow_loris_cannot_pin_a_worker_past_the_request_deadline() {
    use std::io::{BufReader, Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use tt_net::demo::demo_service;
    use tt_net::server::{Server, ServerConfig};
    use tt_net::service::ServiceConfig;

    let service = Arc::new(demo_service(40, 9, ServiceConfig::defaults()));
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            // One worker: if the loris pinned it, the probe below
            // could never be served.
            http_workers: 1,
            keep_alive_timeout: Duration::from_millis(400),
            request_deadline: Duration::from_millis(400),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let running = server.spawn();

    // The loris: drip a valid-looking request far slower than the
    // deadline allows.
    let mut loris = TcpStream::connect(addr).unwrap();
    let started = Instant::now();
    let wire = b"POST /compute HTTP/1.1\r\nTolerance: 0.05\r\n";
    let mut dripped = 0usize;
    for &byte in wire.iter().cycle() {
        if loris.write_all(&[byte]).is_err() {
            break; // server hung up on us — the defense worked
        }
        dripped += 1;
        std::thread::sleep(Duration::from_millis(30));
        if started.elapsed() > Duration::from_secs(3) {
            break;
        }
    }
    // Whether or not the write side noticed the hang-up, the read side
    // must see EOF: the server reaped the connection near the deadline,
    // not after our 3-second patience budget.
    loris
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut sink = [0u8; 64];
    let eof_at = Instant::now();
    while let Ok(n) = loris.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
    assert!(
        eof_at.elapsed() < Duration::from_secs(2),
        "server never closed the loris connection (dripped {dripped} bytes)"
    );

    // The single worker is free again: a normal request round-trips.
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .write_all(
            b"POST /compute HTTP/1.1\r\nTolerance: 0.05\r\nObjective: cost\r\n\
              Payload: 3\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut reader = BufReader::new(probe.try_clone().unwrap());
    let response = tt_net::http::read_response(&mut reader, &Limits::default()).unwrap();
    assert_eq!(response.status, 200);
    running.stop().unwrap();
}
