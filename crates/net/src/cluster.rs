//! tt-cluster: fault-tolerant multi-node tolerance-tier serving.
//!
//! PRs 1–5 defend the paper's per-request guarantees on a single node;
//! this module promotes that node into a *fleet*: N in-process
//! [`ComputeService`] nodes, each behind its own loopback
//! [`Server`], fronted by a [`FrontTier`] router that picks a node per
//! request by tolerance tier **and** live node health.
//!
//! Three routing strategies ([`RouteStrategy`]): primary-first
//! failover, round-robin, and smooth weighted round-robin. Strict
//! tiers (tolerance 0) always route primary-first regardless of
//! strategy, so the tier with the hardest contract sees the most
//! predictable path; failover covers every tier when a node dies.
//!
//! The control plane carries a monotonically versioned **rules
//! epoch**: [`Fleet::broadcast_rules`] installs freshly generated
//! rules on every reachable node under a new epoch, the front tier
//! stamps proxied requests with the epoch it expects
//! ([`RULES_EPOCH_HEADER`]), nodes stamp every response with the epoch
//! they served under, and the front fences any node whose stamp trails
//! the fleet — a node that missed a broadcast (control-plane
//! partition) becomes a detectable fault class instead of a silent
//! billing/accuracy bug. Node-level faults (crash, restart, data /
//! control partition) pair with [`tt_sim::NodeFaultScript`] so chaos
//! runs replay deterministically.
//!
//! Billing stays bit-identical at any node count: every node is a
//! replica of the same seeded deployment, each request bills
//! identically wherever it lands, and [`Fleet::billing_totals`]
//! aggregates per-tier *request counts* (exact integers) and derives
//! revenue closed-form as `count × unit price` — immune to
//! float-fold-order differences across arbitrary request partitions.

use crate::demo::{demo_frontend, demo_matrix};
use crate::doc::{capacity_object, events_document, fleet_windows_document};
use crate::http::{
    format_parent_span, read_response, Limits, Request, Response, PARENT_SPAN_HEADER,
    RULES_EPOCH_HEADER, TRACE_ID_HEADER,
};
use crate::server::{
    error_body, query_param, trace_tree_body, HttpHandler, Reply, RunningServer, Server,
    ServerConfig,
};
use crate::service::{ComputeService, ServiceConfig};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tt_bench::perfjson::{Json, JsonObject};
use tt_core::profile::ProfileMatrix;
use tt_obs::{EventLog, TraceContext, Tracer, WindowAccum};

/// How the front tier spreads tolerant-tier requests over healthy
/// nodes. Strict (tolerance-0) requests always use `Failover` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStrategy {
    /// Always the lowest-indexed healthy node; the rest are spares.
    Failover,
    /// Healthy nodes in rotation.
    RoundRobin,
    /// Smooth weighted round-robin over [`FleetConfig::weights`].
    Weighted,
}

impl RouteStrategy {
    /// Stable label for metrics documents.
    pub fn label(self) -> &'static str {
        match self {
            RouteStrategy::Failover => "failover",
            RouteStrategy::RoundRobin => "round-robin",
            RouteStrategy::Weighted => "weighted",
        }
    }
}

/// Fleet assembly parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replica nodes.
    pub nodes: usize,
    /// Tolerant-tier routing strategy.
    pub strategy: RouteStrategy,
    /// Per-node weights for [`RouteStrategy::Weighted`]; padded with
    /// `1` when shorter than the fleet.
    pub weights: Vec<u32>,
    /// Demo deployment size (profiled payload population).
    pub payloads: usize,
    /// Demo deployment seed; replicas are pure functions of
    /// `(payloads, seed)`, which is what makes them interchangeable.
    pub seed: u64,
    /// Per-node service template. `node_id` is overridden per node;
    /// the default template disables the per-node supervisor because
    /// rule updates are the fleet control plane's job
    /// ([`Fleet::broadcast_rules`]).
    pub service: ServiceConfig,
    /// Per-node server tuning.
    pub node_server: ServerConfig,
    /// Front-tier server tuning.
    pub front_server: ServerConfig,
}

impl FleetConfig {
    /// A small failover fleet over the demo deployment: supervisors
    /// off (the control plane owns rule swaps), snappy keep-alive.
    pub fn defaults(nodes: usize) -> Self {
        FleetConfig {
            nodes,
            strategy: RouteStrategy::Failover,
            weights: Vec::new(),
            payloads: 120,
            seed: 2024,
            service: ServiceConfig {
                supervisor: None,
                ..ServiceConfig::defaults()
            },
            node_server: ServerConfig {
                keep_alive_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
            front_server: ServerConfig {
                keep_alive_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        }
    }
}

/// A node's health as the front tier sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving.
    Up,
    /// Unreachable (crashed or data-partitioned and discovered).
    Down,
    /// Reachable but serving under a stale rules epoch; excluded from
    /// routing until it re-adopts the fleet epoch.
    Fenced,
    /// Draining on request; no new work.
    Draining,
}

impl NodeState {
    fn label(self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Down => "down",
            NodeState::Fenced => "fenced",
            NodeState::Draining => "draining",
        }
    }
}

/// One pooled keep-alive connection from the front tier to a node.
struct ProxyConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ProxyConn {
    fn open(addr: SocketAddr, peer_timeout: Duration) -> io::Result<ProxyConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(peer_timeout))?;
        stream.set_write_timeout(Some(peer_timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ProxyConn {
            writer: stream,
            reader,
        })
    }

    fn exchange(&mut self, wire: &[u8], limits: &Limits) -> io::Result<Response> {
        self.writer.write_all(wire)?;
        read_response(&mut self.reader, limits)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Per-node bookkeeping shared between the front tier (data plane) and
/// the [`Fleet`] control plane.
struct NodeSlot {
    id: usize,
    weight: u32,
    service: Arc<ComputeService>,
    addr: RwLock<SocketAddr>,
    running: Mutex<Option<RunningServer>>,
    down: AtomicBool,
    fenced: AtomicBool,
    draining: AtomicBool,
    /// Front↔node data path artificially severed (chaos): proxy
    /// attempts fail as if the network ate them.
    part_data: AtomicBool,
    /// Control path severed: broadcasts skip this node.
    part_control: AtomicBool,
    served: AtomicU64,
    failures: AtomicU64,
    pool: Mutex<Vec<ProxyConn>>,
}

impl NodeSlot {
    fn name(&self) -> String {
        format!("node-{}", self.id)
    }

    fn state(&self) -> NodeState {
        if self.down.load(Ordering::SeqCst) {
            NodeState::Down
        } else if self.draining.load(Ordering::SeqCst) {
            NodeState::Draining
        } else if self.fenced.load(Ordering::SeqCst) {
            NodeState::Fenced
        } else {
            NodeState::Up
        }
    }

    /// Eligible to receive proxied work. Data-partitioned nodes stay
    /// eligible until an attempt fails — the front cannot know about a
    /// partition it hasn't hit yet.
    fn eligible(&self) -> bool {
        self.state() == NodeState::Up
    }

    fn drop_pool(&self) {
        self.pool.lock().clear();
    }
}

/// The fleet's router: an [`HttpHandler`] that proxies `/compute` to
/// healthy nodes over loopback, fails over on node death, fences
/// stale-epoch nodes, and serves fleet-level `/healthz`, `/metrics`,
/// `/cluster`, and `/drain`.
pub struct FrontTier {
    slots: Vec<Arc<NodeSlot>>,
    strategy: RouteStrategy,
    epoch: Arc<AtomicU64>,
    limits: Limits,
    /// How long proxied node reads/writes may stall before the node is
    /// declared hung — [`ServerConfig::peer_read_timeout`], so the
    /// whole stack detects a dead peer on one clock.
    peer_timeout: Duration,
    rr_cursor: AtomicUsize,
    /// Smooth weighted round-robin state (`current` weights).
    wrr: Mutex<Vec<i64>>,
    proxied: AtomicU64,
    failovers: AtomicU64,
    fence_events: AtomicU64,
    /// The front's own span ring: every proxied request gets a route
    /// span with one child span per node attempt, joined (by trace id)
    /// to the span trees the nodes record for the same request.
    tracer: Tracer,
    /// The fleet control-plane event log: epoch publishes,
    /// fence/unfence transitions, node deaths and restarts, drains.
    events: EventLog,
    boot: Instant,
}

impl std::fmt::Debug for FrontTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontTier")
            .field("nodes", &self.slots.len())
            .field("strategy", &self.strategy)
            .finish_non_exhaustive()
    }
}

/// Reason phrase for the statuses a node can answer with.
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

impl FrontTier {
    /// The fleet's current rules epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Microseconds since the front tier booted (event and span
    /// timestamps).
    fn now_us(&self) -> u64 {
        u64::try_from(self.boot.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Record one control-plane event, stamped with the front's clock.
    fn event(&self, kind: &'static str, detail: String) -> u64 {
        self.events.record(self.now_us(), kind, detail)
    }

    /// The front tier's control-plane event log.
    pub fn event_log(&self) -> &EventLog {
        &self.events
    }

    /// The front tier's span ring (route + per-attempt proxy spans).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Successfully proxied requests.
    pub fn proxied(&self) -> u64 {
        self.proxied.load(Ordering::SeqCst)
    }

    /// Requests that had to move past at least one failed node.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::SeqCst)
    }

    /// Times a node was fenced for serving a stale epoch.
    pub fn fence_events(&self) -> u64 {
        self.fence_events.load(Ordering::SeqCst)
    }

    /// States of every node, in id order.
    pub fn node_states(&self) -> Vec<NodeState> {
        self.slots.iter().map(|s| s.state()).collect()
    }

    /// Candidate order for one request: eligible nodes, arranged by
    /// the strategy — except strict requests, which are pinned to
    /// primary-first failover order for path predictability.
    fn order(&self, strict: bool) -> Vec<usize> {
        let eligible: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].eligible())
            .collect();
        if eligible.is_empty() {
            return eligible;
        }
        let strategy = if strict {
            RouteStrategy::Failover
        } else {
            self.strategy
        };
        match strategy {
            RouteStrategy::Failover => eligible,
            RouteStrategy::RoundRobin => {
                let start = self.rr_cursor.fetch_add(1, Ordering::SeqCst) % eligible.len();
                let mut order = Vec::with_capacity(eligible.len());
                order.extend_from_slice(&eligible[start..]);
                order.extend_from_slice(&eligible[..start]);
                order
            }
            RouteStrategy::Weighted => {
                // Smooth WRR (nginx): bump every eligible node by its
                // weight, pick the largest, subtract the total.
                let mut current = self.wrr.lock();
                let total: i64 = eligible
                    .iter()
                    .map(|&i| i64::from(self.slots[i].weight))
                    .sum();
                let mut best = eligible[0];
                for &i in &eligible {
                    current[i] += i64::from(self.slots[i].weight);
                    if current[i] > current[best] {
                        best = i;
                    }
                }
                current[best] -= total;
                let mut order = vec![best];
                order.extend(eligible.iter().copied().filter(|&i| i != best));
                order
            }
        }
    }

    /// Forward `request` to `slot`, stamped with the fleet epoch and
    /// the trace context (`trace` parents the node's span tree under
    /// this attempt's proxy span). Pooled connections get one retry on
    /// a fresh socket before the node is declared unreachable.
    fn proxy_once(
        &self,
        slot: &NodeSlot,
        request: &Request,
        trace: &TraceContext,
    ) -> io::Result<Response> {
        if slot.part_data.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "data partition",
            ));
        }
        let epoch = self.epoch();
        let mut wire = format!("{} {} HTTP/1.1\r\n", request.method, request.target).into_bytes();
        for (name, value) in &request.headers {
            // Only the API's own headers cross the proxy; transport
            // headers are per-hop. Duplicates are preserved so the
            // node's DuplicateHeader 400 still fires.
            if name.eq_ignore_ascii_case("tolerance")
                || name.eq_ignore_ascii_case("objective")
                || name.eq_ignore_ascii_case("payload")
                || name.eq_ignore_ascii_case("cache-control")
            {
                wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
            }
        }
        wire.extend_from_slice(format!("{RULES_EPOCH_HEADER}: {epoch}\r\n").as_bytes());
        wire.extend_from_slice(format!("{TRACE_ID_HEADER}: {}\r\n", trace.trace_id).as_bytes());
        wire.extend_from_slice(
            format!("{PARENT_SPAN_HEADER}: {}\r\n", format_parent_span(trace)).as_bytes(),
        );
        wire.extend_from_slice(
            format!(
                "Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                request.body.len()
            )
            .as_bytes(),
        );
        wire.extend_from_slice(&request.body);

        let addr = *slot.addr.read();
        let pooled = slot.pool.lock().pop();
        if let Some(mut conn) = pooled {
            if let Ok(response) = conn.exchange(&wire, &self.limits) {
                slot.pool.lock().push(conn);
                return Ok(response);
            }
            // The pooled socket may simply have been reaped by the
            // node's keep-alive timeout; only a fresh socket failing
            // proves the node unreachable.
        }
        let mut conn = ProxyConn::open(addr, self.peer_timeout)?;
        let response = conn.exchange(&wire, &self.limits)?;
        if slot.pool.lock().len() < 8 {
            slot.pool.lock().push(conn);
        }
        Ok(response)
    }

    /// Proxy with health-aware failover: walk the candidate order,
    /// marking unreachable nodes down and stale nodes fenced, until a
    /// node answers under the fleet epoch.
    ///
    /// Every request gets a front-side trace: a `route` span with one
    /// `proxy` child per attempted node (failed and successful
    /// attempts are sibling spans), and the chosen node joins the same
    /// trace id on its own ring — `GET /trace/{id}` on the front
    /// reassembles the full cross-node tree.
    fn proxy_compute(&self, request: &Request) -> Reply {
        let strict = request
            .header("tolerance")
            .is_none_or(|t| t.trim().parse::<f64>().map_or(true, |v| v == 0.0));
        // Originate the fleet trace — or join one the client carried.
        let handle = match request.trace_context() {
            Some(context) => self.tracer.begin_remote(context),
            None => self.tracer.begin(),
        };
        let trace_id = handle.trace_id();
        let hop = handle.context().hop;
        let route = handle.open("route", None, self.now_us());
        handle.attr_str(
            route,
            "strategy",
            if strict {
                RouteStrategy::Failover.label()
            } else {
                self.strategy.label()
            },
        );
        let mut moved_past_failure = false;
        let mut relayed = None;
        for id in self.order(strict) {
            let slot = &self.slots[id];
            let attempt = handle.open("proxy", Some(route), self.now_us());
            handle.attr_str(attempt, "node", slot.name());
            let downstream = TraceContext {
                trace_id,
                parent_span: Some(attempt),
                hop: hop + 1,
            };
            match self.proxy_once(slot, request, &downstream) {
                Err(_) => {
                    handle.attr_str(attempt, "outcome", "error");
                    handle.close(attempt, self.now_us());
                    slot.failures.fetch_add(1, Ordering::SeqCst);
                    let newly_down = !slot.down.swap(true, Ordering::SeqCst);
                    slot.drop_pool();
                    moved_past_failure = true;
                    if newly_down {
                        self.event(
                            "node_down",
                            format!("{} unreachable; failing over", slot.name()),
                        );
                    }
                }
                Ok(response) => {
                    let fleet_epoch = self.epoch();
                    let stamp = response
                        .header(RULES_EPOCH_HEADER)
                        .and_then(|v| v.trim().parse::<u64>().ok());
                    let stale =
                        response.status == 409 || stamp.is_some_and(|served| served < fleet_epoch);
                    if stale {
                        // The node answered from an older rules
                        // generation: fence it and move on.
                        handle.attr_str(attempt, "outcome", "stale");
                        handle.close(attempt, self.now_us());
                        let newly_fenced = !slot.fenced.swap(true, Ordering::SeqCst);
                        self.fence_events.fetch_add(1, Ordering::SeqCst);
                        moved_past_failure = true;
                        if newly_fenced {
                            self.event(
                                "fence",
                                format!(
                                    "{} served a stale epoch (fleet at {fleet_epoch})",
                                    slot.name()
                                ),
                            );
                        }
                        continue;
                    }
                    handle.attr_str(attempt, "outcome", "ok");
                    handle.attr_int(attempt, "status", i64::from(response.status));
                    handle.close(attempt, self.now_us());
                    slot.served.fetch_add(1, Ordering::SeqCst);
                    self.proxied.fetch_add(1, Ordering::SeqCst);
                    if moved_past_failure {
                        self.failovers.fetch_add(1, Ordering::SeqCst);
                    }
                    relayed = Some(relay(slot, &response));
                    break;
                }
            }
        }
        handle.close(route, self.now_us());
        self.tracer.finish(&handle);
        let reply = relayed.unwrap_or_else(|| {
            Reply::json(
                503,
                "Service Unavailable",
                JsonObject::new()
                    .with_str("error", "no healthy node")
                    .with_int("epoch", self.epoch() as i64)
                    .render(),
            )
            .with_header(RULES_EPOCH_HEADER, self.epoch().to_string())
        });
        // The front's trace id wins over the node's echo: both name
        // the same fleet-wide trace, but only one copy may cross back
        // to the client.
        reply.with_header(TRACE_ID_HEADER, trace_id.to_string())
    }

    /// `GET /trace/{id}` at the fleet level: join the front's route
    /// span tree with every node-local tree recorded for the same
    /// trace id, ordered by hop then request id — the full cross-node
    /// story of one request, assembled in-process.
    fn trace_by_id(&self, path: &str) -> Reply {
        let Some(id) = path
            .strip_prefix("/trace/")
            .and_then(|raw| raw.parse::<u64>().ok())
        else {
            return Reply::json(404, "Not Found", error_body("no such trace"));
        };
        let mut traces = self.tracer.find(id);
        for slot in &self.slots {
            if let Some(obs) = slot.service.observability() {
                traces.extend(obs.tracer().find(id));
            }
        }
        if traces.is_empty() {
            return Reply::json(404, "Not Found", error_body("no such trace"));
        }
        Reply::json(200, "OK", trace_tree_body(id, &traces))
    }

    /// `GET /metrics/windows` at the fleet level: each node's
    /// cumulative telemetry fold plus the deterministic fleet merge —
    /// the capacity planner's input contract, node-count-invariant for
    /// a fixed request multiset.
    fn windows(&self) -> Reply {
        let nodes: Vec<(usize, WindowAccum)> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.service
                    .observability()
                    .map(|obs| (slot.id, obs.windows().cumulative()))
            })
            .collect();
        let doc = fleet_windows_document(&nodes, self.now_us() / 1_000)
            .with_str("strategy", self.strategy.label())
            .with_int("epoch", self.epoch() as i64);
        Reply::json(200, "OK", doc.render())
    }

    /// `GET /events?since=seq`: the fleet control-plane event log
    /// (epoch publishes, fence/unfence, node deaths, drains). With
    /// `?node=i`, the named node's own log instead — planner resizes,
    /// forecast regens, and tuner nudges land there, so the fleet
    /// endpoint surfaces every control decision in the cluster.
    fn events_reply(&self, request: &Request) -> Reply {
        let since = query_param(request, "since")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        if let Some(raw) = query_param(request, "node") {
            let Ok(id) = raw.parse::<usize>() else {
                return Reply::json(400, "Bad Request", error_body("bad node index"));
            };
            let Some(slot) = self.slots.get(id) else {
                return Reply::json(404, "Not Found", error_body(&format!("no node {id}")));
            };
            let Some(obs) = slot.service.observability() else {
                return Reply::json(404, "Not Found", error_body("observability disabled"));
            };
            let log = obs.events();
            let doc = events_document(&log.since(since), log.last_seq(), log.dropped())
                .with_str("scope", &slot.name());
            return Reply::json(200, "OK", doc.render());
        }
        let events = self.events.since(since);
        let doc = events_document(&events, self.events.last_seq(), self.events.dropped())
            .with_str("scope", "fleet");
        Reply::json(200, "OK", doc.render())
    }

    /// `GET /planner` at the fleet level: every node's capacity-planner
    /// status side by side, plus fleet-wide provisioning totals. 404
    /// when no node runs a planner.
    fn planner_reply(&self) -> Reply {
        let mut nodes = JsonObject::new();
        let mut configured = 0i64;
        let mut pool_workers = 0i64;
        let mut resizes = 0i64;
        let mut mix_regens = 0i64;
        for slot in &self.slots {
            if let Some(status) = slot.service.capacity_status() {
                configured += 1;
                pool_workers += status.pool_workers as i64;
                resizes += status.planner.resizes as i64;
                mix_regens += status.mix_regens as i64;
                nodes = nodes.with(&slot.name(), Json::Object(capacity_object(&status)));
            }
        }
        if configured == 0 {
            return Reply::json(404, "Not Found", error_body("planner disabled"));
        }
        let doc = JsonObject::new()
            .with_str("scope", "fleet")
            .with_int("epoch", self.epoch() as i64)
            .with_int("planned_nodes", configured)
            .with_int("pool_workers", pool_workers)
            .with_int("resizes", resizes)
            .with_int("mix_regens", mix_regens)
            .with("nodes", Json::Object(nodes));
        Reply::json(200, "OK", doc.render())
    }

    /// `GET /healthz` at the fleet level: `200 ok` while every node is
    /// up; degraded JSON naming the unhealthy nodes while at least one
    /// node still serves; `503` when none do.
    fn healthz(&self) -> Reply {
        let states = self.node_states();
        let healthy = states.iter().filter(|s| **s == NodeState::Up).count();
        if healthy == states.len() {
            return Reply {
                status: 200,
                reason: "OK",
                content_type: "text/plain",
                body: format!("ok ({healthy} nodes)\n"),
                headers: Vec::new(),
            };
        }
        let name = |wanted: NodeState| {
            Json::Array(
                self.slots
                    .iter()
                    .filter(|s| s.state() == wanted)
                    .map(|s| Json::Str(s.name()))
                    .collect(),
            )
        };
        let body = JsonObject::new()
            .with_str(
                "status",
                if healthy == 0 {
                    "unavailable"
                } else {
                    "degraded"
                },
            )
            .with_int("healthy", healthy as i64)
            .with_int("epoch", self.epoch() as i64)
            .with("down", name(NodeState::Down))
            .with("fenced", name(NodeState::Fenced))
            .with("draining", name(NodeState::Draining))
            .render();
        if healthy == 0 {
            Reply::json(503, "Service Unavailable", body)
        } else {
            Reply::json(200, "OK", body)
        }
    }

    /// The fleet metrics document: routing counters, per-node health
    /// and epochs, and the closed-form billing aggregate whose
    /// `totals` subtree is bit-identical at any node count.
    fn metrics(&self) -> Reply {
        let mut nodes = JsonObject::new();
        for slot in &self.slots {
            nodes = nodes.with(
                &slot.name(),
                Json::Object(
                    JsonObject::new()
                        .with_str("state", slot.state().label())
                        .with_int("epoch", slot.service.rules_epoch() as i64)
                        .with_int("weight", i64::from(slot.weight))
                        .with_int("served", slot.served.load(Ordering::SeqCst) as i64)
                        .with_int("failures", slot.failures.load(Ordering::SeqCst) as i64)
                        .with_str("addr", &slot.addr.read().to_string()),
                ),
            );
        }
        let fenced = Json::Array(
            self.slots
                .iter()
                .filter(|s| s.state() == NodeState::Fenced)
                .map(|s| Json::Str(s.name()))
                .collect(),
        );
        let mut totals = JsonObject::new();
        for ((objective, milli), (requests, revenue)) in aggregate_billing(&self.slots) {
            totals = totals.with(
                &format!("{objective}/{:.3}", milli as f64 / 1000.0),
                Json::Object(
                    JsonObject::new()
                        .with_int("requests", requests as i64)
                        .with_num("revenue_usd", revenue),
                ),
            );
        }
        let doc = JsonObject::new()
            .with_str("service", "toltiers-fleet")
            .with_str("strategy", self.strategy.label())
            .with_int("epoch", self.epoch() as i64)
            .with_int("nodes", self.slots.len() as i64)
            .with_int("proxied", self.proxied() as i64)
            .with_int("failovers", self.failovers() as i64)
            .with_int("fence_events", self.fence_events() as i64)
            .with("fenced", fenced)
            .with("node_states", Json::Object(nodes))
            .with(
                "billing",
                Json::Object(JsonObject::new().with("totals", Json::Object(totals))),
            );
        Reply::json(200, "OK", doc.render())
    }

    /// `POST /drain?node=i`: relay a drain to one node and take it out
    /// of rotation; without `node`, drain the front tier itself.
    fn drain(&self, request: &Request, shutdown: &AtomicBool) -> Reply {
        let node = request
            .target
            .split_once('?')
            .and_then(|(_, q)| q.split('&').find_map(|kv| kv.strip_prefix("node=")))
            .map(|v| v.parse::<usize>());
        match node {
            None => {
                shutdown.store(true, Ordering::SeqCst);
                Reply::json(
                    202,
                    "Accepted",
                    JsonObject::new()
                        .with("draining", Json::Bool(true))
                        .with_int("in_flight", 0)
                        .with_int("epoch", self.epoch() as i64)
                        .with_str("node", "front")
                        .render(),
                )
            }
            Some(Err(_)) => Reply::json(400, "Bad Request", error_body("bad node index")),
            Some(Ok(id)) if id >= self.slots.len() => {
                Reply::json(404, "Not Found", error_body(&format!("no node {id}")))
            }
            Some(Ok(id)) => {
                let slot = &self.slots[id];
                let wire = b"POST /drain HTTP/1.1\r\nConnection: close\r\n\r\n";
                let addr = *slot.addr.read();
                let relayed = ProxyConn::open(addr, self.peer_timeout)
                    .and_then(|mut conn| conn.exchange(wire, &self.limits));
                match relayed {
                    Ok(response) => {
                        slot.draining.store(true, Ordering::SeqCst);
                        slot.drop_pool();
                        self.event("drain", format!("{} draining on request", slot.name()));
                        relay(slot, &response)
                    }
                    Err(_) => {
                        slot.down.store(true, Ordering::SeqCst);
                        Reply::json(
                            503,
                            "Service Unavailable",
                            error_body(&format!("{} unreachable", slot.name())),
                        )
                    }
                }
            }
        }
    }
}

/// Convert a node's wire response into the front tier's reply,
/// preserving the protocol headers and naming the serving node.
fn relay(slot: &NodeSlot, response: &Response) -> Reply {
    let content_type = match response.header("content-type") {
        Some(v) if v.starts_with("text/plain") => "text/plain",
        _ => "application/json",
    };
    let mut reply = Reply {
        status: response.status,
        reason: reason_for(response.status),
        content_type,
        body: response.text(),
        headers: Vec::new(),
    };
    for known in [
        RULES_EPOCH_HEADER,
        "Retry-After",
        "Brownout",
        "X-Cache",
        "X-Cache-Match",
    ] {
        if let Some(value) = response.header(known) {
            reply = reply.with_header(known, value.to_string());
        }
    }
    reply.with_header("Served-By", slot.name())
}

impl HttpHandler for FrontTier {
    fn handle(&self, request: &Request, shutdown: &AtomicBool) -> Reply {
        match (request.method.as_str(), request.path()) {
            ("POST", "/compute") => self.proxy_compute(request),
            ("GET", "/healthz") | ("HEAD", "/healthz") => self.healthz(),
            ("GET", "/metrics/windows") | ("HEAD", "/metrics/windows") => self.windows(),
            ("GET", "/events") | ("HEAD", "/events") => self.events_reply(request),
            ("GET", "/planner") | ("HEAD", "/planner") => self.planner_reply(),
            ("GET", "/metrics")
            | ("HEAD", "/metrics")
            | ("GET", "/cluster")
            | ("HEAD", "/cluster") => self.metrics(),
            ("GET", path) | ("HEAD", path) if path.starts_with("/trace/") => self.trace_by_id(path),
            ("POST", "/drain") => self.drain(request, shutdown),
            (_, "/compute")
            | (_, "/healthz")
            | (_, "/metrics")
            | (_, "/metrics/windows")
            | (_, "/events")
            | (_, "/planner")
            | (_, "/cluster")
            | (_, "/drain") => Reply::json(
                405,
                "Method Not Allowed",
                error_body(&format!(
                    "method {} not allowed for {}",
                    request.method,
                    request.path()
                )),
            ),
            (_, path) => Reply::json(
                404,
                "Not Found",
                error_body(&format!("no route for {path}")),
            ),
        }
    }

    /// The front tier's heartbeat is the epoch probe: any node whose
    /// adopted epoch trails the fleet is fenced (it missed a
    /// broadcast), and a fenced node that has caught back up is
    /// unfenced. Runs every idle tick (~2ms), far inside one SLO
    /// sentinel window, so a deliberately stale node is fenced within
    /// a window of going stale.
    fn on_idle(&self) {
        let fleet_epoch = self.epoch();
        for slot in &self.slots {
            if slot.down.load(Ordering::SeqCst) || slot.draining.load(Ordering::SeqCst) {
                continue;
            }
            let node_epoch = slot.service.rules_epoch();
            if node_epoch < fleet_epoch {
                if !slot.fenced.swap(true, Ordering::SeqCst) {
                    self.fence_events.fetch_add(1, Ordering::SeqCst);
                    self.event(
                        "fence",
                        format!(
                            "{} at epoch {node_epoch}, fleet at {fleet_epoch}",
                            slot.name()
                        ),
                    );
                }
            } else if slot.fenced.swap(false, Ordering::SeqCst) {
                self.event(
                    "unfence",
                    format!("{} re-adopted epoch {node_epoch}", slot.name()),
                );
            }
        }
    }
}

/// Per-tier `(requests, revenue)` aggregated across nodes. Request
/// counts add exactly (integers); revenue is derived closed-form as
/// `count × unit price`, so the aggregate is invariant under *any*
/// partition of the same request multiset across nodes — the
/// float-fold order inside each node never leaks into the fleet total.
fn aggregate_billing(slots: &[Arc<NodeSlot>]) -> BTreeMap<(String, u32), (usize, f64)> {
    let mut totals: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for slot in slots {
        for (key, tier) in &slot.service.snapshot().billing.tiers {
            *totals.entry(key.clone()).or_insert(0) += tier.requests;
        }
    }
    totals
        .into_iter()
        .map(|((objective, milli), requests)| {
            let price = slots[0]
                .service
                .schedule()
                .price_for(milli as f64 / 1000.0)
                .as_dollars();
            ((objective, milli), (requests, requests as f64 * price))
        })
        .collect()
}

/// A running fleet: N replica nodes, the front tier, and the control
/// plane (rules broadcast, chaos operations, billing aggregation).
pub struct Fleet {
    slots: Vec<Arc<NodeSlot>>,
    front: Arc<FrontTier>,
    front_running: Option<RunningServer>,
    epoch: Arc<AtomicU64>,
    matrix: Arc<ProfileMatrix>,
    config: FleetConfig,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("nodes", &self.slots.len())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Build and boot a fleet: one shared demo deployment, N replica
    /// services each behind its own loopback server, and the front
    /// tier listening on its own ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding any server.
    ///
    /// # Panics
    ///
    /// Panics if `config.nodes == 0`.
    pub fn launch(config: FleetConfig) -> io::Result<Fleet> {
        assert!(config.nodes > 0, "a fleet needs at least one node");
        let matrix = Arc::new(demo_matrix(config.payloads, config.seed));
        let epoch = Arc::new(AtomicU64::new(1));
        let mut slots = Vec::with_capacity(config.nodes);
        for id in 0..config.nodes {
            let service = Arc::new(ComputeService::new(
                Arc::clone(&matrix),
                demo_frontend(&matrix, config.seed),
                ServiceConfig {
                    node_id: id,
                    ..config.service.clone()
                },
            ));
            let server = Server::bind(
                "127.0.0.1:0",
                Arc::clone(&service),
                config.node_server.clone(),
            )?;
            let addr = server.local_addr();
            let weight = config.weights.get(id).copied().unwrap_or(1).max(1);
            slots.push(Arc::new(NodeSlot {
                id,
                weight,
                service,
                addr: RwLock::new(addr),
                running: Mutex::new(Some(server.spawn())),
                down: AtomicBool::new(false),
                fenced: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                part_data: AtomicBool::new(false),
                part_control: AtomicBool::new(false),
                served: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                pool: Mutex::new(Vec::new()),
            }));
        }
        let front = Arc::new(FrontTier {
            wrr: Mutex::new(vec![0; slots.len()]),
            slots: slots.clone(),
            strategy: config.strategy,
            epoch: Arc::clone(&epoch),
            limits: config.front_server.limits,
            peer_timeout: config.front_server.peer_read_timeout,
            rr_cursor: AtomicUsize::new(0),
            proxied: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            fence_events: AtomicU64::new(0),
            tracer: Tracer::new(config.service.obs.trace_capacity),
            events: EventLog::new(config.service.obs.event_capacity),
            boot: Instant::now(),
        });
        let front_server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&front),
            config.front_server.clone(),
        )?;
        let front_running = Some(front_server.spawn());
        Ok(Fleet {
            slots,
            front,
            front_running,
            epoch,
            matrix,
            config,
        })
    }

    /// The front tier's listening address — where clients point.
    pub fn front_addr(&self) -> SocketAddr {
        self.front_running
            .as_ref()
            .map(RunningServer::addr)
            .expect("front tier is running")
    }

    /// The front tier router (health states, counters).
    pub fn front(&self) -> &Arc<FrontTier> {
        &self.front
    }

    /// The fleet's current rules epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of nodes (in any state).
    pub fn nodes(&self) -> usize {
        self.slots.len()
    }

    /// Node `id`'s service (billing snapshots, epoch checks).
    pub fn node_service(&self, id: usize) -> &Arc<ComputeService> {
        &self.slots[id].service
    }

    /// Node `id`'s current listening address.
    pub fn node_addr(&self, id: usize) -> SocketAddr {
        *self.slots[id].addr.read()
    }

    /// Kill node `id`: pooled connections are dropped and its server
    /// stops. The front tier is *not* told — it discovers the death
    /// the way a real router would, by a proxy attempt failing, and
    /// fails the request over. In-flight requests finish first (the
    /// server drains before its threads join, so TCP delivers their
    /// responses), and a request whose connect fails was never
    /// executed — a crash therefore never loses or double-bills.
    pub fn crash_node(&self, id: usize) {
        let slot = &self.slots[id];
        slot.drop_pool();
        if let Some(running) = slot.running.lock().take() {
            let _ = running.stop();
        }
        self.front
            .event("node_crash", format!("{} killed (chaos)", slot.name()));
    }

    /// Restart a crashed node on a fresh port with its state intact,
    /// and hand it the current rules under the current epoch so it
    /// rejoins unfenced.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the new bind.
    pub fn restart_node(&self, id: usize) -> io::Result<()> {
        let slot = &self.slots[id];
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&slot.service),
            self.config.node_server.clone(),
        )?;
        *slot.addr.write() = server.local_addr();
        *slot.running.lock() = Some(server.spawn());
        if !slot.part_control.load(Ordering::SeqCst) {
            slot.service
                .adopt_rules(demo_frontend(&self.matrix, self.config.seed), self.epoch());
        }
        slot.fenced.store(false, Ordering::SeqCst);
        slot.draining.store(false, Ordering::SeqCst);
        slot.down.store(false, Ordering::SeqCst);
        self.front.event(
            "node_restart",
            format!("{} back at {}", slot.name(), slot.addr.read()),
        );
        Ok(())
    }

    /// Sever or heal the front↔node data path (requests fail on the
    /// wire; the node itself keeps running).
    pub fn partition_data(&self, id: usize, severed: bool) {
        let slot = &self.slots[id];
        slot.part_data.store(severed, Ordering::SeqCst);
        if severed {
            slot.drop_pool();
        } else {
            // A healed node is reachable again; let routing rediscover
            // it.
            slot.down.store(false, Ordering::SeqCst);
        }
    }

    /// Sever or heal the control path: while severed the node misses
    /// every [`Fleet::broadcast_rules`] and drifts to a stale epoch.
    pub fn partition_control(&self, id: usize, severed: bool) {
        self.slots[id].part_control.store(severed, Ordering::SeqCst);
    }

    /// Broadcast freshly generated routing rules to every reachable
    /// node under a new fleet epoch (the cluster-wide form of the PR-5
    /// supervisor hot-swap). Rules are generated once and installed on
    /// the nodes *before* the fleet epoch is published — a node may
    /// briefly run ahead of the fleet (harmless; the fence only
    /// triggers on nodes running behind), but a healthy node is never
    /// transiently fenced mid-rollout. Nodes behind a control
    /// partition or down are skipped — the front tier's probe fences
    /// them until they re-adopt. Returns the new epoch.
    pub fn broadcast_rules(&self) -> u64 {
        let epoch = self.epoch.load(Ordering::SeqCst) + 1;
        let frontend = demo_frontend(&self.matrix, self.config.seed);
        // Fence the shared result cache first: the purge must land
        // before any node installs (and starts serving under) the new
        // rules, so no node can answer a post-epoch request with a
        // pre-epoch cached entry. Skipped nodes are epoch-fenced by
        // the same advance — their lookups go Stale until re-adopt.
        if let Some(cache) = &self.config.service.cache {
            cache.purge_to_epoch(epoch);
        }
        let mut adopted = 0usize;
        for slot in &self.slots {
            if slot.part_control.load(Ordering::SeqCst) || slot.down.load(Ordering::SeqCst) {
                continue;
            }
            slot.service.adopt_rules(frontend.clone(), epoch);
            adopted += 1;
        }
        self.epoch.store(epoch, Ordering::SeqCst);
        self.front.event(
            "epoch_publish",
            format!("rules epoch {epoch} published to {adopted} nodes"),
        );
        epoch
    }

    /// Fleet-wide per-tier billing:
    /// `(objective, tolerance-milli) → (requests, revenue_usd)`.
    /// Request counts add exactly across nodes; revenue is closed-form
    /// `count × unit price`, so a fixed request multiset yields
    /// bit-identical totals at any node count, thread count, or
    /// failover history.
    pub fn billing_totals(&self) -> BTreeMap<(String, u32), (usize, f64)> {
        aggregate_billing(&self.slots)
    }

    /// Stop the front tier, then every node, surfacing the first
    /// error.
    ///
    /// # Errors
    ///
    /// Propagates the first server-thread error.
    pub fn shutdown(mut self) -> io::Result<()> {
        let mut result = Ok(());
        if let Some(front) = self.front_running.take() {
            result = front.stop();
        }
        for slot in &self.slots {
            if let Some(running) = slot.running.lock().take() {
                let stopped = running.stop();
                if result.is_ok() {
                    result = stopped;
                }
            }
        }
        result
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        if let Some(front) = self.front_running.take() {
            let _ = front.stop();
        }
        for slot in &self.slots {
            if let Some(running) = slot.running.lock().take() {
                let _ = running.stop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{run_load, LoadConfig};

    fn small_fleet(nodes: usize, strategy: RouteStrategy) -> Fleet {
        let mut config = FleetConfig::defaults(nodes);
        config.payloads = 60;
        config.seed = 9;
        config.strategy = strategy;
        Fleet::launch(config).expect("fleet boots")
    }

    #[test]
    fn round_robin_spreads_and_failover_pins() {
        let fleet = small_fleet(3, RouteStrategy::RoundRobin);
        let report = run_load(fleet.front_addr(), &LoadConfig::closed(90, 3, 60, 5)).expect("load");
        assert_eq!(report.ok, 90);
        let served: Vec<u64> = fleet
            .slots
            .iter()
            .map(|s| s.served.load(Ordering::SeqCst))
            .collect();
        assert_eq!(served.iter().sum::<u64>(), 90);
        // Strict requests pin to node 0; tolerant ones rotate, so
        // every node must have seen work.
        assert!(
            served.iter().all(|&n| n > 0),
            "round-robin must spread: {served:?}"
        );
        fleet.shutdown().expect("clean shutdown");
    }

    #[test]
    fn weighted_routing_respects_weights() {
        let mut config = FleetConfig::defaults(2);
        config.payloads = 60;
        config.seed = 9;
        config.strategy = RouteStrategy::Weighted;
        config.weights = vec![3, 1];
        let fleet = Fleet::launch(config).expect("fleet boots");
        let report = run_load(fleet.front_addr(), &LoadConfig::closed(80, 2, 60, 5)).expect("load");
        assert_eq!(report.ok, 80);
        let a = fleet.slots[0].served.load(Ordering::SeqCst);
        let b = fleet.slots[1].served.load(Ordering::SeqCst);
        assert!(
            a > b,
            "weight 3 node must out-serve weight 1 node: {a} vs {b}"
        );
        fleet.shutdown().expect("clean shutdown");
    }

    #[test]
    fn billing_aggregate_is_node_count_invariant() {
        let totals_at = |nodes: usize| {
            let fleet = small_fleet(nodes, RouteStrategy::RoundRobin);
            let report =
                run_load(fleet.front_addr(), &LoadConfig::closed(120, 4, 60, 11)).expect("load");
            assert_eq!(report.ok, 120);
            let totals = fleet.billing_totals();
            fleet.shutdown().expect("clean shutdown");
            totals
        };
        let one = totals_at(1);
        let three = totals_at(3);
        assert_eq!(one.len(), three.len());
        for (key, (requests, revenue)) in &one {
            let (r3, v3) = three[key];
            assert_eq!(r3, *requests, "requests for {key:?}");
            assert_eq!(
                v3.to_bits(),
                revenue.to_bits(),
                "revenue for {key:?} must be bit-identical"
            );
        }
    }

    #[test]
    fn stale_epoch_nodes_are_fenced_and_recover() {
        let fleet = small_fleet(2, RouteStrategy::RoundRobin);
        fleet.partition_control(1, true);
        let epoch = fleet.broadcast_rules();
        assert_eq!(fleet.node_service(0).rules_epoch(), epoch);
        assert!(
            fleet.node_service(1).rules_epoch() < epoch,
            "node 1 missed it"
        );
        // The front's idle probe fences node 1 (invoke directly — the
        // live accept loop does the same every ~2ms).
        fleet.front().on_idle();
        assert_eq!(fleet.front().node_states()[1], NodeState::Fenced);
        // A direct proxied request stamped with the fleet epoch is
        // refused by the stale node with 409.
        let reply = fleet.front().proxy_compute(&Request {
            method: "POST".into(),
            target: "/compute".into(),
            headers: vec![("Payload".into(), "3".into())],
            body: Vec::new(),
            keep_alive: false,
        });
        assert_eq!(reply.status, 200, "healthy node still serves");
        assert_eq!(reply.header("served-by"), Some("node-0"));
        // Heal and re-broadcast: the node adopts, the probe unfences.
        fleet.partition_control(1, false);
        fleet.broadcast_rules();
        fleet.front().on_idle();
        assert_eq!(fleet.front().node_states()[1], NodeState::Up);
        fleet.shutdown().expect("clean shutdown");
    }

    #[test]
    fn data_partition_downs_a_node_and_heals() {
        let fleet = small_fleet(2, RouteStrategy::RoundRobin);
        fleet.partition_data(1, true);
        let report = run_load(fleet.front_addr(), &LoadConfig::closed(40, 2, 60, 3)).expect("load");
        assert_eq!(report.ok, 40, "failover hides the partition");
        assert_eq!(fleet.front().node_states()[1], NodeState::Down);
        assert!(fleet.front().failovers() > 0);
        fleet.partition_data(1, false);
        let report = run_load(fleet.front_addr(), &LoadConfig::closed(40, 2, 60, 4)).expect("load");
        assert_eq!(report.ok, 40);
        assert_eq!(fleet.front().node_states()[1], NodeState::Up);
        fleet.shutdown().expect("clean shutdown");
    }
}
