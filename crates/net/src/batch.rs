//! Deadline-bounded request coalescing for the reactor engine.
//!
//! Tolerant requests that resolve to the same objective and the same
//! policy are compatible: their accounted outcomes are independent pure
//! functions of `(policy, payload)`, so a group of them can share one
//! vectorized evaluator pass (one executor thread walks the group's
//! completion timeline) instead of occupying a model-pool slot each.
//! The batcher
//! holds such requests for a *formation deadline* proportional to the
//! loosest thing the customer asked for — a tolerance-0 request never
//! waits here at all (the service bypasses the batcher entirely below
//! [`BatchConfig::tolerance_floor`]), and no request waits longer than
//! [`BatchConfig::max_deadline`].
//!
//! Determinism: batching only changes *when* work happens on the wall
//! clock, never *what* is accounted. Each member's settlement runs the
//! same math as the synchronous path, so response bytes and billed
//! totals are bit-identical whether a request was batched, and at any
//! batch composition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the request-coalescing layer. Disabled by default; the
/// reactor engine's bench and e2e configurations switch it on.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Master switch: when `false` the service never constructs a
    /// batcher and every request takes the synchronous path.
    pub enabled: bool,
    /// Requests declaring a tolerance below this never enter the
    /// batcher: strict tiers bought latency, so they bypass the
    /// formation queue entirely.
    pub tolerance_floor: f64,
    /// A group is flushed immediately once it holds this many members.
    pub max_batch: usize,
    /// Formation-deadline slope: a request may wait up to
    /// `tolerance × slack` microseconds for batchmates.
    pub slack_us_per_unit_tolerance: u64,
    /// Hard cap on any formation deadline, however loose the tier.
    pub max_deadline: Duration,
    /// Batch-executor threads (each flushes whole groups).
    pub workers: usize,
}

impl BatchConfig {
    /// Disabled, with the tuning the bench and e2e suites use once
    /// they flip `enabled`: floor 0.005, batches of 32, 10 ms of
    /// formation slack per unit tolerance capped at 2 ms, two
    /// executors.
    pub fn defaults() -> Self {
        BatchConfig {
            enabled: false,
            tolerance_floor: 0.005,
            max_batch: 32,
            slack_us_per_unit_tolerance: 10_000,
            max_deadline: Duration::from_millis(2),
            workers: 2,
        }
    }

    /// How long a request at `tolerance` may wait for batchmates:
    /// `None` below the floor (strict tiers bypass the queue), else
    /// `min(max_deadline, tolerance × slack)`.
    pub fn formation_deadline(&self, tolerance: f64) -> Option<Duration> {
        if tolerance < self.tolerance_floor {
            return None;
        }
        let slack_us = (tolerance * self.slack_us_per_unit_tolerance as f64).round() as u64;
        Some(Duration::from_micros(slack_us).min(self.max_deadline))
    }

    /// [`BatchConfig::formation_deadline`] scaled by
    /// `slack_permille / 1000` — the capacity tuner's surge knob:
    /// tightening formation deadlines trades batching efficiency for
    /// queueing headroom without rebuilding the batcher. The
    /// tolerance-floor bypass is unaffected, and a scaled deadline of
    /// zero still batches (the group just flushes immediately).
    pub fn formation_deadline_scaled(
        &self,
        tolerance: f64,
        slack_permille: u32,
    ) -> Option<Duration> {
        self.formation_deadline(tolerance).map(|d| {
            let us = d.as_micros() as u64 * u64::from(slack_permille) / 1000;
            Duration::from_micros(us)
        })
    }
}

/// What makes two in-flight requests batchable: same objective, same
/// resolved policy (rendered via `Debug`, which covers every variant
/// field — versions, thresholds, scheduling, termination).
pub(crate) type GroupKey = (String, String);

/// One request handed to the batcher. `finish(batch_size, waited_us)`
/// runs on a batch-executor thread after the group's shared sleep and
/// performs the member's settlement and reply.
pub(crate) struct BatchItem {
    pub key: GroupKey,
    /// How long this member may wait for batchmates.
    pub deadline_in: Duration,
    /// The member's accounted latency, µs — the flush settles this
    /// member once that much scaled time has passed since enqueue.
    pub sim_latency_us: u64,
    pub finish: Box<dyn FnOnce(u64, u64) + Send>,
}

struct Member {
    enqueued: Instant,
    sim_latency_us: u64,
    finish: Box<dyn FnOnce(u64, u64) + Send>,
}

struct Group {
    members: Vec<Member>,
    /// Earliest member deadline: the whole group flushes when the
    /// tightest member's patience runs out.
    deadline: Instant,
}

struct Shared {
    state: Mutex<BTreeMap<GroupKey, Group>>,
    cv: Condvar,
    max_batch: usize,
    latency_scale: f64,
    shutdown: AtomicBool,
}

/// The coalescing queue plus its executor threads. Dropping the
/// batcher flushes every pending group (no reply is ever lost) and
/// joins the executors.
pub(crate) struct Batcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Batcher {
    pub fn new(config: &BatchConfig, latency_scale: f64) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(BTreeMap::new()),
            cv: Condvar::new(),
            max_batch: config.max_batch.max(1),
            latency_scale,
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tt-batch-{i}"))
                    .spawn(move || worker(&shared))
                    .expect("spawn batch executor")
            })
            .collect();
        Batcher { shared, workers }
    }

    /// Add one request to its compatibility group. The group flushes
    /// when full or when its earliest member deadline expires.
    pub fn enqueue(&self, item: BatchItem) {
        let deadline = Instant::now() + item.deadline_in;
        let wake = {
            let mut state = self.shared.state.lock().expect("batch state lock");
            let group = state.entry(item.key).or_insert_with(|| Group {
                members: Vec::new(),
                deadline,
            });
            let new_group = group.members.is_empty();
            let earlier = deadline < group.deadline;
            if earlier {
                group.deadline = deadline;
            }
            group.members.push(Member {
                enqueued: Instant::now(),
                sim_latency_us: item.sim_latency_us,
                finish: item.finish,
            });
            // A sleeping executor only needs to hear about pushes that
            // change when the next flush is due: a group appearing, a
            // deadline moving earlier, or a group filling up. Joining
            // an existing group ahead of its deadline changes nothing
            // the timed waits don't already cover — and waking one
            // executor (not the whole pool) is enough, because each
            // wake handles at most one flush event.
            new_group || earlier || group.members.len() >= self.shared.max_batch
        };
        if wake {
            self.shared.cv.notify_one();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            // Set the flag under the lock so a worker checking it
            // between its scan and its wait cannot miss the notify.
            let _state = self.shared.state.lock().expect("batch state lock");
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker(shared: &Shared) {
    let mut state = shared.state.lock().expect("batch state lock");
    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let now = Instant::now();
        let ripe = state
            .iter()
            .find(|(_, g)| draining || g.members.len() >= shared.max_batch || g.deadline <= now)
            .map(|(k, _)| k.clone());
        if let Some(key) = ripe {
            let group = state.remove(&key).expect("ripe group present");
            drop(state);
            // This thread is about to go quiet for the whole flush; if
            // more work is already ripe, a peer should pick it up now
            // rather than at its next timed wake. One notify per flush
            // is cheap — the per-enqueue storm is what the wake
            // discipline above avoids.
            shared.cv.notify_one();
            execute(shared, group);
            state = shared.state.lock().expect("batch state lock");
            continue;
        }
        if draining {
            return;
        }
        // Sleep until the earliest group deadline (or a bounded idle
        // tick when empty); enqueue/drop notify the condvar.
        let wait = state
            .values()
            .map(|g| g.deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(50))
            .max(Duration::from_micros(20));
        state = shared
            .cv
            .wait_timeout(state, wait)
            .expect("batch state lock")
            .0;
    }
}

/// Flush one group: the vectorized evaluator pass. The pass occupies
/// this executor for the slowest member's scaled accounted latency;
/// each member settles as its *own* accounted latency elapses, counted
/// from when it joined the queue — formation wait is spent inside the
/// member's latency budget, not stacked on top of it. Only wall timing
/// varies here; every accounted value was fixed before enqueue.
fn execute(shared: &Shared, group: Group) {
    let batch_size = group.members.len() as u64;
    let flushed = Instant::now();
    let mut members: Vec<(Duration, u64, Member)> = group
        .members
        .into_iter()
        .map(|member| {
            let waited = flushed.duration_since(member.enqueued);
            let nominal =
                Duration::from_secs_f64(member.sim_latency_us as f64 * 1e-6 * shared.latency_scale);
            (
                nominal.saturating_sub(waited),
                waited.as_micros() as u64,
                member,
            )
        })
        .collect();
    // Stable by remaining time: ties settle in enqueue order.
    members.sort_by_key(|(remaining, ..)| *remaining);
    for (remaining, waited_us, member) in members {
        let elapsed = flushed.elapsed();
        if remaining > elapsed {
            std::thread::sleep(remaining - elapsed);
        }
        (member.finish)(batch_size, waited_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn formation_deadline_scales_with_tolerance_and_caps() {
        let config = BatchConfig::defaults();
        assert_eq!(config.formation_deadline(0.0), None, "strict tier bypasses");
        assert_eq!(config.formation_deadline(0.004), None, "below the floor");
        assert_eq!(
            config.formation_deadline(0.01),
            Some(Duration::from_micros(100))
        );
        assert_eq!(
            config.formation_deadline(0.1),
            Some(Duration::from_micros(1000))
        );
        assert_eq!(
            config.formation_deadline(0.5),
            Some(config.max_deadline),
            "slack is capped"
        );
    }

    fn item(key: &str, deadline: Duration, tx: &mpsc::Sender<(u64, u64)>) -> BatchItem {
        let tx = tx.clone();
        BatchItem {
            key: ("response-time".into(), key.into()),
            deadline_in: deadline,
            sim_latency_us: 10,
            finish: Box::new(move |size, waited| {
                let _ = tx.send((size, waited));
            }),
        }
    }

    #[test]
    fn full_group_flushes_without_waiting_for_the_deadline() {
        let config = BatchConfig {
            enabled: true,
            max_batch: 3,
            ..BatchConfig::defaults()
        };
        let batcher = Batcher::new(&config, 0.0);
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            batcher.enqueue(item("Single { version: 0 }", Duration::from_secs(60), &tx));
        }
        for _ in 0..3 {
            let (size, _) = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("full batch flushes promptly");
            assert_eq!(size, 3);
        }
    }

    #[test]
    fn deadline_flushes_a_partial_group() {
        let batcher = Batcher::new(&BatchConfig::defaults(), 0.0);
        let (tx, rx) = mpsc::channel();
        batcher.enqueue(item("Single { version: 1 }", Duration::from_millis(5), &tx));
        let (size, waited) = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("deadline flushes the lone member");
        assert_eq!(size, 1);
        assert!(waited >= 4_000, "waited ~the deadline, got {waited}µs");
    }

    #[test]
    fn incompatible_groups_never_merge() {
        let config = BatchConfig {
            enabled: true,
            max_batch: 2,
            ..BatchConfig::defaults()
        };
        let batcher = Batcher::new(&config, 0.0);
        let (tx, rx) = mpsc::channel();
        batcher.enqueue(item("Single { version: 0 }", Duration::from_millis(5), &tx));
        batcher.enqueue(item("Single { version: 1 }", Duration::from_millis(5), &tx));
        for _ in 0..2 {
            let (size, _) = rx.recv_timeout(Duration::from_secs(5)).expect("flushed");
            assert_eq!(size, 1, "different policies must not share a batch");
        }
    }

    #[test]
    fn drop_flushes_pending_members() {
        let flushed = Arc::new(AtomicU64::new(0));
        let batcher = Batcher::new(&BatchConfig::defaults(), 0.0);
        for _ in 0..5 {
            let counter = Arc::clone(&flushed);
            batcher.enqueue(BatchItem {
                key: ("cost".into(), "Single { version: 0 }".into()),
                deadline_in: Duration::from_secs(600),
                sim_latency_us: 0,
                finish: Box::new(move |_, _| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }),
            });
        }
        drop(batcher);
        assert_eq!(
            flushed.load(Ordering::SeqCst),
            5,
            "every pending reply settles on shutdown"
        );
    }
}
