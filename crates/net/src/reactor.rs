//! The epoll reactor engine: readiness-driven connection handling.
//!
//! Where the threaded engine pins one worker thread per connection for
//! its whole lifetime, the reactor multiplexes every connection on a
//! single event-loop thread and hands workers nothing but complete,
//! already-parsed requests. The pieces:
//!
//! * **Slab of connection state machines.** Each connection lives in a
//!   slot of a pre-indexed slab and walks `ReadHead → ReadBody →
//!   Dispatched → WriteResponse → KeepAlive`. Tokens carry a
//!   generation stamp so a completion for a closed (and possibly
//!   reused) slot is discarded instead of corrupting a new connection.
//! * **Incremental parsing.** Non-blocking reads feed a
//!   [`RequestAssembler`], which enforces the same `Limits` as the
//!   blocking reader and pops pipelined requests one at a time.
//! * **Backpressure by deregistration, not threads.** While a request
//!   is dispatched the connection's read interest is dropped — the
//!   kernel's receive buffer, not a queue of ours, absorbs a pushy
//!   client. When the slab is full the *listener's* read interest is
//!   dropped, so accept pressure waits in the TCP backlog.
//! * **Asynchronous completion.** Workers receive `(token, request)`
//!   jobs off a bounded channel and answer through
//!   [`HttpHandler::handle_async`]; the serialized response comes back
//!   on a completion list and a wake byte. Response bytes come from the
//!   same `write_response_with` serializer as the threaded engine, so
//!   the two engines are byte-identical on the wire.
//!
//! The event loop doubles as the idle heartbeat: `on_idle` ticks on
//! the same ~2ms cadence the threaded accept loop provides, so the SLO
//! sentinel and control loops behave identically under either engine.

use crate::http::{write_response_with, HttpError, Request, RequestAssembler};
use crate::server::{
    error_body, record_socket_config_failure, HttpHandler, Reply, ReplySink, ServerConfig,
};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tt_epoll::Poller;

/// Token for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading (or waiting for) the request head.
    ReadHead,
    /// Head parsed; body bytes still outstanding.
    ReadBody,
    /// A request is with a worker; further reads are suppressed (and
    /// read interest deregistered lazily if the peer pipelines).
    Dispatched,
    /// A serialized response is draining to the socket.
    WriteResponse,
    /// Between requests on a persistent connection.
    KeepAlive,
}

/// One slab-resident connection.
struct Conn {
    stream: TcpStream,
    generation: u32,
    assembler: RequestAssembler,
    state: ConnState,
    /// Serialized response bytes being written, and the write cursor.
    out: Vec<u8>,
    out_pos: usize,
    /// Wall-clock of the last observed progress (bytes read or
    /// written), for the keep-alive / stalled-writer sweeps.
    last_activity: Instant,
    /// When the current request's first byte arrived; the slow-loris
    /// deadline measures from here and re-arms per request.
    request_started: Option<Instant>,
    close_after_write: bool,
    /// The peer hung up while a request was in flight; deliver (or
    /// attempt) the pending response, then close.
    peer_gone: bool,
    /// The (read, write) interest currently registered with the
    /// poller. Tracking it makes interest changes idempotent: in the
    /// request-per-round-trip common case the registration never moves
    /// off (read, no-write) and no `epoll_ctl` is issued at all. Read
    /// interest is dropped lazily — only when bytes actually arrive
    /// while a request is in flight (see [`Reactor::conn_event`]) —
    /// which is the per-connection backpressure for pipelining peers.
    interest: (bool, bool),
}

/// A finished response travelling from a worker back to the loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// A request travelling from the loop to a worker.
struct Job {
    token: u64,
    request: Request,
}

/// Shared between workers and the event loop: finished responses plus
/// the wake pipe that interrupts `epoll_wait`.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
}

impl Mailbox {
    fn post(&self, completion: Completion) {
        let was_empty = {
            let mut completions = self.completions.lock();
            let was_empty = completions.is_empty();
            completions.push(completion);
            was_empty
        };
        // Only the post that makes the list non-empty needs to wake the
        // loop: the drain swaps the whole vec under the same lock, so a
        // push that lands before the swap is picked up by the wakeup
        // already in flight, and one after it sees an empty list again.
        // One byte is enough; if the pipe is full a wakeup is already
        // pending and WouldBlock is fine.
        if was_empty {
            let _ = (&self.wake_tx).write(&[1u8]);
        }
    }
}

/// Execute one dispatched request against the handler, posting the
/// serialized reply to the mailbox. Shared by the dispatch workers and
/// the loop's inline path for requests the handler promises not to
/// block on ([`HttpHandler::completes_promptly`]).
fn run_job<H: HttpHandler>(
    service: &H,
    shutdown: &Arc<AtomicBool>,
    mailbox: &Arc<Mailbox>,
    Job { token, request }: Job,
) {
    let is_head = request.method == "HEAD";
    let req_keep_alive = request.keep_alive;
    let mailbox = Arc::clone(mailbox);
    let shutdown_for_sink = Arc::clone(shutdown);
    let sink: ReplySink = Box::new(move |reply: Reply| {
        let keep_alive = req_keep_alive && !shutdown_for_sink.load(Ordering::SeqCst);
        mailbox.post(Completion {
            token,
            bytes: serialize_reply(&reply, is_head, keep_alive),
            close: !keep_alive,
        });
    });
    service.handle_async(&request, shutdown, sink);
}

/// Pack a slab index and generation into an epoll token.
fn token_for(index: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | index as u64
}

/// Serialize one reply exactly as the threaded engine would put it on
/// the wire (infallible: the sink is a `Vec`).
fn serialize_reply(reply: &Reply, is_head: bool, keep_alive: bool) -> Vec<u8> {
    let body = if is_head {
        &[][..]
    } else {
        reply.body.as_bytes()
    };
    let mut bytes = Vec::with_capacity(256 + body.len());
    write_response_with(
        &mut bytes,
        reply.status,
        reply.reason,
        reply.content_type,
        &reply.headers,
        body,
        keep_alive,
    )
    .expect("serializing to a Vec cannot fail");
    bytes
}

/// Run the reactor until `shutdown` rises, then drain in-flight
/// connections and return. This is `Server::run` for
/// [`crate::server::Engine::Reactor`].
pub(crate) fn run_reactor<H: HttpHandler>(
    listener: TcpListener,
    service: Arc<H>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;

    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;

    let mailbox = Arc::new(Mailbox {
        completions: Mutex::new(Vec::new()),
        wake_tx,
    });

    // Workers: complete requests in, serialized responses out.
    let (job_tx, job_rx) = crossbeam::channel::bounded::<Job>(config.backlog.max(1));
    let mut workers = Vec::with_capacity(config.http_workers.max(1));
    for _ in 0..config.http_workers.max(1) {
        let rx = job_rx.clone();
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let mailbox = Arc::clone(&mailbox);
        workers.push(std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                run_job(service.as_ref(), &shutdown, &mailbox, job);
            }
        }));
    }
    drop(job_rx);

    let mut reactor = Reactor {
        poller,
        listener,
        slab: Vec::new(),
        free: Vec::new(),
        active: 0,
        generation_counter: 0,
        listener_registered: true,
        config,
        service,
        shutdown,
        mailbox,
        job_tx: Some(job_tx),
        draining: false,
    };

    let mut events = Vec::new();
    let mut wake_buf = [0u8; 64];
    let mut last_tick = Instant::now();
    let mut last_sweep = Instant::now();
    loop {
        reactor.poller.wait(&mut events, 2)?;

        if !reactor.draining && reactor.shutdown.load(Ordering::SeqCst) {
            reactor.begin_drain();
        }

        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => reactor.accept_ready(),
                TOKEN_WAKE => while matches!((&wake_rx).read(&mut wake_buf), Ok(n) if n > 0) {},
                token => reactor.conn_event(token, ev.readable, ev.writable, ev.closed),
            }
        }

        reactor.apply_completions();

        // The idle heartbeat and the timeout sweeps run on wall-clock
        // cadence, not per-event, so a busy loop doesn't spin them.
        if last_tick.elapsed() >= Duration::from_millis(2) {
            reactor.service.on_idle();
            last_tick = Instant::now();
        }
        if last_sweep.elapsed() >= Duration::from_millis(100) {
            reactor.sweep_timeouts();
            last_sweep = Instant::now();
        }

        if reactor.draining && reactor.active == 0 {
            break;
        }
    }

    // Close the job channel and wait the workers out; with the slab
    // empty there are no queued jobs left.
    reactor.job_tx = None;
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}

struct Reactor<H: HttpHandler> {
    poller: Poller,
    listener: TcpListener,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    active: usize,
    generation_counter: u32,
    listener_registered: bool,
    config: ServerConfig,
    service: Arc<H>,
    shutdown: Arc<AtomicBool>,
    mailbox: Arc<Mailbox>,
    job_tx: Option<crossbeam::channel::Sender<Job>>,
    draining: bool,
}

impl<H: HttpHandler> Reactor<H> {
    /// Whether the slot still holds the connection the token refers to.
    fn live(&self, index: usize, generation: u32) -> bool {
        self.slab
            .get(index)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.generation == generation)
    }

    fn state_of(&self, index: usize) -> Option<ConnState> {
        self.slab
            .get(index)
            .and_then(Option::as_ref)
            .map(|conn| conn.state)
    }

    /// Accept until the listener runs dry or the slab fills.
    fn accept_ready(&mut self) {
        while !self.draining && self.active < self.config.max_connections {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let configured = stream
                .set_nonblocking(true)
                .and_then(|()| stream.set_nodelay(true));
            if configured.is_err() {
                // Same policy as the threaded engine's dispatch: a
                // socket that refuses configuration is dropped and
                // counted, never served.
                record_socket_config_failure();
                continue;
            }
            let index = match self.free.pop() {
                Some(index) => index,
                None => {
                    self.slab.push(None);
                    self.slab.len() - 1
                }
            };
            // Generations climb monotonically across the whole reactor;
            // a stale token would need 2^32 intervening connections to
            // collide while its completion is still in flight.
            self.generation_counter = self.generation_counter.wrapping_add(1);
            let generation = self.generation_counter;
            let token = token_for(index, generation);
            if self
                .poller
                .add(stream.as_raw_fd(), token, true, false)
                .is_err()
            {
                self.free.push(index);
                continue;
            }
            self.slab[index] = Some(Conn {
                stream,
                generation,
                assembler: RequestAssembler::new(self.config.limits),
                state: ConnState::KeepAlive,
                out: Vec::new(),
                out_pos: 0,
                last_activity: Instant::now(),
                request_started: None,
                close_after_write: false,
                peer_gone: false,
                interest: (true, false),
            });
            self.active += 1;
            if self.active >= self.config.max_connections {
                self.set_listener_interest(false);
            }
        }
    }

    /// Move a connection's poller registration to (read, write),
    /// skipping the syscall when it is already there.
    fn set_interest(&mut self, index: usize, read: bool, write: bool) {
        let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        if conn.interest == (read, write) {
            return;
        }
        let token = token_for(index, conn.generation);
        let fd = conn.stream.as_raw_fd();
        if self.poller.modify(fd, token, read, write).is_ok() {
            if let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) {
                conn.interest = (read, write);
            }
        }
    }

    fn set_listener_interest(&mut self, on: bool) {
        if self.listener_registered == on || (on && self.draining) {
            return;
        }
        let fd = self.listener.as_raw_fd();
        let ok = if on {
            self.poller.add(fd, TOKEN_LISTENER, true, false).is_ok()
        } else {
            self.poller.delete(fd).is_ok()
        };
        if ok {
            self.listener_registered = on;
        }
    }

    /// Dispatch one readiness event for a connection token.
    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, closed: bool) {
        let index = (token & 0xFFFF_FFFF) as usize;
        let generation = (token >> 32) as u32;
        if !self.live(index, generation) {
            return;
        }
        if writable && self.state_of(index) == Some(ConnState::WriteResponse) {
            self.write_ready(index);
        }
        if !self.live(index, generation) {
            return;
        }
        if readable {
            match self.state_of(index) {
                Some(ConnState::ReadHead | ConnState::ReadBody | ConnState::KeepAlive) => {
                    self.read_ready(index);
                }
                // Bytes arrived while a request is in flight: a
                // pipelining peer has outrun us. Drop read interest now
                // — the lazy half of the dispatch-time backpressure —
                // so level-triggered epoll stops re-reporting the
                // buffered bytes; `finish_response` restores it.
                Some(ConnState::Dispatched | ConnState::WriteResponse) => {
                    let write = self
                        .slab
                        .get(index)
                        .and_then(Option::as_ref)
                        .is_some_and(|conn| conn.interest.1);
                    self.set_interest(index, false, write);
                }
                None => {}
            }
        }
        if !closed || !self.live(index, generation) {
            return;
        }
        match self.state_of(index) {
            // Mid-flight: remember the hang-up; the pending response is
            // still attempted (the peer may only have shut down its
            // write side), then the connection closes. Billing already
            // happened at dispatch, exactly as on the threaded engine.
            Some(ConnState::Dispatched | ConnState::WriteResponse) => {
                if let Some(conn) = self.slab[index].as_mut() {
                    conn.peer_gone = true;
                }
            }
            // At rest or mid-read with nothing more coming: close. The
            // read path above already drained whatever was buffered (a
            // completed request would have moved the state to
            // Dispatched and landed in the arm above).
            _ => self.close(index),
        }
    }

    /// Pull whatever the socket holds into the assembler and advance
    /// the state machine.
    fn read_ready(&mut self, index: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: clean between requests, truncation within —
                    // either way nothing more will arrive, and the
                    // threaded engine answers neither case.
                    self.close(index);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if conn.assembler.is_empty() && conn.request_started.is_none() {
                        conn.request_started = Some(Instant::now());
                    }
                    conn.assembler.push(&buf[..n]);
                    self.advance_parse(index);
                    // Dispatched (or answering an error) means read
                    // interest is off; stop pulling even if more bytes
                    // wait — that is the per-connection backpressure.
                    match self.state_of(index) {
                        Some(ConnState::ReadHead | ConnState::ReadBody | ConnState::KeepAlive) => {}
                        _ => return,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(index);
                    return;
                }
            }
        }
    }

    /// Try to pop a request off the assembler: dispatch it, answer a
    /// parse error, or settle into the right waiting state.
    fn advance_parse(&mut self, index: usize) {
        let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        match conn.assembler.next_request() {
            Ok(Some(request)) => self.dispatch(index, request),
            Ok(None) => {
                conn.state = if conn.assembler.awaiting_body() {
                    ConnState::ReadBody
                } else if conn.assembler.is_empty() {
                    conn.request_started = None;
                    ConnState::KeepAlive
                } else {
                    ConnState::ReadHead
                };
            }
            Err(err) => self.answer_parse_error(index, &err),
        }
    }

    /// Same contract as the threaded engine: a parse error is answered
    /// with its status when one exists, then the connection closes.
    fn answer_parse_error(&mut self, index: usize, err: &HttpError) {
        match err.status() {
            Some((status, reason)) => {
                let reply = Reply::json(status, reason, error_body(&err.to_string()));
                let bytes = serialize_reply(&reply, false, false);
                self.start_write(index, bytes, true);
            }
            None => self.close(index),
        }
    }

    /// Hand a parsed request to the workers (or shed it), deregistering
    /// read interest for the duration — the per-connection backpressure.
    fn dispatch(&mut self, index: usize, request: Request) {
        let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        conn.state = ConnState::Dispatched;
        conn.request_started = None;
        let token = token_for(index, conn.generation);
        // Read interest stays armed for now: `read_ready` already stops
        // pulling once the state leaves the read family, and the
        // readiness handler deregisters lazily if the peer actually
        // pipelines more bytes mid-flight. A request-per-round-trip
        // peer therefore costs zero `epoll_ctl` syscalls per request.
        // Requests the handler promises not to block on run right here
        // on the loop — the dominant batched-compute case costs a few
        // microseconds of routing before parking in the coalescing
        // queue, cheaper than a channel hand-off and a worker wakeup.
        // Their completions (synchronous or batched) funnel through the
        // same mailbox either way.
        if self.job_tx.is_some() && self.service.completes_promptly(&request) {
            run_job(
                self.service.as_ref(),
                &self.shutdown,
                &self.mailbox,
                Job { token, request },
            );
            return;
        }
        let accepted = match self.job_tx.as_ref() {
            Some(tx) => tx.try_send(Job { token, request }).is_ok(),
            None => {
                self.close(index);
                return;
            }
        };
        if !accepted {
            // Queue full: shed inline, mirroring the threaded engine's
            // pool-refusal 503 (connection closes after the reply).
            let reply = self.service.shed();
            let bytes = serialize_reply(&reply, false, false);
            self.start_write(index, bytes, true);
        }
    }

    /// Route each worker completion to its (still-live) connection and
    /// start writing.
    fn apply_completions(&mut self) {
        let completions = std::mem::take(&mut *self.mailbox.completions.lock());
        for completion in completions {
            let index = (completion.token & 0xFFFF_FFFF) as usize;
            let generation = (completion.token >> 32) as u32;
            if self.live(index, generation) && self.state_of(index) == Some(ConnState::Dispatched) {
                self.start_write(index, completion.bytes, completion.close);
            }
        }
    }

    /// Begin (and opportunistically finish) writing a response.
    fn start_write(&mut self, index: usize, bytes: Vec<u8>, close_after: bool) {
        let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        conn.state = ConnState::WriteResponse;
        conn.out = bytes;
        conn.out_pos = 0;
        conn.close_after_write = close_after;
        conn.last_activity = Instant::now();
        self.write_ready(index);
    }

    /// Push buffered response bytes; on WouldBlock, arm write interest.
    fn write_ready(&mut self, index: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(index);
                    return;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(index, false, true);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(index);
                    return;
                }
            }
        }
        self.finish_response(index);
    }

    /// The response fully drained: close, or look for the next request
    /// (pipelined bytes first, then the socket again).
    fn finish_response(&mut self, index: usize) {
        {
            let Some(conn) = self.slab.get_mut(index).and_then(Option::as_mut) else {
                return;
            };
            if conn.close_after_write || conn.peer_gone {
                self.close(index);
                return;
            }
            conn.out = Vec::new();
            conn.out_pos = 0;
            conn.state = ConnState::KeepAlive;
            conn.last_activity = Instant::now();
            if !conn.assembler.is_empty() {
                conn.request_started = Some(Instant::now());
            }
        }
        self.advance_parse(index);
        // If parsing didn't immediately dispatch (or error), the
        // connection is waiting on the socket again: restore read
        // interest if a mid-flight event (pipelined bytes, or a write
        // that hit WouldBlock) dropped it. Level-triggered epoll
        // re-reports anything already queued in the kernel buffer, so
        // nothing is lost by returning to the loop. When the interest
        // never moved — the common request-per-round-trip case — this
        // is a no-op with no syscall.
        if matches!(
            self.state_of(index),
            Some(ConnState::ReadHead | ConnState::ReadBody | ConnState::KeepAlive)
        ) {
            self.set_interest(index, true, false);
        }
    }

    /// Close idle keep-alive connections, slow-loris half-requests, and
    /// stalled writers, on the same clocks the threaded engine uses.
    fn sweep_timeouts(&mut self) {
        let keep_alive = self.config.keep_alive_timeout;
        let deadline = self.config.request_deadline;
        let now = Instant::now();
        for index in 0..self.slab.len() {
            let Some(conn) = self.slab[index].as_ref() else {
                continue;
            };
            let expired = match conn.state {
                ConnState::KeepAlive | ConnState::WriteResponse => {
                    now.duration_since(conn.last_activity) > keep_alive
                }
                ConnState::ReadHead | ConnState::ReadBody => conn
                    .request_started
                    .is_some_and(|start| now.duration_since(start) > deadline),
                ConnState::Dispatched => false,
            };
            if expired {
                self.close(index);
            }
        }
    }

    /// Stop accepting and cut idle connections loose; in-flight
    /// requests finish with `Connection: close` because every sink
    /// consults the shutdown flag.
    fn begin_drain(&mut self) {
        self.set_listener_interest(false);
        self.draining = true;
        for index in 0..self.slab.len() {
            let idle = self.slab[index].as_ref().is_some_and(|conn| {
                conn.state == ConnState::KeepAlive && conn.assembler.is_empty()
            });
            if idle {
                self.close(index);
            }
        }
    }

    fn close(&mut self, index: usize) {
        if let Some(conn) = self.slab.get_mut(index).and_then(Option::take) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            drop(conn);
            self.free.push(index);
            self.active -= 1;
            if self.active < self.config.max_connections {
                self.set_listener_interest(true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::demo::demo_service;
    use crate::http::{read_response, Limits};
    use crate::server::{Engine, Server, ServerConfig};
    use crate::service::{ComputeService, ServiceConfig};
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    fn reactor_server(service: Arc<ComputeService>) -> crate::server::RunningServer {
        Server::bind(
            "127.0.0.1:0",
            service,
            ServerConfig {
                engine: Engine::Reactor,
                keep_alive_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .expect("bind")
        .spawn()
    }

    #[test]
    fn round_trip_keep_alive_and_graceful_stop() {
        let running = reactor_server(Arc::new(demo_service(60, 9, ServiceConfig::defaults())));
        let mut stream = TcpStream::connect(running.addr()).unwrap();
        stream
            .write_all(
                b"POST /compute HTTP/1.1\r\nTolerance: 0.10\r\nObjective: response-time\r\n\
                  Payload: 5\r\nContent-Length: 0\r\n\r\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 200);
        assert!(response.text().contains("\"answered_by\""));

        // Keep-alive: a second request rides the same connection.
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 200);

        // HEAD suppresses the body but carries the same headers.
        stream.write_all(b"HEAD /metrics HTTP/1.1\r\n\r\n").unwrap();
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 200);
        assert!(response.body.is_empty());

        drop(stream);
        running.stop().unwrap();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let running = reactor_server(Arc::new(demo_service(60, 9, ServiceConfig::defaults())));
        let mut stream = TcpStream::connect(running.addr()).unwrap();
        // Two compute requests and a healthz in one write.
        let mut wire = Vec::new();
        for payload in [3, 4] {
            wire.extend_from_slice(
                format!(
                    "POST /compute HTTP/1.1\r\nTolerance: 0.05\r\nObjective: cost\r\n\
                     Payload: {payload}\r\nContent-Length: 0\r\n\r\n"
                )
                .as_bytes(),
            );
        }
        wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        stream.write_all(&wire).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for expected_payload in [3, 4] {
            let response = read_response(&mut reader, &Limits::default()).unwrap();
            assert_eq!(response.status, 200);
            assert!(
                response
                    .text()
                    .contains(&format!("\"payload\": {expected_payload}")),
                "pipelined responses must come back in request order"
            );
        }
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 200);
    }

    #[test]
    fn parse_errors_are_answered_then_closed() {
        let running = reactor_server(Arc::new(demo_service(60, 9, ServiceConfig::defaults())));
        let mut stream = TcpStream::connect(running.addr()).unwrap();
        stream.write_all(b"BREW /compute HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 501);
    }

    #[test]
    fn batching_enabled_serves_identical_response_fields() {
        let mut batched = ServiceConfig::defaults();
        batched.batch.enabled = true;
        let plain = Arc::new(demo_service(60, 9, ServiceConfig::defaults()));
        let running_plain = reactor_server(Arc::clone(&plain));
        let running_batched = Arc::new(demo_service(60, 9, batched));
        let running_batched = reactor_server(running_batched);

        let ask = |addr: std::net::SocketAddr| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"POST /compute HTTP/1.1\r\nTolerance: 0.10\r\nObjective: response-time\r\n\
                      Payload: 7\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                )
                .unwrap();
            let mut reader = BufReader::new(stream);
            let response = read_response(&mut reader, &Limits::default()).unwrap();
            assert_eq!(response.status, 200);
            response.text().to_string()
        };
        let a = ask(running_plain.addr());
        let b = ask(running_batched.addr());
        // Identical modulo the request id (tracer serial numbers differ
        // across server instances).
        let strip =
            |s: &str| -> String { s.split(", \"request_id\"").next().unwrap_or(s).to_string() };
        assert_eq!(
            strip(&a),
            strip(&b),
            "batch membership must not change any response field"
        );
    }
}
