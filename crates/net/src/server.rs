//! The HTTP server: bounded accept/dispatch, routing, and graceful
//! shutdown.
//!
//! Architecture:
//!
//! * The accept loop runs on one thread with a non-blocking listener,
//!   polling a shutdown flag between accepts.
//! * Each accepted connection is dispatched to a bounded
//!   [`tt_core::TaskPool`]; when the pool's queue is full the server
//!   answers `503` inline instead of queueing unboundedly — load
//!   shedding at the front door, mirroring what the circuit breakers
//!   do per model pool behind it.
//! * Connections are persistent (HTTP/1.1 keep-alive) with an idle
//!   timeout; one task owns one connection for its lifetime.
//! * Graceful shutdown ([`ShutdownHandle::initiate`], or `POST
//!   /drain`): the accept loop stops taking new connections, every
//!   response switches to `Connection: close`, idle connections are
//!   reaped by the keep-alive timeout, and [`Server::run`] returns
//!   only after the task pool has drained — in-flight requests always
//!   get their answer.
//!
//! Routes: `POST /compute` (the paper's API), `GET /healthz` (which
//! degrades to `503` naming the tiers the SLO sentinel rules out of
//! contract), `GET /stats`, `GET /metrics`, `GET /trace/recent`,
//! `POST /drain`. The accept loop doubles as the sentinel's heartbeat:
//! idle polls tick the sliding SLO window.

use crate::admission::{AdmissionController, AdmissionDecision, BrownoutLevel};
use crate::doc::{capacity_object, events_document, windows_document};
use crate::http::{
    read_request, write_response, write_response_with, Limits, Request, RULES_EPOCH_HEADER,
    TRACE_ID_HEADER,
};
use crate::metrics::{admission_object, metrics_document, supervisor_object};
use crate::obs::CacheEvent;
use crate::service::{CacheAdmitTicket, CacheServed, ComputeOutcome, ComputeService, ServiceError};
use crate::stats::stats_document;
use parking_lot::Mutex;
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tt_bench::perfjson::{Json, JsonObject};
use tt_core::policy::Policy;
use tt_core::request::ServiceRequest;
use tt_core::TaskPool;
use tt_obs::{AdmissionOutcome, TraceHandle};
use tt_serve::frontend::parse_annotations;

/// How long any component of the stack waits on a peer's response
/// before giving up on the connection: the proxy tier reading from a
/// node, the load generator reading from a server. One shared bound so
/// a hung peer is detected on the same clock everywhere.
pub const PEER_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Which connection-handling engine [`Server::run`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Thread-per-connection over a bounded task pool: one worker owns
    /// one connection for its lifetime. The default, and the only
    /// engine on non-Linux targets.
    #[default]
    Threaded,
    /// Readiness-driven epoll reactor (`crate::reactor`): one thread
    /// multiplexes every connection, workers only ever see complete
    /// requests. Linux only — elsewhere this silently falls back to
    /// `Threaded` so configs stay portable.
    Reactor,
}

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Wire-parsing limits (header/body bounds).
    pub limits: Limits,
    /// Connection-handling worker threads.
    pub http_workers: usize,
    /// Accepted connections that may wait for a worker before the
    /// server starts shedding with `503`.
    pub backlog: usize,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
    /// Hard ceiling on reading a single request. A peer may idle
    /// between requests (bounded by `keep_alive_timeout`), but once
    /// bytes of a request start arriving the whole head+body must
    /// complete within this window — the slow-loris defense.
    pub request_deadline: Duration,
    /// Connection-handling engine (threaded vs epoll reactor).
    pub engine: Engine,
    /// Reactor only: open connections the reactor holds before it
    /// stops accepting (the listener's read interest is deregistered —
    /// backpressure — until a slot frees up). The threaded engine's
    /// equivalent bound is `http_workers + backlog`.
    pub max_connections: usize,
    /// How long outbound client-side reads (proxy tier → node) wait
    /// before declaring the peer hung. Defaults to
    /// [`PEER_READ_TIMEOUT`].
    pub peer_read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            limits: Limits::default(),
            http_workers: 4,
            backlog: 64,
            keep_alive_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(10),
            engine: Engine::Threaded,
            max_connections: 1024,
            peer_read_timeout: PEER_READ_TIMEOUT,
        }
    }
}

/// Process-wide count of connections dropped because a just-accepted
/// socket refused its configuration (`set_nodelay`, timeouts, …).
/// Surfaced in `/metrics` as `socket_config_failures`; normally zero,
/// and any non-zero value means connections were closed at the door
/// rather than served with unbounded blocking reads.
static SOCKET_CONFIG_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Total connections dropped at accept time over this process's life
/// because socket configuration failed.
pub fn socket_config_failures() -> u64 {
    SOCKET_CONFIG_FAILURES.load(Ordering::Relaxed)
}

/// Count one dropped-at-the-door connection (reactor and threaded
/// engines both report here).
pub(crate) fn record_socket_config_failure() {
    SOCKET_CONFIG_FAILURES.fetch_add(1, Ordering::Relaxed);
}

/// Remote control for a running server: flip the flag and the accept
/// loop begins a graceful drain.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Begin graceful shutdown (idempotent).
    pub fn initiate(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Completion callback for [`HttpHandler::handle_async`]: invoked
/// exactly once with the finished reply, possibly from a different
/// thread after `handle_async` itself has returned.
pub type ReplySink = Box<dyn FnOnce(Reply) + Send + 'static>;

/// What a [`Server`] serves. The accept/dispatch/keep-alive machinery
/// is identical for a compute node and for a fleet's front-tier
/// router; only the three hooks below differ.
pub trait HttpHandler: Send + Sync + 'static {
    /// Answer one parsed request. `shutdown` is the server's drain
    /// flag; a handler may raise it (`POST /drain`).
    fn handle(&self, request: &Request, shutdown: &AtomicBool) -> Reply;

    /// Answer one request through a completion callback instead of a
    /// return value, freeing the calling worker while the reply is
    /// deferred (the batching compute path parks requests here until a
    /// batch forms). The default implementation completes synchronously
    /// via [`HttpHandler::handle`]; the reactor engine drives this
    /// entry point for every request.
    fn handle_async(&self, request: &Request, shutdown: &AtomicBool, done: ReplySink) {
        done(self.handle(request, shutdown));
    }

    /// Whether [`HttpHandler::handle_async`] for this request returns
    /// without blocking the calling thread — any wait deferred to a
    /// background executor. The reactor runs such requests inline on
    /// its event loop, skipping the worker hand-off (and its context
    /// switch); a handler must answer `false` for anything that may
    /// sleep, so the conservative default is that nothing is prompt.
    fn completes_promptly(&self, _request: &Request) -> bool {
        false
    }

    /// Heartbeat from the idle accept loop (~every 2ms while no
    /// connection is pending). Control loops live here.
    fn on_idle(&self) {}

    /// The reply written inline when the connection pool refuses a
    /// new connection — front-door load shedding.
    fn shed(&self) -> Reply {
        Reply::json(
            503,
            "Service Unavailable",
            error_body("server saturated, retry later"),
        )
    }
}

/// A bound-but-not-yet-running server over any [`HttpHandler`] — a
/// single compute node by default, or a fleet front tier.
#[derive(Debug)]
pub struct Server<H: HttpHandler = ComputeService> {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<H>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl<H: HttpHandler> Server<H> {
    /// Bind `addr` (use port 0 for an ephemeral loopback port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<H>,
        config: ServerConfig,
    ) -> io::Result<Server<H>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            service,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can initiate graceful shutdown from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Serve until shutdown is initiated, then drain in-flight
    /// connections and return. Blocking; see [`Server::spawn`] for the
    /// background variant.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors are
    /// contained).
    pub fn run(self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        if self.config.engine == Engine::Reactor {
            return crate::reactor::run_reactor(
                self.listener,
                self.service,
                self.config,
                self.shutdown,
            );
        }
        self.listener.set_nonblocking(true)?;
        let mut pool = TaskPool::new(self.config.http_workers, self.config.backlog);
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.dispatch(&pool, stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Idle: the handler's heartbeat. For a compute
                    // node this advances the SLO sentinel's sliding
                    // window and runs the control loops; for a front
                    // tier it probes node health and epochs.
                    self.service.on_idle();
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: joining the pool first waits out queued and running
        // connection tasks; their responses already advertise
        // `Connection: close` because the flag is up.
        pool.join();
        Ok(())
    }

    /// Run on a background thread; the returned handle stops and joins
    /// the server (also on drop).
    pub fn spawn(self) -> RunningServer {
        let addr = self.addr;
        let handle = self.shutdown_handle();
        let thread = std::thread::spawn(move || self.run());
        RunningServer {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    /// Hand one accepted connection to the task pool, or shed it.
    fn dispatch(&self, pool: &TaskPool, stream: TcpStream) {
        // Accepted sockets go back to blocking mode with a read
        // timeout: the handler thread blocks per connection, and idle
        // keep-alive peers are reaped by the timeout. A socket that
        // refuses its configuration is closed on the spot — serving it
        // anyway would mean unbounded blocking reads on a worker.
        let configured = stream
            .set_nonblocking(false)
            .and_then(|()| stream.set_nodelay(true))
            .and_then(|()| stream.set_read_timeout(Some(self.config.keep_alive_timeout)))
            // Writes are bounded too: a peer that stops draining its
            // receive window cannot pin a worker forever.
            .and_then(|()| stream.set_write_timeout(Some(self.config.keep_alive_timeout)));
        if configured.is_err() {
            record_socket_config_failure();
            return;
        }

        // The connection rides to the worker inside a shared slot so
        // that, if the pool refuses the task, the accept loop can take
        // the stream back and answer 503 itself.
        let slot = Arc::new(Mutex::new(Some(stream)));
        let task = {
            let slot = Arc::clone(&slot);
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let limits = self.config.limits;
            let keep_alive = self.config.keep_alive_timeout;
            let deadline = self.config.request_deadline;
            move || {
                if let Some(stream) = slot.lock().take() {
                    handle_connection(&*service, &limits, &shutdown, stream, keep_alive, deadline);
                }
            }
        };
        if let Err(refused) = pool.try_execute(task) {
            drop(refused);
            if let Some(mut stream) = slot.lock().take() {
                let reply = self.service.shed();
                let _ = write_response_with(
                    &mut stream,
                    reply.status,
                    reply.reason,
                    reply.content_type,
                    &reply.headers,
                    reply.body.as_bytes(),
                    false,
                );
            }
        }
    }
}

/// A server running on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ShutdownHandle {
        self.handle.clone()
    }

    /// Initiate shutdown, wait for the drain, and return the server
    /// thread's result.
    ///
    /// # Errors
    ///
    /// Propagates the server loop's fatal error, if any.
    pub fn stop(mut self) -> io::Result<()> {
        self.handle.initiate();
        match self.thread.take() {
            Some(t) => t.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.initiate();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One response, pre-serialization — what an [`HttpHandler`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Reason phrase for the status line.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Extra headers beyond the ones the writer always emits.
    pub headers: Vec<(&'static str, String)>,
}

impl Reply {
    /// A JSON reply with no extra headers.
    pub fn json(status: u16, reason: &'static str, body: String) -> Reply {
        Reply {
            status,
            reason,
            content_type: "application/json",
            body,
            headers: Vec::new(),
        }
    }

    /// Append one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Reply {
        self.headers.push((name, value));
        self
    }

    /// First extra header matching `name` case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

impl HttpHandler for ComputeService {
    /// Route a request through this node, enforcing the rules-epoch
    /// protocol at the door: a malformed stamp is a 400, a stamp ahead
    /// of this node's epoch means the node missed a broadcast and must
    /// refuse rather than serve stale rules (409), and every reply
    /// carries the epoch it was served under.
    fn handle(&self, request: &Request, shutdown: &AtomicBool) -> Reply {
        let epoch = self.rules_epoch();
        let reply = match request.rules_epoch() {
            Err(err) => Reply::json(400, "Bad Request", error_body(&err.to_string())),
            Ok(Some(expected)) if expected > epoch => Reply::json(
                409,
                "Conflict",
                JsonObject::new()
                    .with_str("error", "stale rules epoch")
                    .with_int("node", self.node_id() as i64)
                    .with_int("node_epoch", epoch as i64)
                    .with_int("expected_epoch", expected as i64)
                    .render(),
            ),
            Ok(_) => route(self, shutdown, request),
        };
        reply.with_header(RULES_EPOCH_HEADER, epoch.to_string())
    }

    /// The reactor's entry point: `POST /compute` goes through the
    /// async execution path (so batched requests park in the
    /// coalescing queue instead of pinning a worker), every other
    /// route — and the epoch-protocol error paths, which never
    /// execute — answers synchronously through [`HttpHandler::handle`].
    fn handle_async(&self, request: &Request, shutdown: &AtomicBool, done: ReplySink) {
        if request.method != "POST" || request.path() != "/compute" {
            return done(self.handle(request, shutdown));
        }
        let epoch = self.rules_epoch();
        match request.rules_epoch() {
            Ok(Some(expected)) if expected > epoch => done(self.handle(request, shutdown)),
            Err(_) => done(self.handle(request, shutdown)),
            Ok(_) => compute_async(
                self,
                request,
                Box::new(move |reply| {
                    done(reply.with_header(RULES_EPOCH_HEADER, epoch.to_string()))
                }),
            ),
        }
    }

    /// A `POST /compute` that will park in the batcher never blocks
    /// `handle_async`: its only wait happens on a batch executor. The
    /// cheap header peek here over-approximates nothing — malformed
    /// annotations and epoch-protocol violations answer synchronously
    /// without sleeping, so they are prompt too.
    fn completes_promptly(&self, request: &Request) -> bool {
        if request.method != "POST" || request.path() != "/compute" {
            return false;
        }
        request
            .headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case("tolerance"))
            .and_then(|(_, value)| value.trim().parse::<f64>().ok())
            .is_some_and(|tolerance| self.batching_prompt(tolerance))
    }

    /// Advance the SLO sentinel's sliding window; a window roll is the
    /// control-loop heartbeat (AIMD admission tick, supervisor
    /// judgement of the closed window).
    fn on_idle(&self) {
        if let Some(obs) = self.observability() {
            if obs.tick() {
                self.on_window();
            }
        }
    }

    /// Front-door saturation is a congestion signal for the AIMD
    /// admission limiter, and the shed carries the same Retry-After
    /// hint as an admission 429.
    fn shed(&self) -> Reply {
        self.admission().on_congestion();
        Reply::json(
            503,
            "Service Unavailable",
            error_body("server saturated, retry later"),
        )
        .with_header(
            "Retry-After",
            self.admission().retry_after_secs().to_string(),
        )
    }
}

/// A [`Read`] adapter enforcing a wall-clock deadline on top of a
/// [`TcpStream`]: before each read the socket timeout is clamped to
/// whatever remains of the deadline, so a peer trickling one byte at a
/// time (slow loris) cannot hold a worker past
/// [`ServerConfig::request_deadline`]. The deadline is re-armed after
/// every completed request, so long-lived keep-alive connections are
/// bounded per request, not per connection.
struct DeadlineStream {
    inner: TcpStream,
    deadline: Instant,
    keep_alive: Duration,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        let _ = self
            .inner
            .set_read_timeout(Some(remaining.min(self.keep_alive)));
        self.inner.read(buf)
    }
}

pub(crate) fn error_body(message: &str) -> String {
    JsonObject::new().with_str("error", message).render()
}

/// Serve requests off one connection until it closes, errors, times
/// out idle, or the server begins draining.
fn handle_connection<H: HttpHandler>(
    service: &H,
    limits: &Limits,
    shutdown: &AtomicBool,
    stream: TcpStream,
    keep_alive_timeout: Duration,
    request_deadline: Duration,
) {
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(DeadlineStream {
            inner: clone,
            deadline: Instant::now() + request_deadline,
            keep_alive: keep_alive_timeout,
        }),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        match read_request(&mut reader, limits) {
            Ok(None) => return,
            Ok(Some(request)) => {
                let reply = service.handle(&request, shutdown);
                let keep_alive = request.keep_alive && !shutdown.load(Ordering::SeqCst);
                let body = if request.method == "HEAD" {
                    &[][..]
                } else {
                    reply.body.as_bytes()
                };
                if write_response_with(
                    &mut writer,
                    reply.status,
                    reply.reason,
                    reply.content_type,
                    &reply.headers,
                    body,
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
                // The next request gets a fresh deadline.
                reader.get_mut().deadline = Instant::now() + request_deadline;
            }
            Err(err) => {
                // Parse errors map to their status when the peer is
                // still there to hear it; truncation (including the
                // idle keep-alive timeout) just closes.
                if let Some((status, reason)) = err.status() {
                    let body = error_body(&err.to_string());
                    let _ = write_response(
                        &mut writer,
                        status,
                        reason,
                        "application/json",
                        body.as_bytes(),
                        false,
                    );
                }
                return;
            }
        }
    }
}

/// Route one parsed request to a handler.
pub(crate) fn route(service: &ComputeService, shutdown: &AtomicBool, request: &Request) -> Reply {
    match (request.method.as_str(), request.path()) {
        ("POST", "/compute") => compute(service, request),
        ("GET", "/healthz") | ("HEAD", "/healthz") => healthz(service),
        ("GET", "/stats") | ("HEAD", "/stats") => {
            let uptime_ms = service.started().elapsed().as_millis() as u64;
            Reply::json(
                200,
                "OK",
                stats_document(&service.snapshot(), uptime_ms).render(),
            )
        }
        ("GET", "/metrics") | ("HEAD", "/metrics") => metrics(service),
        ("GET", "/metrics/windows") | ("HEAD", "/metrics/windows") => windows(service, request),
        ("GET", "/events") | ("HEAD", "/events") => events(service, request),
        ("GET", "/planner") | ("HEAD", "/planner") => planner(service),
        ("GET", "/trace/recent") | ("HEAD", "/trace/recent") => trace_recent(service),
        ("GET", path) | ("HEAD", path) if path.strip_prefix("/trace/").is_some() => {
            trace_by_id(service, path)
        }
        ("POST", "/drain") => {
            if let Some(obs) = service.observability() {
                obs.event(
                    "drain",
                    format!(
                        "node {} draining, {} in flight",
                        service.node_id(),
                        service.admission().pressure()
                    ),
                );
            }
            shutdown.store(true, Ordering::SeqCst);
            // The acknowledgement tells the operator what they are
            // draining and how much work is still in flight, so a
            // rolling restart can wait for zero instead of sleeping.
            Reply::json(
                202,
                "Accepted",
                JsonObject::new()
                    .with("draining", Json::Bool(true))
                    .with_int("in_flight", service.admission().pressure() as i64)
                    .with_int("epoch", service.rules_epoch() as i64)
                    .with_int("node", service.node_id() as i64)
                    .render(),
            )
        }
        (_, "/compute")
        | (_, "/healthz")
        | (_, "/stats")
        | (_, "/metrics")
        | (_, "/metrics/windows")
        | (_, "/events")
        | (_, "/planner")
        | (_, "/trace/recent")
        | (_, "/drain") => Reply::json(
            405,
            "Method Not Allowed",
            error_body(&format!(
                "method {} not allowed for {}",
                request.method,
                request.path()
            )),
        ),
        (_, path) => Reply::json(
            404,
            "Not Found",
            error_body(&format!("no route for {path}")),
        ),
    }
}

/// `GET /healthz`: `200 ok` while every tier honors its guarantee;
/// `503` naming the out-of-contract tiers once the SLO sentinel rules
/// otherwise.
fn healthz(service: &ComputeService) -> Reply {
    let canary = service
        .supervisor_status()
        .is_some_and(|status| status.in_canary);
    let violations = service
        .observability()
        .map(|obs| obs.sentinel().violations())
        .unwrap_or_default();
    if violations.is_empty() {
        return Reply {
            status: 200,
            reason: "OK",
            content_type: "text/plain",
            body: if canary {
                "ok (canary rules active)\n".to_string()
            } else {
                "ok\n".to_string()
            },
            headers: Vec::new(),
        };
    }
    let tiers: Vec<Json> = violations.into_iter().map(Json::Str).collect();
    Reply::json(
        503,
        "Service Unavailable",
        JsonObject::new()
            .with_str("status", "degraded")
            .with("violations", Json::Array(tiers))
            .with("canary", Json::Bool(canary))
            .render(),
    )
}

/// `GET /metrics`: registry totals, per-tier telemetry, and SLO
/// verdicts in the perfjson dialect.
fn metrics(service: &ComputeService) -> Reply {
    let uptime_ms = service.started().elapsed().as_millis() as u64;
    let base = match service.observability() {
        Some(obs) => metrics_document(obs, uptime_ms),
        None => JsonObject::new()
            .with_str("service", "toltiers")
            .with("observability", Json::Bool(false)),
    };
    // The control loops report regardless of observability: admission
    // always runs, and the supervisor subtree appears whenever a
    // supervisor is configured.
    let mut doc = base
        .with_int("node", service.node_id() as i64)
        .with_int("rules_epoch", service.rules_epoch() as i64)
        // Process-wide accept-time drops; deliberately outside
        // "totals", which only holds per-request deterministic series.
        .with_int("socket_config_failures", socket_config_failures() as i64)
        .with(
            "admission",
            Json::Object(admission_object(service.admission())),
        );
    if let Some(status) = service.supervisor_status() {
        doc = doc.with("supervisor", Json::Object(supervisor_object(&status)));
    }
    Reply::json(200, "OK", doc.render())
}

/// `GET /trace/recent`: the tracer's ring of finished request traces,
/// newest last.
fn trace_recent(service: &ComputeService) -> Reply {
    let Some(obs) = service.observability() else {
        return Reply::json(404, "Not Found", error_body("tracing disabled"));
    };
    let traces = obs.tracer().recent(obs.tracer().capacity());
    let mut body = String::with_capacity(64 + traces.len() * 256);
    body.push_str("{\"count\": ");
    body.push_str(&traces.len().to_string());
    body.push_str(", \"traces\": [");
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&trace.to_json_line());
    }
    body.push_str("]}");
    Reply::json(200, "OK", body)
}

/// One query parameter's value from a request target, e.g. `n` from
/// `/metrics/windows?n=4`.
pub(crate) fn query_param<'a>(request: &'a Request, name: &str) -> Option<&'a str> {
    let (_, query) = request.target.split_once('?')?;
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

/// `GET /metrics/windows?n=K`: the sealed telemetry-window ring plus
/// the cumulative fold — the capacity planner's input contract.
///
/// `n` must be a non-negative integer when present; anything else is a
/// 400 naming the offending value. Values beyond the ring's retention
/// capacity clamp silently — the ring can never answer with more.
fn windows(service: &ComputeService, request: &Request) -> Reply {
    let Some(obs) = service.observability() else {
        return Reply::json(404, "Not Found", error_body("observability disabled"));
    };
    let capacity = obs.windows().capacity();
    let limit = match query_param(request, "n") {
        None => 8.min(capacity),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n.min(capacity),
            Err(_) => {
                return Reply::json(
                    400,
                    "Bad Request",
                    error_body(&format!(
                        "query parameter n must be a non-negative integer, got {raw:?}"
                    )),
                );
            }
        },
    };
    let uptime_ms = service.started().elapsed().as_millis() as u64;
    Reply::json(
        200,
        "OK",
        windows_document(obs.windows(), limit, uptime_ms)
            .with_int("node", service.node_id() as i64)
            .render(),
    )
}

/// `GET /planner`: the capacity planner's live status — forecast
/// state, resize/regen counters, tuner posture, and the recent
/// decision log. 404 when no planner is configured.
fn planner(service: &ComputeService) -> Reply {
    let Some(status) = service.capacity_status() else {
        return Reply::json(404, "Not Found", error_body("planner disabled"));
    };
    Reply::json(
        200,
        "OK",
        capacity_object(&status)
            .with_int("node", service.node_id() as i64)
            .with_int("rules_epoch", service.rules_epoch() as i64)
            .render(),
    )
}

/// `GET /events?since=N`: the control-plane event log past the cursor.
fn events(service: &ComputeService, request: &Request) -> Reply {
    let Some(obs) = service.observability() else {
        return Reply::json(404, "Not Found", error_body("observability disabled"));
    };
    let since = query_param(request, "since")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let log = obs.events();
    Reply::json(
        200,
        "OK",
        events_document(&log.since(since), log.last_seq(), log.dropped())
            .with_int("node", service.node_id() as i64)
            .render(),
    )
}

/// `GET /trace/{id}`: every retained trace on this node belonging to
/// fleet-wide trace `id` (the front tier assembles the cross-node
/// tree; a node answers its own hops).
fn trace_by_id(service: &ComputeService, path: &str) -> Reply {
    let Some(obs) = service.observability() else {
        return Reply::json(404, "Not Found", error_body("tracing disabled"));
    };
    let raw = path.strip_prefix("/trace/").unwrap_or_default();
    let Ok(trace_id) = raw.parse::<u64>() else {
        return Reply::json(
            404,
            "Not Found",
            error_body(&format!("no route for {path}")),
        );
    };
    let traces = obs.tracer().find(trace_id);
    if traces.is_empty() {
        return Reply::json(
            404,
            "Not Found",
            error_body(&format!("trace {trace_id} not retained on this node")),
        );
    }
    Reply::json(200, "OK", trace_tree_body(trace_id, &traces))
}

/// Render one fleet-wide trace's hops as a JSON document, ordered by
/// (hop, local request id) — the deterministic assembly order both a
/// node and the front tier use.
pub(crate) fn trace_tree_body(trace_id: u64, traces: &[tt_obs::RequestTrace]) -> String {
    let mut ordered: Vec<&tt_obs::RequestTrace> = traces.iter().collect();
    ordered.sort_by_key(|t| (t.hop, t.request_id));
    let mut body = String::with_capacity(96 + ordered.len() * 256);
    body.push_str("{\"trace_id\": ");
    body.push_str(&trace_id.to_string());
    body.push_str(", \"hops\": ");
    body.push_str(&ordered.len().to_string());
    body.push_str(", \"traces\": [");
    for (i, trace) in ordered.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&trace.to_json_line());
    }
    body.push_str("]}");
    body
}

/// FNV-1a over the body bytes: payload selection for clients that send
/// opaque data without a `Payload` header.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Which profiled payload a request maps to: an explicit `Payload`
/// header (index, used by the load generator for determinism), else a
/// stable hash of the body.
fn payload_for(request: &Request, payloads: usize) -> Result<usize, String> {
    match request.header("payload") {
        Some(value) => value
            .trim()
            .parse::<usize>()
            .map(|p| p % payloads.max(1))
            .map_err(|_| format!("bad Payload header `{value}` (want an index)")),
        None => Ok((fnv1a(&request.body) % payloads.max(1) as u64) as usize),
    }
}

/// What the shared front half of `POST /compute` decided: answer
/// immediately (parse error, admission rejection), or execute under
/// the given brownout plan.
enum Prepared {
    Reply(Reply),
    Execute {
        service_request: ServiceRequest,
        brownout: Option<(Policy, f64, BrownoutLevel)>,
    },
}

/// Whether the client forbade cache use for this request
/// (`Cache-Control: no-cache` or `no-store`).
fn client_no_cache(request: &Request) -> bool {
    request.header("cache-control").is_some_and(|value| {
        value.split(',').any(|directive| {
            let directive = directive.trim();
            directive.eq_ignore_ascii_case("no-cache") || directive.eq_ignore_ascii_case("no-store")
        })
    })
}

/// How the cache front half disposed of one admitted request.
enum CacheDisposition {
    /// Answered and settled from the cache; build the reply directly.
    Hit {
        outcome: ComputeOutcome,
        exact: bool,
    },
    /// Execute. `ticket` is the pre-resolved insert permit for a miss
    /// (`None` on bypass or when admission filtered the key); `tag` is
    /// the `X-Cache` header value, `None` when no cache is configured
    /// so cache-off replies carry no cache header at all.
    Execute {
        ticket: Option<CacheAdmitTicket>,
        tag: Option<&'static str>,
    },
}

/// The cache consult shared verbatim by both engines: brownout-shaped
/// requests and client `Cache-Control: no-cache` bypass (a browned-out
/// answer must not shadow the tier's real one, and a bypass must not
/// be admitted either — the entry would be indistinguishable from a
/// clean answer), everything else asks the service's semantic cache.
fn cache_front(
    service: &ComputeService,
    request: &Request,
    service_request: &ServiceRequest,
    brownout_shaped: bool,
    handle: Option<&TraceHandle>,
) -> CacheDisposition {
    if service.cache().is_none() {
        return CacheDisposition::Execute {
            ticket: None,
            tag: None,
        };
    }
    if brownout_shaped || client_no_cache(request) {
        service.note_cache_event(service_request, CacheEvent::Bypass);
        return CacheDisposition::Execute {
            ticket: None,
            tag: Some("bypass"),
        };
    }
    let fingerprint = fnv1a(&request.body);
    match service.cache_serve(service_request, fingerprint, handle) {
        CacheServed::Hit { outcome, exact } => CacheDisposition::Hit { outcome, exact },
        CacheServed::Miss => CacheDisposition::Execute {
            ticket: service.cache_ticket(service_request, fingerprint),
            tag: Some("miss"),
        },
        CacheServed::Bypass => CacheDisposition::Execute {
            ticket: None,
            tag: Some("bypass"),
        },
    }
}

/// Stamp a reply with its `X-Cache` disposition (no-op when the node
/// runs without a cache).
fn tag_cache(reply: Reply, tag: Option<&'static str>) -> Reply {
    match tag {
        Some(tag) => reply.with_header("X-Cache", tag.to_string()),
        None => reply,
    }
}

/// Stamp a cache hit's reply: `X-Cache: hit` plus whether the match
/// was bit-exact or semantic (tolerance-rule admissible).
fn tag_cache_hit(reply: Reply, exact: bool) -> Reply {
    reply.with_header("X-Cache", "hit".to_string()).with_header(
        "X-Cache-Match",
        if exact { "exact" } else { "semantic" }.to_string(),
    )
}

/// `POST /compute`: the paper's API over a real wire (the synchronous
/// path — the threaded engine, and every error path of the reactor).
fn compute(service: &ComputeService, request: &Request) -> Reply {
    // When observability is on, the whole handler runs under a traced
    // request: parsing gets its own span, and the handle rides into
    // the service (and across its worker pool) for the rest. A request
    // stamped with a remote trace context (proxied by a front tier)
    // joins that trace instead of starting its own.
    let obs = service.observability();
    let handle = obs.map(|o| match request.trace_context() {
        Some(context) => o.tracer().begin_remote(context),
        None => o.tracer().begin(),
    });
    let reply = match prepare_compute(service, request, handle.as_ref()) {
        Prepared::Reply(reply) => reply,
        Prepared::Execute {
            service_request,
            brownout,
        } => {
            let _in_flight = service.admission().begin();
            match cache_front(
                service,
                request,
                &service_request,
                brownout.is_some(),
                handle.as_ref(),
            ) {
                CacheDisposition::Hit { outcome, exact } => tag_cache_hit(
                    render_outcome(
                        &service_request,
                        handle.as_ref(),
                        service.admission(),
                        Ok(outcome),
                    ),
                    exact,
                ),
                CacheDisposition::Execute { ticket, tag } => {
                    let result =
                        service.execute_shaped(&service_request, brownout, handle.as_ref());
                    if let (Some(ticket), Ok(outcome)) = (&ticket, &result) {
                        ticket.admit(outcome);
                    }
                    tag_cache(
                        render_outcome(
                            &service_request,
                            handle.as_ref(),
                            service.admission(),
                            result,
                        ),
                        tag,
                    )
                }
            }
        }
    };
    if let (Some(o), Some(h)) = (obs, handle.as_ref()) {
        o.tracer().finish(h);
    }
    // Echo the trace id so a client (or the relaying front tier) can
    // drill into `GET /trace/{id}` with one curl.
    match handle {
        Some(h) => reply.with_header(TRACE_ID_HEADER, h.trace_id().to_string()),
        None => reply,
    }
}

/// `POST /compute` in continuation-passing style for the reactor
/// engine: the front half (parse, admission) runs synchronously on the
/// calling worker, execution goes through
/// [`ComputeService::execute_shaped_async`] — so a batched request
/// parks in the coalescing queue without pinning the worker — and
/// `done` fires with the finished reply wherever settlement happens.
/// The admission in-flight guard rides inside the continuation: the
/// request counts against the limit until its reply is built.
fn compute_async(service: &ComputeService, request: &Request, done: ReplySink) {
    let obs = service.observability().cloned();
    let handle = obs.as_ref().map(|o| match request.trace_context() {
        Some(context) => o.tracer().begin_remote(context),
        None => o.tracer().begin(),
    });
    // Stamp the trace id on whichever reply path fires, exactly as the
    // synchronous engine does.
    let done: ReplySink = match handle.as_ref().map(|h| h.trace_id()) {
        Some(trace_id) => Box::new(move |reply: Reply| {
            done(reply.with_header(TRACE_ID_HEADER, trace_id.to_string()));
        }),
        None => done,
    };
    match prepare_compute(service, request, handle.as_ref()) {
        Prepared::Reply(reply) => {
            if let (Some(o), Some(h)) = (&obs, handle.as_ref()) {
                o.tracer().finish(h);
            }
            done(reply);
        }
        Prepared::Execute {
            service_request,
            brownout,
        } => {
            let in_flight = service.admission().begin();
            match cache_front(
                service,
                request,
                &service_request,
                brownout.is_some(),
                handle.as_ref(),
            ) {
                // A hit already settled: answer on the calling thread,
                // never touching the batcher or a worker pool.
                CacheDisposition::Hit { outcome, exact } => {
                    let _in_flight = in_flight;
                    let reply = tag_cache_hit(
                        render_outcome(
                            &service_request,
                            handle.as_ref(),
                            service.admission(),
                            Ok(outcome),
                        ),
                        exact,
                    );
                    if let (Some(o), Some(h)) = (&obs, handle.as_ref()) {
                        o.tracer().finish(h);
                    }
                    done(reply);
                }
                CacheDisposition::Execute { ticket, tag } => {
                    let admission = Arc::clone(service.admission());
                    let continuation_handle = handle.clone();
                    let executed = service_request.clone();
                    service.execute_shaped_async(
                        &executed,
                        brownout,
                        handle.as_ref(),
                        Box::new(move |result| {
                            let _in_flight = in_flight;
                            if let (Some(ticket), Ok(outcome)) = (&ticket, &result) {
                                ticket.admit(outcome);
                            }
                            let reply = tag_cache(
                                render_outcome(
                                    &service_request,
                                    continuation_handle.as_ref(),
                                    &admission,
                                    result,
                                ),
                                tag,
                            );
                            if let (Some(o), Some(h)) = (&obs, continuation_handle.as_ref()) {
                                o.tracer().finish(h);
                            }
                            done(reply);
                        }),
                    );
                }
            }
        }
    }
}

/// Parse annotations and payload, stamp the parse span, and run
/// admission — everything before execution, shared verbatim by the
/// synchronous and async compute paths.
fn prepare_compute(
    service: &ComputeService,
    request: &Request,
    handle: Option<&TraceHandle>,
) -> Prepared {
    let parse_span = handle.map(|h| h.open("parse", None, service.wall_us()));

    // Only the API's own annotation headers are forwarded to the
    // annotation parser; transport headers (Host, Content-Length, ...)
    // belong to HTTP, not to the Tolerance Tiers API. Duplicates are
    // preserved so the parser's DuplicateHeader error still fires.
    let mut annotations = String::new();
    for (name, value) in &request.headers {
        if name.eq_ignore_ascii_case("tolerance") || name.eq_ignore_ascii_case("objective") {
            annotations.push_str(name);
            annotations.push_str(": ");
            annotations.push_str(value);
            annotations.push_str("\r\n");
        }
    }
    let close_parse = |error: Option<&str>| {
        if let (Some(h), Some(id)) = (handle, parse_span) {
            if let Some(why) = error {
                h.attr_str(id, "error", why);
            }
            h.close(id, service.wall_us());
        }
    };
    let (tolerance, objective) = match parse_annotations(&annotations) {
        Ok(parsed) => parsed,
        Err(err) => {
            let why = err.to_string();
            close_parse(Some(&why));
            return Prepared::Reply(Reply::json(400, "Bad Request", error_body(&why)));
        }
    };
    // The tier is known: this request is an arrival on the open
    // telemetry window (pre-admission — the planner's arrival rate).
    if let Some(o) = service.observability() {
        o.record_arrival(objective, tolerance.value());
    }
    let payload = match payload_for(request, service.matrix().requests()) {
        Ok(p) => p,
        Err(why) => {
            close_parse(Some(&why));
            return Prepared::Reply(Reply::json(400, "Bad Request", error_body(&why)));
        }
    };
    if let (Some(h), Some(id)) = (handle, parse_span) {
        h.attr_int(
            id,
            "tolerance_milli",
            (tolerance.value() * 1000.0).round() as i64,
        );
        h.attr_int(id, "payload", payload as i64);
    }
    close_parse(None);

    let service_request = tt_core::request::ServiceRequest::new(payload, tolerance, objective);

    // Admission runs before execution: under pressure, high-tolerance
    // requests are first browned out onto a cheaper plan and only then
    // rejected; strict tiers are always admitted. The decision comes
    // first so a rejected request never counts against the limit, then
    // the in-flight guard covers the whole execution.
    let decision = service.admit(&service_request);
    let outcome = match &decision {
        AdmissionDecision::Reject { .. } => AdmissionOutcome::Rejected,
        AdmissionDecision::Brownout { .. } => AdmissionOutcome::BrownedOut,
        _ => AdmissionOutcome::Admitted,
    };
    if let Some(o) = service.observability() {
        o.record_admission(objective, tolerance.value(), outcome);
    }
    if let AdmissionDecision::Reject { retry_after_secs } = decision {
        let mut body = JsonObject::new().with_str("error", "overloaded, retry later");
        if let Some(h) = handle {
            body = body.with_int("request_id", h.request_id() as i64);
        }
        return Prepared::Reply(
            Reply::json(429, "Too Many Requests", body.render())
                .with_header("Retry-After", retry_after_secs.to_string()),
        );
    }
    let brownout = match decision {
        AdmissionDecision::Brownout {
            policy,
            billed_tolerance,
            level,
        } => Some((policy, billed_tolerance, level)),
        _ => None,
    };
    Prepared::Execute {
        service_request,
        brownout,
    }
}

/// Render an execution result into the `POST /compute` reply — one
/// body-building path for both engines, so a batched request's bytes
/// cannot differ from an unbatched one's.
fn render_outcome(
    service_request: &ServiceRequest,
    handle: Option<&TraceHandle>,
    admission: &AdmissionController,
    result: Result<ComputeOutcome, ServiceError>,
) -> Reply {
    match result {
        Ok(outcome) => {
            let mut body = JsonObject::new()
                .with_str("answered_by", &outcome.version_name)
                .with_int("version", outcome.answered_by as i64)
                .with_int("payload", service_request.payload as i64)
                .with_num("tolerance", service_request.tolerance.value())
                .with_num("billed_tolerance", outcome.billed_tolerance)
                .with_str("objective", &service_request.objective.to_string())
                .with_num("quality_err", outcome.quality_err)
                .with_num("confidence", outcome.confidence)
                .with_int("latency_us", outcome.simulated_latency_us as i64)
                .with_num("price_usd", outcome.price.as_dollars())
                .with("degraded", Json::Bool(outcome.degraded));
            if let Some(level) = outcome.brownout {
                body = body.with_str("brownout", level.label());
            }
            if let Some(h) = handle {
                body = body.with_int("request_id", h.request_id() as i64);
            }
            let mut reply = Reply::json(200, "OK", body.render());
            if let Some(level) = outcome.brownout {
                reply = reply.with_header("Brownout", level.label().to_string());
            }
            reply
        }
        Err(ServiceError::Unavailable) => {
            let mut body =
                JsonObject::new().with_str("error", &ServiceError::Unavailable.to_string());
            if let Some(h) = handle {
                body = body.with_int("request_id", h.request_id() as i64);
            }
            Reply::json(503, "Service Unavailable", body.render())
                .with_header("Retry-After", admission.retry_after_secs().to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_service;
    use crate::http::{read_response, Limits};
    use crate::service::ServiceConfig;
    use std::io::Write;

    fn svc() -> Arc<ComputeService> {
        Arc::new(demo_service(60, 9, ServiceConfig::defaults()))
    }

    fn req(method: &str, target: &str, headers: &[(&str, &str)], body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    #[test]
    fn routes_cover_the_api_surface() {
        let service = svc();
        let off = AtomicBool::new(false);
        let ok = route(
            &service,
            &off,
            &req(
                "POST",
                "/compute",
                &[
                    ("Tolerance", "0.05"),
                    ("Objective", "cost"),
                    ("Payload", "3"),
                ],
                b"",
            ),
        );
        assert_eq!(ok.status, 200);
        assert!(ok.body.contains("\"answered_by\""));
        assert!(ok.body.contains("\"price_usd\""));

        assert_eq!(
            route(&service, &off, &req("GET", "/healthz", &[], b"")).status,
            200
        );
        let stats = route(&service, &off, &req("GET", "/stats?x=1", &[], b""));
        assert_eq!(stats.status, 200);
        assert!(stats.body.contains("\"service\": \"toltiers\""));
        assert_eq!(
            route(&service, &off, &req("GET", "/compute", &[], b"")).status,
            405
        );
        assert_eq!(
            route(&service, &off, &req("POST", "/nope", &[], b"")).status,
            404
        );
    }

    #[test]
    fn bad_annotations_become_400_bodies() {
        let service = svc();
        let off = AtomicBool::new(false);
        for (headers, needle) in [
            (vec![("Tolerance", "lots")], "invalid tolerance"),
            (vec![("Tolerance", "-1")], "out of range"),
            (vec![("Objective", "teleport")], "invalid objective"),
            (
                vec![("Tolerance", "0.01"), ("Tolerance", "0.05")],
                "duplicate",
            ),
            (vec![("Payload", "banana")], "bad Payload header"),
        ] {
            let reply = route(&service, &off, &req("POST", "/compute", &headers, b""));
            assert_eq!(reply.status, 400, "headers {headers:?}");
            assert!(reply.body.contains(needle), "{} !~ {needle}", reply.body);
        }
    }

    #[test]
    fn unannotated_requests_get_the_strict_default_tier() {
        let service = svc();
        let off = AtomicBool::new(false);
        let reply = route(
            &service,
            &off,
            &req("POST", "/compute", &[], b"opaque-bytes"),
        );
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"tolerance\": 0"));
        assert!(reply.body.contains("\"objective\": \"response-time\""));
    }

    #[test]
    fn metrics_and_trace_endpoints_expose_the_request_journey() {
        let service = svc();
        let off = AtomicBool::new(false);
        let ok = route(
            &service,
            &off,
            &req(
                "POST",
                "/compute",
                &[
                    ("Tolerance", "0.05"),
                    ("Objective", "cost"),
                    ("Payload", "3"),
                ],
                b"",
            ),
        );
        assert_eq!(ok.status, 200);
        assert!(ok.body.contains("\"request_id\": 1"));

        let metrics = route(&service, &off, &req("GET", "/metrics", &[], b""));
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("\"totals\""));
        assert!(metrics.body.contains("\"requests_total\": 1"));
        assert!(metrics.body.contains("\"cost/0.050\""));
        assert!(metrics.body.contains("\"slo\""));

        let traces = route(&service, &off, &req("GET", "/trace/recent", &[], b""));
        assert_eq!(traces.status, 200);
        assert!(traces.body.contains("\"count\": 1"));
        assert!(traces.body.contains("\"request_id\": 1"));
        for span in ["parse", "execute", "route", "model_call", "bill"] {
            assert!(
                traces.body.contains(&format!("\"name\": \"{span}\"")),
                "missing span {span} in {}",
                traces.body
            );
        }

        assert_eq!(
            route(&service, &off, &req("POST", "/metrics", &[], b"")).status,
            405
        );
        assert_eq!(
            route(&service, &off, &req("POST", "/trace/recent", &[], b"")).status,
            405
        );
    }

    #[test]
    fn disabled_observability_degrades_the_endpoints_gracefully() {
        let service = Arc::new(demo_service(
            60,
            9,
            ServiceConfig {
                obs: crate::obs::ObsConfig::disabled(),
                ..ServiceConfig::defaults()
            },
        ));
        let off = AtomicBool::new(false);
        let metrics = route(&service, &off, &req("GET", "/metrics", &[], b""));
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("\"observability\": false"));
        assert_eq!(
            route(&service, &off, &req("GET", "/trace/recent", &[], b"")).status,
            404
        );
        // Compute still serves, without a request_id.
        let ok = route(
            &service,
            &off,
            &req("POST", "/compute", &[("Payload", "1")], b""),
        );
        assert_eq!(ok.status, 200);
        assert!(!ok.body.contains("request_id"));
        assert_eq!(
            route(&service, &off, &req("GET", "/healthz", &[], b"")).status,
            200
        );
    }

    #[test]
    fn healthz_degrades_naming_the_violating_tier() {
        let service = svc();
        let off = AtomicBool::new(false);
        assert_eq!(
            route(&service, &off, &req("GET", "/healthz", &[], b"")).status,
            200
        );
        let obs = service.observability().unwrap();
        // Inject a window of traffic violating the 5% cost tier, then
        // close the window.
        for _ in 0..30 {
            obs.record_served(&crate::obs::ServedSample {
                objective: tt_core::objective::Objective::Cost,
                tolerance: 0.05,
                sim_latency_us: 5_000,
                quality_err: 0.5,
                baseline_err: 0.1,
                degraded: false,
                invocations: 1,
                version: 0,
            });
        }
        obs.sentinel().force_tick(obs.now_us());
        let reply = route(&service, &off, &req("GET", "/healthz", &[], b""));
        assert_eq!(reply.status, 503);
        assert!(reply.body.contains("\"status\": \"degraded\""));
        assert!(reply.body.contains("cost/0.050"), "{}", reply.body);
        let metrics = route(&service, &off, &req("GET", "/metrics", &[], b""));
        assert!(metrics.body.contains("\"in_contract\": false"));
    }

    #[test]
    fn overload_rejects_tolerant_tiers_with_retry_after_but_admits_strict() {
        use crate::admission::AdmissionConfig;
        let service = Arc::new(demo_service(
            60,
            9,
            ServiceConfig {
                admission: AdmissionConfig {
                    initial_limit: 1,
                    min_limit: 1,
                    ..AdmissionConfig::defaults()
                },
                ..ServiceConfig::defaults()
            },
        ));
        let off = AtomicBool::new(false);
        // Saturate: hold enough in-flight guards that pressure clears
        // limit * reject_factor.
        let _held: Vec<_> = (0..4).map(|_| service.admission().begin()).collect();
        let rejected = route(
            &service,
            &off,
            &req(
                "POST",
                "/compute",
                &[
                    ("Tolerance", "0.10"),
                    ("Objective", "cost"),
                    ("Payload", "2"),
                ],
                b"",
            ),
        );
        assert_eq!(rejected.status, 429, "{}", rejected.body);
        assert!(rejected.header("Retry-After").is_some());
        assert!(rejected.body.contains("overloaded"));
        // The strict default tier is protected: same pressure, served.
        let strict = route(
            &service,
            &off,
            &req("POST", "/compute", &[("Payload", "2")], b""),
        );
        assert_eq!(strict.status, 200, "{}", strict.body);
        let (_admitted, _browned, rejected_total) = service.admission().totals();
        assert_eq!(rejected_total, 1);
    }

    #[test]
    fn metrics_include_the_control_loop_subtrees() {
        let service = svc();
        let off = AtomicBool::new(false);
        let reply = route(&service, &off, &req("GET", "/metrics", &[], b""));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"admission\""), "{}", reply.body);
        assert!(reply.body.contains("\"limit\""));
        assert!(reply.body.contains("\"supervisor\""));
        assert!(reply.body.contains("\"rules_revision\": 1"));
        // Disabled observability still reports the control loops.
        let bare = Arc::new(demo_service(
            60,
            9,
            ServiceConfig {
                obs: crate::obs::ObsConfig::disabled(),
                ..ServiceConfig::defaults()
            },
        ));
        let reply = route(&bare, &off, &req("GET", "/metrics", &[], b""));
        assert!(reply.body.contains("\"observability\": false"));
        assert!(reply.body.contains("\"admission\""));
        assert!(reply.body.contains("\"supervisor\""));
    }

    #[test]
    fn cache_round_trip_serves_hits_with_headers() {
        let service = Arc::new(demo_service(
            60,
            9,
            ServiceConfig {
                cache: Some(Arc::new(tt_cache::SemanticCache::new(
                    tt_cache::CacheConfig::defaults(),
                ))),
                ..ServiceConfig::defaults()
            },
        ));
        let off = AtomicBool::new(false);
        let tolerant = [
            ("Tolerance", "0.05"),
            ("Objective", "cost"),
            ("Payload", "3"),
        ];
        // First sight: miss, executed, offered back.
        let first = route(&service, &off, &req("POST", "/compute", &tolerant, b"q1"));
        assert_eq!(first.status, 200);
        assert_eq!(first.header("X-Cache"), Some("miss"));
        // Same body: bit-exact hit.
        let second = route(&service, &off, &req("POST", "/compute", &tolerant, b"q1"));
        assert_eq!(second.status, 200);
        assert_eq!(second.header("X-Cache"), Some("hit"));
        assert_eq!(second.header("X-Cache-Match"), Some("exact"));
        // Different body, same semantic key, admissible degradation:
        // semantic hit.
        let third = route(&service, &off, &req("POST", "/compute", &tolerant, b"q2"));
        assert_eq!(third.status, 200);
        assert_eq!(third.header("X-Cache"), Some("hit"));
        assert_eq!(third.header("X-Cache-Match"), Some("semantic"));
        // Hit and miss answer the same bytes for the answer fields.
        for key in ["\"answered_by\"", "\"billed_tolerance\": 0.05"] {
            assert!(first.body.contains(key) && third.body.contains(key));
        }
        // Client opt-out bypasses without touching the cache.
        let mut with_no_cache = tolerant.to_vec();
        with_no_cache.push(("Cache-Control", "no-cache"));
        let bypass = route(
            &service,
            &off,
            &req("POST", "/compute", &with_no_cache, b"q1"),
        );
        assert_eq!(bypass.header("X-Cache"), Some("bypass"));

        // Strict (tolerance-0) requests: exact bit-equal hits only.
        let strict = [("Payload", "5")];
        let miss = route(&service, &off, &req("POST", "/compute", &strict, b"s1"));
        assert_eq!(miss.header("X-Cache"), Some("miss"));
        let exact = route(&service, &off, &req("POST", "/compute", &strict, b"s1"));
        assert_eq!(exact.header("X-Cache"), Some("hit"));
        assert_eq!(exact.header("X-Cache-Match"), Some("exact"));
        let other_body = route(&service, &off, &req("POST", "/compute", &strict, b"s2"));
        assert_ne!(
            other_body.header("X-Cache-Match"),
            Some("semantic"),
            "strict tiers must never take a semantic hit"
        );

        // A rules hot-swap (broadcast form) purges: the exact hit
        // above is gone.
        let epoch = service.rules_epoch() + 1;
        service.adopt_rules(crate::demo::demo_frontend(service.matrix(), 9), epoch);
        let after_swap = route(&service, &off, &req("POST", "/compute", &tolerant, b"q1"));
        assert_eq!(after_swap.header("X-Cache"), Some("miss"));
        let stats = service.cache().unwrap().stats();
        assert!(stats.purges >= 1);
    }

    #[test]
    fn cache_off_replies_carry_no_cache_header() {
        let service = svc();
        let off = AtomicBool::new(false);
        let reply = route(
            &service,
            &off,
            &req("POST", "/compute", &[("Payload", "1")], b""),
        );
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("X-Cache"), None);
    }

    #[test]
    fn drain_endpoint_flips_the_shutdown_flag() {
        let service = svc();
        let flag = AtomicBool::new(false);
        let reply = route(&service, &flag, &req("POST", "/drain", &[], b""));
        assert_eq!(reply.status, 202);
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn windows_n_param_is_validated_and_clamped() {
        let service = svc();
        let off = AtomicBool::new(false);

        // Non-numeric n is a named 400, not a silent default.
        for bad in ["abc", "-3", "1.5", ""] {
            let reply = route(
                &service,
                &off,
                &req("GET", &format!("/metrics/windows?n={bad}"), &[], b""),
            );
            assert_eq!(reply.status, 400, "n={bad:?}");
            assert!(
                reply.body.contains("query parameter n"),
                "{} for n={bad:?}",
                reply.body
            );
        }

        // Numeric n clamps to the ring capacity instead of failing.
        let capacity = service.observability().unwrap().windows().capacity();
        let huge = route(
            &service,
            &off,
            &req("GET", "/metrics/windows?n=999999999", &[], b""),
        );
        assert_eq!(huge.status, 200);
        let plain = route(
            &service,
            &off,
            &req("GET", &format!("/metrics/windows?n={capacity}"), &[], b""),
        );
        // Same ring state, clamped limit: identical window list.
        assert_eq!(huge.body, plain.body);
        assert_eq!(
            route(
                &service,
                &off,
                &req("GET", "/metrics/windows?n=0", &[], b"")
            )
            .status,
            200
        );
    }

    #[test]
    fn planner_endpoint_is_404_without_a_planner_and_live_with_one() {
        let off = AtomicBool::new(false);

        let bare = svc();
        assert_eq!(
            route(&bare, &off, &req("GET", "/planner", &[], b"")).status,
            404
        );
        assert_eq!(
            route(&bare, &off, &req("POST", "/planner", &[], b"")).status,
            405
        );

        let planned = Arc::new(demo_service(
            60,
            9,
            ServiceConfig {
                planner: Some(crate::service::PlannerSetup::defaults()),
                ..ServiceConfig::defaults()
            },
        ));
        let reply = route(&planned, &off, &req("GET", "/planner", &[], b""));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"planner\""));
        assert!(reply.body.contains("\"tuner\""));
        assert!(reply.body.contains("\"pool_workers\""));
        assert!(reply.body.contains("\"rules_epoch\""));
    }

    #[test]
    fn body_hash_payloads_are_stable_and_in_range() {
        let r = req("POST", "/compute", &[], b"some payload bytes");
        assert_eq!(payload_for(&r, 17), payload_for(&r, 17));
        assert!(payload_for(&r, 17).unwrap() < 17);
        let explicit = req("POST", "/compute", &[("Payload", "41")], b"");
        assert_eq!(payload_for(&explicit, 7).unwrap(), 41 % 7);
    }

    #[test]
    fn loopback_round_trip_and_graceful_stop() {
        let server = Server::bind(
            "127.0.0.1:0",
            svc(),
            ServerConfig {
                keep_alive_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let running = server.spawn();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"POST /compute HTTP/1.1\r\nTolerance: 0.10\r\nObjective: response-time\r\n\
                  Payload: 5\r\nContent-Length: 0\r\n\r\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 200);
        assert!(response.text().contains("\"answered_by\""));

        // Keep-alive: a second request rides the same connection.
        stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let response = read_response(&mut reader, &Limits::default()).unwrap();
        assert_eq!(response.status, 200);

        drop(stream);
        running.stop().unwrap();
    }
}
