//! A real wire-protocol serving stack for Tolerance Tiers.
//!
//! The workspace simulates the paper's tiered cloud service in virtual
//! time; this crate puts the same stack behind an actual socket. A
//! hand-rolled, bounded HTTP/1.1 layer ([`http`]) carries the paper's
//! API:
//!
//! ```text
//! curl --header "Tolerance: 0.01" \
//!      --header "Objective: response-time" \
//!      --data-binary @input-file \
//!      -X POST http://127.0.0.1:8737/compute
//! ```
//!
//! A request traverses annotation parsing
//! ([`tt_serve::frontend::parse_annotations`]), tier routing
//! ([`tt_serve::frontend::TieredFrontend`]), resilient execution on a
//! live worker pool (retries, circuit breakers, degradation — the
//! [`service`] module), and billing — end to end over the wire. The
//! [`server`] module adds the operational surface (`/healthz`,
//! `/stats`, `/metrics`, `/trace/recent`, `/drain`, load shedding,
//! graceful drain) and [`loadgen`]
//! drives it all in closed- or open-loop mode for the
//! `BENCH_serve.json` artifact ([`crate::demo`] supplies the
//! deterministic synthetic deployment they share).
//!
//! No HTTP framework is involved: the build environment is offline, so
//! the wire layer sits directly on `std::net` with hard input bounds,
//! and the dispatch pool is [`tt_core::TaskPool`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod cluster;
pub mod demo;
pub mod doc;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod obs;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod service;
pub mod stats;

pub use cluster::{Fleet, FleetConfig, FrontTier, NodeState, RouteStrategy};

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, BrownoutLevel, TierAdmission,
};
pub use batch::BatchConfig;
pub use http::{
    read_request, read_response, write_response, write_response_with, HttpError, Limits, Request,
    RequestAssembler, Response,
};
pub use loadgen::{
    post_drain, run_load, ArrivalShape, CacheFact, DrainAck, DrainedBy, LoadConfig, LoadMode,
    LoadReport, SlowRequest, TierLoad,
};
pub use metrics::{admission_object, metrics_document, supervisor_object};
pub use obs::{tier_key, CacheEvent, ObsConfig, Observability, ServedSample};
pub use server::{
    socket_config_failures, Engine, RunningServer, Server, ServerConfig, ShutdownHandle,
    PEER_READ_TIMEOUT,
};
pub use service::{
    semantic_key, CacheAdmitTicket, CacheServed, CachedAnswer, CapacityStatus, ComputeOutcome,
    ComputeService, OutcomeSink, PlannerSetup, ResultCache, ServiceConfig, ServiceError,
    ServiceSnapshot, SupervisorSetup, SupervisorStatus, CACHE_HIT_SIM_LATENCY_US,
};
pub use stats::stats_document;
