//! Rendering a [`ServiceSnapshot`] as the `/stats` JSON document.
//!
//! The document reuses [`tt_bench::perfjson`] (the workspace's
//! hand-rolled emitter — `serde_json` is not vendored) so `/stats`
//! and the `BENCH_serve.json` artifact share one JSON dialect:
//! insertion-ordered keys, finite numbers only, stable diffs.

use crate::doc::document_root;
use crate::service::ServiceSnapshot;
use tt_bench::perfjson::{Json, JsonObject};
use tt_sim::LatencyRecorder;

/// Percentiles of a tier's latency in milliseconds, as a JSON object.
/// Empty recorders render as an empty object rather than lying with
/// zeros.
///
/// One [`LatencyRecorder::quantiles`] batch serves all four keys: the
/// recorder sorts its samples once per scrape instead of once per
/// percentile, and never mutates the samples it renders from.
fn latency_object(latency: &LatencyRecorder) -> JsonObject {
    let Some(quantiles) = latency.quantiles(&[0.50, 0.99, 0.999, 1.0]) else {
        return JsonObject::new();
    };
    JsonObject::new()
        .with_num("p50_ms", quantiles[0])
        .with_num("p99_ms", quantiles[1])
        .with_num("p999_ms", quantiles[2])
        .with_num("max_ms", quantiles[3])
}

/// Fold a snapshot into the `/stats` document.
pub fn stats_document(snapshot: &ServiceSnapshot, uptime_ms: u64) -> JsonObject {
    let tier_bills = &snapshot.billing.tiers;
    let tiers: Vec<Json> = snapshot
        .trace
        .by_tier()
        .iter()
        .map(|(key, tier)| {
            let (objective, tol_milli) = key;
            let mut obj = JsonObject::new()
                .with_str("objective", objective)
                .with_num("tolerance", f64::from(*tol_milli) / 1000.0)
                .with_int("requests", tier.requests as i64)
                .with_num("mean_quality_err", tier.mean_err)
                .with("latency", Json::Object(latency_object(&tier.latency)));
            if let Some(bill) = tier_bills.get(key) {
                obj = obj.with_num("revenue_usd", bill.revenue.as_dollars());
            }
            Json::Object(obj)
        })
        .collect();

    let r = &snapshot.resilience;
    let resilience = JsonObject::new()
        .with_int("total_requests", r.total_requests as i64)
        .with_int("failed_invocations", r.failed_invocations as i64)
        .with_int("slow_invocations", r.slow_invocations as i64)
        .with_int("retries", r.retries as i64)
        .with_int("hedges", r.hedges as i64)
        .with_int("breaker_sheds", r.breaker_sheds as i64)
        .with_int("degraded_responses", r.degraded_responses as i64)
        .with_int(
            "tolerance_violations_under_fault",
            r.tolerance_violations_under_fault as i64,
        )
        .with_int("dropped_requests", r.dropped_requests as i64)
        .with_num("availability", r.availability());

    let billing = JsonObject::new()
        .with_num("revenue_usd", snapshot.billing.revenue.as_dollars())
        .with_num(
            "compute_cost_usd",
            snapshot.billing.compute_cost.as_dollars(),
        )
        .with_num("margin_usd", snapshot.billing.margin().as_dollars());

    let mut doc = document_root(uptime_ms)
        .with_int("served", snapshot.served as i64)
        .with("tiers", Json::Array(tiers))
        .with("billing", Json::Object(billing))
        .with("resilience", Json::Object(resilience));
    if let Some(cache) = &snapshot.cache {
        doc = doc.with("cache", Json::Object(cache_object(cache)));
    }
    doc
}

/// The result-cache subtree of `/stats`: raw counters plus the derived
/// hit ratio (hits over consults; bypasses don't consult the cache).
fn cache_object(stats: &tt_cache::CacheStats) -> JsonObject {
    let hits = stats.hits_exact + stats.hits_semantic;
    let consults = hits + stats.misses;
    JsonObject::new()
        .with_int("epoch", stats.epoch as i64)
        .with_int("entries", stats.entries as i64)
        .with_int("hits_exact", stats.hits_exact as i64)
        .with_int("hits_semantic", stats.hits_semantic as i64)
        .with_int("misses", stats.misses as i64)
        .with_int("stale_lookups", stats.stale_lookups as i64)
        .with_int("expired", stats.expired as i64)
        .with_int("inserts", stats.inserts as i64)
        .with_int("kept", stats.kept as i64)
        .with_int("rejected_admission", stats.rejected_admission as i64)
        .with_int("rejected_stale", stats.rejected_stale as i64)
        .with_int("evictions", stats.evictions as i64)
        .with_int("purges", stats.purges as i64)
        .with_num(
            "hit_ratio",
            if consults == 0 {
                0.0
            } else {
                hits as f64 / consults as f64
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_serve::billing::{BillingReport, TierPriceSchedule};
    use tt_serve::resilience::ResilienceStats;
    use tt_serve::trace::{TraceEvent, TraceRecorder};
    use tt_sim::{Money, SimTime};

    #[test]
    fn renders_tiers_billing_and_resilience() {
        let mut trace = TraceRecorder::new();
        for (i, tol) in [(0u64, 0.0), (1, 0.05), (2, 0.05)] {
            trace.record(TraceEvent {
                arrival: SimTime::from_micros(i * 100),
                responded: SimTime::from_micros(i * 100 + 2_000),
                tolerance: tol,
                objective: tt_core::objective::Objective::Cost,
                answered_by: 0,
                quality_err: 0.25,
            });
        }
        let schedule = TierPriceSchedule::list_prices(Money::from_dollars(0.001));
        let snapshot = ServiceSnapshot {
            served: 3,
            billing: BillingReport::from_trace(&trace, &schedule, Money::from_dollars(0.0001)),
            trace,
            resilience: ResilienceStats {
                total_requests: 3,
                retries: 1,
                ..ResilienceStats::default()
            },
            cache: None,
        };
        let doc = stats_document(&snapshot, 1234).render();
        assert!(doc.contains("\"service\": \"toltiers\""));
        assert!(doc.contains("\"served\": 3"));
        assert!(doc.contains("\"tolerance\": 0.05"));
        assert!(doc.contains("\"p999_ms\": 2"));
        assert!(doc.contains("\"retries\": 1"));
        assert!(doc.contains("\"availability\": 1"));
        assert!(doc.contains("\"revenue_usd\""));
        assert!(doc.contains("\"margin_usd\""));
    }

    #[test]
    fn scraping_does_not_mutate_or_reorder_the_samples() {
        let mut recorder = tt_sim::LatencyRecorder::new();
        // Deliberately unsorted arrival order.
        for us in [9_000, 1_000, 7_000, 3_000, 5_000] {
            recorder.record(tt_sim::SimDuration::from_micros(us));
        }
        let before: Vec<f64> = recorder.samples_ms().to_vec();
        let first = latency_object(&recorder).render();
        let second = latency_object(&recorder).render();
        assert_eq!(first, second, "scrapes must be idempotent");
        assert_eq!(
            recorder.samples_ms(),
            &before[..],
            "scraping must not sort or mutate the recorder's samples"
        );
        // The batched quantiles agree with the one-at-a-time
        // percentile the old implementation computed.
        for (key, q) in [
            ("p50_ms", 0.50),
            ("p99_ms", 0.99),
            ("p999_ms", 0.999),
            ("max_ms", 1.0),
        ] {
            let expected = tt_stats::descriptive::percentile(recorder.samples_ms(), q).unwrap();
            assert!(
                first.contains(&format!("\"{key}\": {expected}")),
                "{key}: expected {expected} in {first}"
            );
        }
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let snapshot = ServiceSnapshot {
            served: 0,
            trace: TraceRecorder::new(),
            resilience: ResilienceStats::default(),
            billing: BillingReport::from_trace(
                &TraceRecorder::new(),
                &TierPriceSchedule::list_prices(Money::from_dollars(0.001)),
                Money::ZERO,
            ),
            cache: None,
        };
        let doc = stats_document(&snapshot, 0).render();
        assert!(doc.contains("\"tiers\": []"));
        assert!(doc.contains("\"served\": 0"));
        assert!(!doc.contains("\"cache\""), "cache-off omits the subtree");
    }

    #[test]
    fn cache_subtree_renders_counters_and_hit_ratio() {
        let snapshot = ServiceSnapshot {
            served: 0,
            trace: TraceRecorder::new(),
            resilience: ResilienceStats::default(),
            billing: BillingReport::from_trace(
                &TraceRecorder::new(),
                &TierPriceSchedule::list_prices(Money::from_dollars(0.001)),
                Money::ZERO,
            ),
            cache: Some(tt_cache::CacheStats {
                epoch: 3,
                entries: 10,
                hits_exact: 30,
                hits_semantic: 10,
                misses: 40,
                stale_lookups: 1,
                expired: 0,
                inserts: 12,
                kept: 2,
                rejected_admission: 4,
                rejected_stale: 1,
                evictions: 2,
                purges: 2,
            }),
        };
        let doc = stats_document(&snapshot, 0).render();
        assert!(doc.contains("\"cache\""));
        assert!(doc.contains("\"hits_exact\": 30"));
        assert!(doc.contains("\"hits_semantic\": 10"));
        assert!(doc.contains("\"misses\": 40"));
        assert!(doc.contains("\"hit_ratio\": 0.5"));
        assert!(doc.contains("\"purges\": 2"));
    }
}
