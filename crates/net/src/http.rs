//! A minimal, bounded HTTP/1.1 wire layer over `std::io`.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the subset the Tolerance Tiers API needs (request line,
//! headers, `Content-Length` bodies, keep-alive) with **hard limits on
//! every dimension** — header count, header block size, body size —
//! so malformed, truncated, or hostile input produces a typed
//! [`HttpError`] (mapped to `400`/`413`/`431`/`501`/`505` responses),
//! never a panic and never unbounded allocation. The fuzz suite in
//! `tests/http_fuzz.rs` holds the parser to that contract.

use std::io::{BufRead, Write};

/// Upper bounds the reader enforces while parsing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes in the request line plus all header lines.
    pub max_head_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum body bytes (`Content-Length` above this is refused).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be read. Each variant carries the HTTP
/// status the server answers with; `Truncated` means the peer went away
/// mid-request and there is nobody left to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Not parseable as HTTP (bad request line, bad header shape, bad
    /// `Content-Length`, stray control bytes).
    BadRequest(String),
    /// Header block exceeded [`Limits::max_head_bytes`] or
    /// [`Limits::max_headers`].
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`].
    PayloadTooLarge,
    /// A well-formed method this server does not implement.
    MethodNotImplemented(String),
    /// An HTTP version other than 1.0/1.1.
    VersionNotSupported(String),
    /// The connection closed (or errored) before a full request landed.
    Truncated,
}

impl HttpError {
    /// The status line this error maps to (`None` for `Truncated`:
    /// no response can be delivered to a vanished peer).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::PayloadTooLarge => Some((413, "Payload Too Large")),
            HttpError::MethodNotImplemented(_) => Some((501, "Not Implemented")),
            HttpError::VersionNotSupported(_) => Some((505, "HTTP Version Not Supported")),
            HttpError::Truncated => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::HeadersTooLarge => write!(f, "header block exceeds limits"),
            HttpError::PayloadTooLarge => write!(f, "declared body exceeds limits"),
            HttpError::MethodNotImplemented(m) => write!(f, "method {m} not implemented"),
            HttpError::VersionNotSupported(v) => write!(f, "http version {v} not supported"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// The request target as sent (path plus optional query).
    pub target: String,
    /// Headers in wire order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request path with any query string stripped.
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(path, _)| path)
    }

    /// The `Rules-Epoch` stamp on this request, if any.
    ///
    /// The front tier stamps proxied requests with the fleet's current
    /// rules epoch; a node compares it against its own epoch to detect
    /// that it has missed a broadcast. `Ok(None)` means unstamped
    /// (direct clients never stamp).
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] when the stamp is present but not a
    /// decimal `u64` — a malformed epoch is a protocol error, not a
    /// missing one.
    pub fn rules_epoch(&self) -> Result<Option<u64>, HttpError> {
        parse_rules_epoch(self.header(RULES_EPOCH_HEADER))
    }
}

/// Wire header carrying the rules epoch, both directions: the front
/// tier stamps proxied requests with the epoch it expects, nodes stamp
/// every response with the epoch they actually served under.
pub const RULES_EPOCH_HEADER: &str = "Rules-Epoch";

/// Parse an optional `Rules-Epoch` header value.
///
/// # Errors
///
/// [`HttpError::BadRequest`] when present but not a decimal `u64`
/// (empty, signed, hex, overflowing, or trailing garbage all count).
pub fn parse_rules_epoch(value: Option<&str>) -> Result<Option<u64>, HttpError> {
    match value {
        None => Ok(None),
        Some(raw) => raw
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| HttpError::BadRequest(format!("bad rules epoch `{raw}`"))),
    }
}

/// Methods this server understands at the wire level (routing decides
/// which are allowed per path).
const KNOWN_METHODS: [&str; 5] = ["GET", "POST", "HEAD", "PUT", "DELETE"];

/// Read one line terminated by `\n`, bounded by what remains of
/// `budget`. Returns `Ok(None)` on clean EOF before any byte.
fn read_line_bounded(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Truncated),
        }
        if *budget == 0 {
            return Err(HttpError::HeadersTooLarge);
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(HttpError::BadRequest("non-utf8 header bytes".into())),
            };
        }
        line.push(byte[0]);
    }
}

/// Read one request off `reader` under `limits`.
///
/// Returns `Ok(None)` when the connection closed cleanly before a new
/// request started (the keep-alive end-of-stream case).
///
/// # Errors
///
/// A typed [`HttpError`] for anything else — malformed, oversized, or
/// truncated input. This function never panics on any byte sequence.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let mut head_budget = limits.max_head_bytes;

    // Request line. Tolerate (bounded) leading blank lines, as RFC 7230
    // suggests for robustness.
    let request_line = loop {
        match read_line_bounded(reader, &mut head_budget)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{}`",
                request_line.chars().take(80).collect::<String>()
            )))
        }
    };
    let method = method.to_ascii_uppercase();
    if !KNOWN_METHODS.contains(&method.as_str()) {
        return Err(HttpError::MethodNotImplemented(method));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::VersionNotSupported(version.to_string()));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{}` is not origin-form",
            target.chars().take(80).collect::<String>()
        )));
    }

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line_bounded(reader, &mut head_budget)? {
            None => return Err(HttpError::Truncated),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!(
                "malformed header line `{}`",
                line.chars().take(80).collect::<String>()
            ))
        })?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name `{}`",
                name.chars().take(80).collect::<String>()
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    // Body, gated on a sane Content-Length.
    let content_length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        let mut filled = 0;
        while filled < content_length {
            match reader.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(HttpError::Truncated),
            }
        }
    }

    let keep_alive = {
        let connection = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("connection"))
            .map(|(_, v)| v.to_ascii_lowercase());
        match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => version == "HTTP/1.1",
        }
    };

    Ok(Some(Request {
        method,
        target: target.to_string(),
        headers,
        body,
        keep_alive,
    }))
}

/// Serialize and send one response. `content_type` is omitted when the
/// body is empty.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, reason, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response headers (`Retry-After`,
/// `Brownout`, ...). Header names and values must already be
/// wire-safe; this layer does no escaping.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    if !body.is_empty() {
        head.push_str(&format!("Content-Type: {content_type}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// A response as the load-generator client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in wire order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Read one response off `reader` (client side), bounded by `limits`.
///
/// # Errors
///
/// A typed [`HttpError`] for malformed, oversized, or truncated input.
pub fn read_response(reader: &mut impl BufRead, limits: &Limits) -> Result<Response, HttpError> {
    let mut head_budget = limits.max_head_bytes;
    let status_line = match read_line_bounded(reader, &mut head_budget)? {
        None => return Err(HttpError::Truncated),
        Some(line) => line,
    };
    let mut parts = status_line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed status line `{}`",
                status_line.chars().take(80).collect::<String>()
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::VersionNotSupported(version.to_string()));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| HttpError::BadRequest(format!("bad status code `{code}`")))?;

    let mut headers = Vec::new();
    loop {
        let line = match read_line_bounded(reader, &mut head_budget)? {
            None => return Err(HttpError::Truncated),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!(
                "malformed header line `{}`",
                line.chars().take(80).collect::<String>()
            ))
        })?;
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Truncated),
        }
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_full_post() {
        let req = parse(
            b"POST /compute HTTP/1.1\r\nTolerance: 0.01\r\nObjective: response-time\r\n\
              Content-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/compute");
        assert_eq!(req.header("tolerance"), Some("0.01"));
        assert_eq!(req.header("OBJECTIVE"), Some("response-time"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn rules_epoch_round_trips_through_request_and_response() {
        // Request direction: a stamped proxy request parses back to
        // the same epoch.
        let req = parse(
            b"POST /compute HTTP/1.1\r\nRules-Epoch: 42\r\nTolerance: 0\r\n\
              Content-Length: 0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.rules_epoch(), Ok(Some(42)));

        // Response direction: a node-stamped reply survives emit+parse.
        let mut wire = Vec::new();
        write_response_with(
            &mut wire,
            200,
            "OK",
            "application/json",
            &[(RULES_EPOCH_HEADER, "42".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        let response = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(
            parse_rules_epoch(response.header("rules-epoch")),
            Ok(Some(42))
        );
    }

    #[test]
    fn unstamped_requests_have_no_epoch() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.rules_epoch(), Ok(None));
        assert_eq!(parse_rules_epoch(None), Ok(None));
    }

    #[test]
    fn malformed_epochs_are_bad_requests() {
        for bad in [
            "",
            "  ",
            "-1",
            "1.5",
            "0x10",
            "18446744073709551616",
            "7 up",
        ] {
            let err = parse_rules_epoch(Some(bad)).unwrap_err();
            assert!(
                matches!(&err, HttpError::BadRequest(_)),
                "`{bad}` must be a 400, got {err:?}"
            );
            assert_eq!(err.status(), Some((400, "Bad Request")));
        }
        // Benign surrounding whitespace is tolerated, like other
        // header values.
        assert_eq!(parse_rules_epoch(Some(" 7 ")), Ok(Some(7)));
        assert_eq!(parse_rules_epoch(Some("0")), Ok(Some(0)));
    }

    #[test]
    fn parses_get_without_body_and_query_strings() {
        let req = parse(b"GET /stats?pretty=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/stats?pretty=1");
        assert_eq!(req.path(), "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none_truncation_is_an_error() {
        assert_eq!(parse(b""), Ok(None));
        assert_eq!(parse(b"POST /compute HT"), Err(HttpError::Truncated));
        assert_eq!(
            parse(b"POST /compute HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        );
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn bounded_header_count_maps_to_431() {
        let limits = Limits {
            max_headers: 4,
            ..Limits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..8 {
            raw.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = read_request(&mut Cursor::new(raw), &limits).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn bounded_head_bytes_maps_to_431() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\nLong: ".to_vec();
        raw.extend_from_slice(&vec![b'x'; 4096]);
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(
            read_request(&mut Cursor::new(raw), &limits).unwrap_err(),
            HttpError::HeadersTooLarge
        );
    }

    #[test]
    fn oversized_declared_body_maps_to_413_without_allocating() {
        let limits = Limits {
            max_body_bytes: 16,
            ..Limits::default()
        };
        // The body itself never needs to arrive: the declaration is
        // enough to refuse.
        let raw = b"POST /compute HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec();
        let err = read_request(&mut Cursor::new(raw), &limits).unwrap_err();
        assert_eq!(err, HttpError::PayloadTooLarge);
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for raw in [
            b"NONSENSE\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            b"GET noslash HTTP/1.1\r\n\r\n".to_vec(),
        ] {
            let err = read_request(&mut Cursor::new(raw), &Limits::default()).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "expected 400, got {err:?}"
            );
        }
    }

    #[test]
    fn unknown_method_and_version_get_distinct_statuses() {
        assert_eq!(
            parse(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::MethodNotImplemented("BREW".into()))
        );
        assert_eq!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::VersionNotSupported("HTTP/2.0".into()))
        );
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            "OK",
            "application/json",
            b"{\"ok\":true}",
            true,
        )
        .unwrap();
        let resp = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.text(), "{\"ok\":true}");
    }

    #[test]
    fn extra_headers_ride_the_status_line() {
        let mut wire = Vec::new();
        write_response_with(
            &mut wire,
            429,
            "Too Many Requests",
            "application/json",
            &[("Retry-After", "2".to_string())],
            b"{}",
            true,
        )
        .unwrap();
        let resp = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
    }

    #[test]
    fn empty_body_omits_content_type() {
        let mut wire = Vec::new();
        write_response(&mut wire, 204, "No Content", "text/plain", b"", false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("Content-Type"));
        assert!(text.contains("Content-Length: 0"));
        assert!(text.contains("Connection: close"));
    }
}
