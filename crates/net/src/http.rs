//! A minimal, bounded HTTP/1.1 wire layer over `std::io`.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the subset the Tolerance Tiers API needs (request line,
//! headers, `Content-Length` bodies, keep-alive) with **hard limits on
//! every dimension** — header count, header block size, body size —
//! so malformed, truncated, or hostile input produces a typed
//! [`HttpError`] (mapped to `400`/`413`/`431`/`501`/`505` responses),
//! never a panic and never unbounded allocation. The fuzz suite in
//! `tests/http_fuzz.rs` holds the parser to that contract.

use std::io::{BufRead, Write};

/// Upper bounds the reader enforces while parsing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes in the request line plus all header lines.
    pub max_head_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum body bytes (`Content-Length` above this is refused).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be read. Each variant carries the HTTP
/// status the server answers with; `Truncated` means the peer went away
/// mid-request and there is nobody left to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Not parseable as HTTP (bad request line, bad header shape, bad
    /// `Content-Length`, stray control bytes).
    BadRequest(String),
    /// Header block exceeded [`Limits::max_head_bytes`] or
    /// [`Limits::max_headers`].
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`].
    PayloadTooLarge,
    /// A well-formed method this server does not implement.
    MethodNotImplemented(String),
    /// An HTTP version other than 1.0/1.1.
    VersionNotSupported(String),
    /// The connection closed (or errored) before a full request landed.
    Truncated,
}

impl HttpError {
    /// The status line this error maps to (`None` for `Truncated`:
    /// no response can be delivered to a vanished peer).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::PayloadTooLarge => Some((413, "Payload Too Large")),
            HttpError::MethodNotImplemented(_) => Some((501, "Not Implemented")),
            HttpError::VersionNotSupported(_) => Some((505, "HTTP Version Not Supported")),
            HttpError::Truncated => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::HeadersTooLarge => write!(f, "header block exceeds limits"),
            HttpError::PayloadTooLarge => write!(f, "declared body exceeds limits"),
            HttpError::MethodNotImplemented(m) => write!(f, "method {m} not implemented"),
            HttpError::VersionNotSupported(v) => write!(f, "http version {v} not supported"),
            HttpError::Truncated => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// The request target as sent (path plus optional query).
    pub target: String,
    /// Headers in wire order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request path with any query string stripped.
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(path, _)| path)
    }

    /// The `Rules-Epoch` stamp on this request, if any.
    ///
    /// The front tier stamps proxied requests with the fleet's current
    /// rules epoch; a node compares it against its own epoch to detect
    /// that it has missed a broadcast. `Ok(None)` means unstamped
    /// (direct clients never stamp).
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] when the stamp is present but not a
    /// decimal `u64` — a malformed epoch is a protocol error, not a
    /// missing one.
    pub fn rules_epoch(&self) -> Result<Option<u64>, HttpError> {
        parse_rules_epoch(self.header(RULES_EPOCH_HEADER))
    }

    /// The distributed-tracing context stamped on this request, if
    /// any: `X-Trace-Id` carries the fleet-wide trace id, and
    /// `X-Parent-Span` carries `"{parent_span_id}/{hop}"` — the
    /// stamping tier's proxy span plus this request's hop depth.
    /// `None` when unstamped (direct clients) **or** malformed: a bad
    /// trace stamp must never fail a request, it just starts a fresh
    /// local trace.
    pub fn trace_context(&self) -> Option<tt_obs::TraceContext> {
        let trace_id = self.header(TRACE_ID_HEADER)?.trim().parse::<u64>().ok()?;
        let (parent_span, hop) = match self.header(PARENT_SPAN_HEADER) {
            Some(raw) => {
                let (span, hop) = raw.trim().split_once('/')?;
                (
                    Some(span.trim().parse::<u32>().ok()?),
                    hop.trim().parse::<u32>().ok()?,
                )
            }
            None => (None, 0),
        };
        Some(tt_obs::TraceContext {
            trace_id,
            parent_span,
            hop,
        })
    }
}

/// Wire header carrying the rules epoch, both directions: the front
/// tier stamps proxied requests with the epoch it expects, nodes stamp
/// every response with the epoch they actually served under.
pub const RULES_EPOCH_HEADER: &str = "Rules-Epoch";

/// Wire header carrying the fleet-wide trace id (decimal `u64`). The
/// front tier originates it on proxied requests; nodes echo it on
/// replies so clients can correlate a response to `GET /trace/{id}`.
pub const TRACE_ID_HEADER: &str = "X-Trace-Id";

/// Wire header carrying `"{parent_span_id}/{hop}"`: which span in the
/// hop-above trace is this request's parent, and how many proxy hops
/// deep the request is.
pub const PARENT_SPAN_HEADER: &str = "X-Parent-Span";

/// Format an [`tt_obs::TraceContext`]'s `X-Parent-Span` value.
pub fn format_parent_span(context: &tt_obs::TraceContext) -> String {
    format!("{}/{}", context.parent_span.unwrap_or(0), context.hop)
}

/// Parse an optional `Rules-Epoch` header value.
///
/// # Errors
///
/// [`HttpError::BadRequest`] when present but not a decimal `u64`
/// (empty, signed, hex, overflowing, or trailing garbage all count).
pub fn parse_rules_epoch(value: Option<&str>) -> Result<Option<u64>, HttpError> {
    match value {
        None => Ok(None),
        Some(raw) => raw
            .trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| HttpError::BadRequest(format!("bad rules epoch `{raw}`"))),
    }
}

/// Methods this server understands at the wire level (routing decides
/// which are allowed per path).
const KNOWN_METHODS: [&str; 5] = ["GET", "POST", "HEAD", "PUT", "DELETE"];

/// Read one line terminated by `\n`, bounded by what remains of
/// `budget`. Returns `Ok(None)` on clean EOF before any byte.
fn read_line_bounded(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated);
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Truncated),
        }
        if *budget == 0 {
            return Err(HttpError::HeadersTooLarge);
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(HttpError::BadRequest("non-utf8 header bytes".into())),
            };
        }
        line.push(byte[0]);
    }
}

/// Read one request off `reader` under `limits`.
///
/// Returns `Ok(None)` when the connection closed cleanly before a new
/// request started (the keep-alive end-of-stream case).
///
/// # Errors
///
/// A typed [`HttpError`] for anything else — malformed, oversized, or
/// truncated input. This function never panics on any byte sequence.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let mut head_budget = limits.max_head_bytes;

    // Request line. Tolerate (bounded) leading blank lines, as RFC 7230
    // suggests for robustness.
    let request_line = loop {
        match read_line_bounded(reader, &mut head_budget)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{}`",
                request_line.chars().take(80).collect::<String>()
            )))
        }
    };
    let method = method.to_ascii_uppercase();
    if !KNOWN_METHODS.contains(&method.as_str()) {
        return Err(HttpError::MethodNotImplemented(method));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::VersionNotSupported(version.to_string()));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{}` is not origin-form",
            target.chars().take(80).collect::<String>()
        )));
    }

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line_bounded(reader, &mut head_budget)? {
            None => return Err(HttpError::Truncated),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!(
                "malformed header line `{}`",
                line.chars().take(80).collect::<String>()
            ))
        })?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name `{}`",
                name.chars().take(80).collect::<String>()
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    // Body, gated on a sane Content-Length.
    let content_length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        let mut filled = 0;
        while filled < content_length {
            match reader.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(HttpError::Truncated),
            }
        }
    }

    let keep_alive = {
        let connection = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("connection"))
            .map(|(_, v)| v.to_ascii_lowercase());
        match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => version == "HTTP/1.1",
        }
    };

    Ok(Some(Request {
        method,
        target: target.to_string(),
        headers,
        body,
        keep_alive,
    }))
}

/// What one parse attempt over a buffered prefix concluded.
enum Assembled {
    /// A full request starts at byte 0 and spans `consumed` bytes.
    Complete { request: Request, consumed: usize },
    /// The prefix is valid so far but incomplete. `required` is the
    /// total byte count needed once the head has fully parsed (head
    /// plus declared body), `None` while the head itself is unfinished.
    NeedMore { required: Option<usize> },
}

/// Find the next line in `buf[*pos..]` under the remaining head
/// `budget`, mirroring [`read_line_bounded`]'s accounting exactly: every
/// consumed byte (including `\r` and `\n`) costs one budget unit, and
/// the error fires on the byte that would arrive with zero budget left.
///
/// `Ok(None)` means the line's terminator has not arrived yet.
fn take_line<'b>(
    buf: &'b [u8],
    pos: &mut usize,
    budget: &mut usize,
) -> Result<Option<&'b str>, HttpError> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(i) => {
            if i >= *budget {
                return Err(HttpError::HeadersTooLarge);
            }
            *budget -= i + 1;
            *pos += i + 1;
            let mut line = &rest[..i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            match std::str::from_utf8(line) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(HttpError::BadRequest("non-utf8 header bytes".into())),
            }
        }
        None => {
            if rest.len() > *budget {
                return Err(HttpError::HeadersTooLarge);
            }
            Ok(None)
        }
    }
}

/// Parse one request from the front of `buf`, or report how much more
/// input is needed. Pure over the slice: nothing is consumed until the
/// caller acts on `Assembled::Complete::consumed`.
///
/// This is the incremental twin of [`read_request`] and must agree with
/// it verdict-for-verdict on every complete input (the fuzz suite
/// enforces the parity); `NeedMore` corresponds to the prefix states
/// where `read_request` would still be blocked on the socket.
fn assemble(buf: &[u8], limits: &Limits) -> Result<Assembled, HttpError> {
    let mut budget = limits.max_head_bytes;
    let mut pos = 0usize;

    // Request line, tolerating (bounded) leading blank lines.
    let request_line = loop {
        match take_line(buf, &mut pos, &mut budget)? {
            None => return Ok(Assembled::NeedMore { required: None }),
            Some("") => continue,
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{}`",
                request_line.chars().take(80).collect::<String>()
            )))
        }
    };
    let method = method.to_ascii_uppercase();
    if !KNOWN_METHODS.contains(&method.as_str()) {
        return Err(HttpError::MethodNotImplemented(method));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::VersionNotSupported(version.to_string()));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{}` is not origin-form",
            target.chars().take(80).collect::<String>()
        )));
    }

    // Header block.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match take_line(buf, &mut pos, &mut budget)? {
            None => return Ok(Assembled::NeedMore { required: None }),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!(
                "malformed header line `{}`",
                line.chars().take(80).collect::<String>()
            ))
        })?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name `{}`",
                name.chars().take(80).collect::<String>()
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let head_end = pos;

    // Body, gated on a sane Content-Length. The declaration alone is
    // enough to refuse an oversized body — no body byte need arrive.
    let content_length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }
    let required = head_end + content_length;
    if buf.len() < required {
        return Ok(Assembled::NeedMore {
            required: Some(required),
        });
    }
    let body = buf[head_end..required].to_vec();

    let keep_alive = {
        let connection = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("connection"))
            .map(|(_, v)| v.to_ascii_lowercase());
        match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => version == "HTTP/1.1",
        }
    };

    Ok(Assembled::Complete {
        request: Request {
            method,
            target: target.to_string(),
            headers,
            body,
            keep_alive,
        },
        consumed: required,
    })
}

/// Incremental request parser for readiness-driven (non-blocking) I/O.
///
/// Where [`read_request`] pulls bytes off a blocking reader, the
/// assembler is fed whatever a non-blocking read produced and parses
/// straight out of its internal buffer — headers are sliced in place
/// and only the final owned [`Request`] allocates. It enforces the same
/// [`Limits`] with the same accounting as `read_request` and yields the
/// same verdict for every complete input; pipelined requests queue up
/// in the buffer and pop out one [`next_request`] call at a time.
///
/// Parse attempts are gated so byte-at-a-time input stays cheap: the
/// head is only re-parsed when a new line terminator has arrived (or
/// the head budget is exhausted), and once the head is complete the
/// body phase is a plain length check until enough bytes are buffered.
///
/// After an `Err` the connection is unrecoverable — the caller must
/// answer with the error's status (if any) and close, exactly as with
/// `read_request`.
///
/// [`next_request`]: RequestAssembler::next_request
#[derive(Debug)]
pub struct RequestAssembler {
    limits: Limits,
    buf: Vec<u8>,
    /// Complete lines buffered but not yet consumed by a parse attempt.
    pending_newlines: usize,
    /// Total bytes the in-progress request needs, once its head parsed.
    required: Option<usize>,
}

impl RequestAssembler {
    /// A fresh assembler enforcing `limits` per request.
    pub fn new(limits: Limits) -> Self {
        RequestAssembler {
            limits,
            buf: Vec::new(),
            pending_newlines: 0,
            required: None,
        }
    }

    /// Feed bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.pending_newlines += bytes.iter().filter(|&&b| b == b'\n').count();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered — EOF here is a clean close, EOF
    /// with buffered bytes is a mid-request truncation.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the current request's head has fully parsed and only
    /// body bytes are outstanding.
    pub fn awaiting_body(&self) -> bool {
        self.required.is_some()
    }

    fn should_attempt(&self) -> bool {
        if self.buf.is_empty() {
            return false;
        }
        match self.required {
            Some(n) => self.buf.len() >= n,
            None => self.pending_newlines > 0 || self.buf.len() > self.limits.max_head_bytes,
        }
    }

    /// Pop the next complete request, if one is fully buffered.
    ///
    /// `Ok(None)` means more input is needed. Call in a loop after each
    /// feed: pipelined input yields one request per call.
    ///
    /// # Errors
    ///
    /// The same typed [`HttpError`]s as [`read_request`]; the
    /// connection must be closed afterwards.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if !self.should_attempt() {
            return Ok(None);
        }
        self.pending_newlines = 0;
        match assemble(&self.buf, &self.limits)? {
            Assembled::Complete { request, consumed } => {
                self.buf.drain(..consumed);
                self.required = None;
                // Leftover pipelined bytes may already hold the next
                // head; re-arm the gate from what remains.
                self.pending_newlines = self.buf.iter().filter(|&&b| b == b'\n').count();
                Ok(Some(request))
            }
            Assembled::NeedMore { required } => {
                self.required = required;
                Ok(None)
            }
        }
    }
}

/// Serialize and send one response. `content_type` is omitted when the
/// body is empty.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, reason, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response headers (`Retry-After`,
/// `Brownout`, ...). Header names and values must already be
/// wire-safe; this layer does no escaping.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    if !body.is_empty() {
        head.push_str(&format!("Content-Type: {content_type}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// A response as the load-generator client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in wire order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First header value whose name matches case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Read one response off `reader` (client side), bounded by `limits`.
///
/// # Errors
///
/// A typed [`HttpError`] for malformed, oversized, or truncated input.
pub fn read_response(reader: &mut impl BufRead, limits: &Limits) -> Result<Response, HttpError> {
    let mut head_budget = limits.max_head_bytes;
    let status_line = match read_line_bounded(reader, &mut head_budget)? {
        None => return Err(HttpError::Truncated),
        Some(line) => line,
    };
    let mut parts = status_line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed status line `{}`",
                status_line.chars().take(80).collect::<String>()
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::VersionNotSupported(version.to_string()));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| HttpError::BadRequest(format!("bad status code `{code}`")))?;

    let mut headers = Vec::new();
    loop {
        let line = match read_line_bounded(reader, &mut head_budget)? {
            None => return Err(HttpError::Truncated),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!(
                "malformed header line `{}`",
                line.chars().take(80).collect::<String>()
            ))
        })?;
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let content_length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Truncated),
        }
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_full_post() {
        let req = parse(
            b"POST /compute HTTP/1.1\r\nTolerance: 0.01\r\nObjective: response-time\r\n\
              Content-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/compute");
        assert_eq!(req.header("tolerance"), Some("0.01"));
        assert_eq!(req.header("OBJECTIVE"), Some("response-time"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn rules_epoch_round_trips_through_request_and_response() {
        // Request direction: a stamped proxy request parses back to
        // the same epoch.
        let req = parse(
            b"POST /compute HTTP/1.1\r\nRules-Epoch: 42\r\nTolerance: 0\r\n\
              Content-Length: 0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.rules_epoch(), Ok(Some(42)));

        // Response direction: a node-stamped reply survives emit+parse.
        let mut wire = Vec::new();
        write_response_with(
            &mut wire,
            200,
            "OK",
            "application/json",
            &[(RULES_EPOCH_HEADER, "42".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        let response = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(
            parse_rules_epoch(response.header("rules-epoch")),
            Ok(Some(42))
        );
    }

    #[test]
    fn unstamped_requests_have_no_epoch() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.rules_epoch(), Ok(None));
        assert_eq!(parse_rules_epoch(None), Ok(None));
    }

    #[test]
    fn malformed_epochs_are_bad_requests() {
        for bad in [
            "",
            "  ",
            "-1",
            "1.5",
            "0x10",
            "18446744073709551616",
            "7 up",
        ] {
            let err = parse_rules_epoch(Some(bad)).unwrap_err();
            assert!(
                matches!(&err, HttpError::BadRequest(_)),
                "`{bad}` must be a 400, got {err:?}"
            );
            assert_eq!(err.status(), Some((400, "Bad Request")));
        }
        // Benign surrounding whitespace is tolerated, like other
        // header values.
        assert_eq!(parse_rules_epoch(Some(" 7 ")), Ok(Some(7)));
        assert_eq!(parse_rules_epoch(Some("0")), Ok(Some(0)));
    }

    #[test]
    fn parses_get_without_body_and_query_strings() {
        let req = parse(b"GET /stats?pretty=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/stats?pretty=1");
        assert_eq!(req.path(), "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none_truncation_is_an_error() {
        assert_eq!(parse(b""), Ok(None));
        assert_eq!(parse(b"POST /compute HT"), Err(HttpError::Truncated));
        assert_eq!(
            parse(b"POST /compute HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        );
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn bounded_header_count_maps_to_431() {
        let limits = Limits {
            max_headers: 4,
            ..Limits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..8 {
            raw.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = read_request(&mut Cursor::new(raw), &limits).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn bounded_head_bytes_maps_to_431() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\nLong: ".to_vec();
        raw.extend_from_slice(&vec![b'x'; 4096]);
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(
            read_request(&mut Cursor::new(raw), &limits).unwrap_err(),
            HttpError::HeadersTooLarge
        );
    }

    #[test]
    fn oversized_declared_body_maps_to_413_without_allocating() {
        let limits = Limits {
            max_body_bytes: 16,
            ..Limits::default()
        };
        // The body itself never needs to arrive: the declaration is
        // enough to refuse.
        let raw = b"POST /compute HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec();
        let err = read_request(&mut Cursor::new(raw), &limits).unwrap_err();
        assert_eq!(err, HttpError::PayloadTooLarge);
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for raw in [
            b"NONSENSE\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            b"GET noslash HTTP/1.1\r\n\r\n".to_vec(),
        ] {
            let err = read_request(&mut Cursor::new(raw), &Limits::default()).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "expected 400, got {err:?}"
            );
        }
    }

    #[test]
    fn unknown_method_and_version_get_distinct_statuses() {
        assert_eq!(
            parse(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::MethodNotImplemented("BREW".into()))
        );
        assert_eq!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::VersionNotSupported("HTTP/2.0".into()))
        );
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            "OK",
            "application/json",
            b"{\"ok\":true}",
            true,
        )
        .unwrap();
        let resp = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.text(), "{\"ok\":true}");
    }

    #[test]
    fn extra_headers_ride_the_status_line() {
        let mut wire = Vec::new();
        write_response_with(
            &mut wire,
            429,
            "Too Many Requests",
            "application/json",
            &[("Retry-After", "2".to_string())],
            b"{}",
            true,
        )
        .unwrap();
        let resp = read_response(&mut Cursor::new(wire), &Limits::default()).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
    }

    #[test]
    fn assembler_pops_pipelined_requests_one_at_a_time() {
        let mut asm = RequestAssembler::new(Limits::default());
        asm.push(
            b"POST /compute HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
              GET /stats HTTP/1.1\r\n\r\nGET /healthz",
        );
        let first = asm.next_request().unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"abc");
        let second = asm.next_request().unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path(), "/stats");
        // Third request's head is incomplete: not ready, bytes retained.
        assert_eq!(asm.next_request().unwrap(), None);
        assert!(!asm.is_empty());
        asm.push(b" HTTP/1.1\r\n\r\n");
        let third = asm.next_request().unwrap().unwrap();
        assert_eq!(third.path(), "/healthz");
        assert!(asm.is_empty());
    }

    #[test]
    fn assembler_handles_byte_dribble() {
        let wire = b"POST /compute HTTP/1.1\r\nTolerance: 0.05\r\nContent-Length: 5\r\n\r\nhello";
        let mut asm = RequestAssembler::new(Limits::default());
        for (i, byte) in wire.iter().enumerate() {
            asm.push(std::slice::from_ref(byte));
            let popped = asm.next_request().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(popped, None, "complete at byte {i} of {}", wire.len());
            } else {
                let req = popped.expect("last byte completes the request");
                assert_eq!(req.body, b"hello");
                assert_eq!(req.header("tolerance"), Some("0.05"));
            }
        }
    }

    #[test]
    fn assembler_matches_blocking_reader_verdicts() {
        // A complete-input cross-check of the two parsers; the fuzz
        // suite extends this to arbitrary bytes.
        for raw in [
            b"\r\n\r\nGET / HTTP/1.1\r\n\r\n".to_vec(),
            b"NONSENSE\r\n\r\n".to_vec(),
            b"BREW /pot HTTP/1.1\r\n\r\n".to_vec(),
            b"GET / HTTP/2.0\r\n\r\n".to_vec(),
            b"GET noslash HTTP/1.1\r\n\r\n".to_vec(),
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n".to_vec(),
        ] {
            let blocking = read_request(&mut Cursor::new(raw.clone()), &Limits::default());
            let mut asm = RequestAssembler::new(Limits::default());
            asm.push(&raw);
            let incremental = asm.next_request();
            match (&blocking, &incremental) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a, b),
                other => panic!("verdicts diverge on {raw:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn assembler_enforces_head_budget_without_a_terminator() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut asm = RequestAssembler::new(limits);
        // 65 bytes of request line with no newline: the 65th byte would
        // arrive with zero budget, exactly like the blocking reader.
        asm.push(&[b'G'; 65]);
        assert_eq!(asm.next_request(), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn assembler_refuses_oversized_declared_body_before_it_arrives() {
        let limits = Limits {
            max_body_bytes: 16,
            ..Limits::default()
        };
        let mut asm = RequestAssembler::new(limits);
        asm.push(b"POST /compute HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        assert_eq!(asm.next_request(), Err(HttpError::PayloadTooLarge));
    }

    #[test]
    fn assembler_tracks_body_phase() {
        let mut asm = RequestAssembler::new(Limits::default());
        asm.push(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n");
        assert_eq!(asm.next_request().unwrap(), None);
        assert!(asm.awaiting_body());
        asm.push(b"body");
        let req = asm.next_request().unwrap().unwrap();
        assert_eq!(req.body, b"body");
        assert!(!asm.awaiting_body());
    }

    #[test]
    fn empty_body_omits_content_type() {
        let mut wire = Vec::new();
        write_response(&mut wire, 204, "No Content", "text/plain", b"", false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("Content-Type"));
        assert!(text.contains("Content-Length: 0"));
        assert!(text.contains("Connection: close"));
    }
}
