//! A load generator for the wire-protocol serving stack.
//!
//! Two driving disciplines, both over real sockets:
//!
//! * **Closed loop** — `concurrency` clients, each with one persistent
//!   keep-alive connection, firing its next request the moment the
//!   previous response lands. Measures the server's capacity.
//! * **Open loop** — requests fire on a schedule drawn from a seeded
//!   [`ArrivalProcess`], independent of response times (one
//!   connection per request). Measures behaviour under offered load,
//!   including coordinated-omission-free tail latency: each latency is
//!   measured from the request's *scheduled* send time.
//!
//! The request multiset is deterministic: payloads, tolerances, and
//! objectives come from [`RequestMix::sample`] under a fixed seed, and
//! each request carries its payload index in a `Payload` header, so
//! two runs against deterministic services produce identical per-tier
//! billed totals (wall-clock latencies of course vary).

use crate::http::{read_response, HttpError, Limits};
use crate::server::PEER_READ_TIMEOUT;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tt_core::request::ServiceRequest;
use tt_sim::fault::{WireFaultOutcome, WireFaultPlan};
use tt_sim::ArrivalProcess;
use tt_stats::descriptive::percentile;
use tt_workloads::{Keyspace, RequestMix};

/// How the generator paces requests.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadMode {
    /// `concurrency` clients in lock-step with their own responses.
    Closed {
        /// Number of concurrent client connections.
        concurrency: usize,
    },
    /// Seeded Poisson arrivals at `rate_per_sec`, response-independent.
    Open {
        /// Mean arrival rate, requests per second.
        rate_per_sec: f64,
    },
}

/// How an open-loop schedule's rate varies over the run. Shapes
/// modulate the [`LoadMode::Open`] base rate via the seeded
/// non-homogeneous processes in [`tt_sim::arrivals`]; the schedule
/// stays response-independent, so tail latency remains free of
/// coordinated omission under every shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalShape {
    /// Homogeneous Poisson at the base rate.
    Steady,
    /// Sinusoidal day/night cycle around the base rate: trough at the
    /// start of the run, peak half a period in.
    Diurnal {
        /// Peak-to-mean swing, in (0, 1].
        amplitude: f64,
        /// One full day/night cycle.
        period: Duration,
    },
    /// A flash crowd: the base rate multiplies by `multiplier` inside
    /// `[start, start + duration)` and reverts after.
    Flash {
        /// Rate multiplier during the crowd (≥ 1).
        multiplier: f64,
        /// When the crowd arrives, from the start of the run.
        start: Duration,
        /// How long the crowd lasts.
        duration: Duration,
    },
}

impl ArrivalShape {
    /// The phase label a request scheduled at `due` reports under —
    /// `None` for [`ArrivalShape::Steady`] (one homogeneous phase).
    /// Flash crowds split pre/during/post; diurnal cycles split into
    /// quarters (q1 = trough-side ramp, q3 = peak).
    pub fn phase_of(&self, due: Duration) -> Option<&'static str> {
        match self {
            ArrivalShape::Steady => None,
            ArrivalShape::Diurnal { period, .. } => {
                let quarter = period.as_secs_f64() / 4.0;
                match (due.as_secs_f64() / quarter) as u64 % 4 {
                    0 => Some("q1"),
                    1 => Some("q2"),
                    2 => Some("q3"),
                    _ => Some("q4"),
                }
            }
            ArrivalShape::Flash {
                start, duration, ..
            } => {
                if due < *start {
                    Some("pre")
                } else if due < *start + *duration {
                    Some("during")
                } else {
                    Some("post")
                }
            }
        }
    }

    /// Build the seeded arrival process for this shape around
    /// `rate_per_sec`.
    fn process(&self, rate_per_sec: f64, seed: u64) -> Result<ArrivalProcess, String> {
        use tt_sim::SimDuration;
        let sim = |d: &Duration| SimDuration::from_micros(d.as_micros() as u64);
        match self {
            ArrivalShape::Steady => ArrivalProcess::poisson(rate_per_sec, seed),
            ArrivalShape::Diurnal { amplitude, period } => {
                ArrivalProcess::diurnal(rate_per_sec, *amplitude, sim(period), seed)
            }
            ArrivalShape::Flash {
                multiplier,
                start,
                duration,
            } => ArrivalProcess::flash(rate_per_sec, *multiplier, sim(start), sim(duration), seed),
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Pacing discipline.
    pub mode: LoadMode,
    /// Rate shape for the open loop (ignored by the closed loop, which
    /// has no schedule to shape).
    pub arrival: ArrivalShape,
    /// Tolerance/objective mix requests are drawn from.
    pub mix: RequestMix,
    /// Payload-index distribution (`--keyspace`): uniform, sequential
    /// (repeat-free), Zipf-skewed, or repeat-heavy — the knob that
    /// decides how much the semantic cache can possibly hit.
    pub keyspace: Keyspace,
    /// Number of profiled payloads on the target service.
    pub payloads: usize,
    /// Seed for the request sample (and the open-loop schedule).
    pub seed: u64,
    /// Client-side response parsing limits.
    pub limits: Limits,
    /// Seeded client-side wire chaos: per-request draws may reset the
    /// connection before sending, abandon the request after a partial
    /// write, or trickle it out slowly (slow loris). One independent
    /// stream per client lane keeps runs deterministic.
    pub wire_faults: Option<WireFaultPlan>,
    /// Closed-loop lanes honor `Retry-After` on `429`/`503` responses,
    /// sleeping `min(server hint, this cap)` before their next request
    /// (capped so experiments stay fast; open loop records the hint
    /// but never stalls its schedule).
    pub retry_after_cap: Duration,
}

impl LoadConfig {
    /// A small closed-loop config against a service with `payloads`
    /// payloads.
    pub fn closed(requests: usize, concurrency: usize, payloads: usize, seed: u64) -> Self {
        LoadConfig {
            requests,
            mode: LoadMode::Closed { concurrency },
            arrival: ArrivalShape::Steady,
            mix: RequestMix::representative(),
            keyspace: Keyspace::Uniform,
            payloads,
            seed,
            limits: Limits::default(),
            wire_faults: None,
            retry_after_cap: Duration::from_millis(100),
        }
    }

    /// An open-loop config at `rate_per_sec`.
    pub fn open(requests: usize, rate_per_sec: f64, payloads: usize, seed: u64) -> Self {
        LoadConfig {
            requests,
            mode: LoadMode::Open { rate_per_sec },
            arrival: ArrivalShape::Steady,
            mix: RequestMix::representative(),
            keyspace: Keyspace::Uniform,
            payloads,
            seed,
            limits: Limits::default(),
            wire_faults: None,
            retry_after_cap: Duration::from_millis(100),
        }
    }
}

/// How the server's cache disposed of a request, from the `X-Cache`
/// (and `X-Cache-Match`) response headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFact {
    /// `X-Cache: hit` with a bit-exact fingerprint match.
    HitExact,
    /// `X-Cache: hit` under the semantic tolerance rule (different
    /// fingerprint, admissible achieved degradation).
    HitSemantic,
    /// `X-Cache: miss` — consulted, executed, offered back.
    Miss,
    /// `X-Cache: bypass` — not consulted (brownout-shaped, client
    /// `Cache-Control: no-cache`, or an epoch-fenced node).
    Bypass,
}

/// Latency distribution and counts for one tier, client-observed.
#[derive(Debug, Clone, Default)]
pub struct TierLoad {
    /// Requests that completed with HTTP 200.
    pub ok: usize,
    /// Of the `ok` responses, how many carried a `Brownout` header —
    /// served within tolerance from a cheaper plan.
    pub browned_out: usize,
    /// `503` responses: shed by the saturated front door or the
    /// resilience layer.
    pub shed: usize,
    /// `429` responses: rejected by the admission controller.
    pub rejected: usize,
    /// `X-Cache: hit` responses with a bit-exact match.
    pub cache_hits_exact: usize,
    /// `X-Cache: hit` responses under the semantic tolerance rule.
    pub cache_hits_semantic: usize,
    /// `X-Cache: miss` responses.
    pub cache_misses: usize,
    /// `X-Cache: bypass` responses.
    pub cache_bypass: usize,
    /// Client-observed latencies, milliseconds.
    pub latencies_ms: Vec<f64>,
}

impl TierLoad {
    /// Percentile of this tier's latency sample (ms); `None` if empty.
    pub fn latency_ms(&self, q: f64) -> Option<f64> {
        percentile(&self.latencies_ms, q).ok()
    }

    /// Cache hit ratio over consults (hits + misses; bypasses never
    /// consult the cache). `None` when the tier saw no consults.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.cache_hits_exact + self.cache_hits_semantic;
        let consults = hits + self.cache_misses;
        (consults > 0).then(|| hits as f64 / consults as f64)
    }
}

/// A slow request the client can correlate with the server's trace
/// ring: the server's `request_id` from the response body links the
/// client-observed latency to the span tree on `GET /trace/recent`.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRequest {
    /// Client-observed latency, milliseconds.
    pub latency_ms: f64,
    /// The server-assigned request ID, when tracing was on.
    pub request_id: Option<u64>,
    /// The fleet-wide trace ID from the `X-Trace-Id` response header —
    /// paste it into `GET /trace/{id}` on the front tier to see the
    /// full cross-node span tree for this exact slow request.
    pub trace_id: Option<u64>,
    /// `(objective, tolerance-in-tenths-of-percent)` tier key.
    pub tier: (String, u32),
}

/// What one load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: usize,
    /// Per-node serve counts, from the front tier's `Served-By`
    /// response header (empty against a single node, which does not
    /// stamp one).
    pub served_by: BTreeMap<u32, usize>,
    /// HTTP 200 responses.
    pub ok: usize,
    /// Of the `ok` responses, how many were browned out (served within
    /// tolerance from a cheaper plan, flagged by the `Brownout`
    /// header).
    pub browned_out: usize,
    /// Non-200 responses (any status: shed, rejected, unavailable).
    pub rejected: usize,
    /// Of the non-200 responses, `429`s from the admission controller.
    pub rejected_429: usize,
    /// Requests that died on transport errors (including injected wire
    /// faults).
    pub transport_errors: usize,
    /// Client-side wire faults injected by the configured
    /// [`WireFaultPlan`].
    pub wire_faults_injected: usize,
    /// Times a closed-loop lane slept on a `Retry-After` hint.
    pub retry_waits: usize,
    /// `X-Cache: hit` responses (exact + semantic) across all tiers.
    pub cache_hits: usize,
    /// `X-Cache: miss` responses across all tiers.
    pub cache_misses: usize,
    /// `X-Cache: bypass` responses across all tiers.
    pub cache_bypass: usize,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// All successful latencies, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Per (objective, tolerance-in-tenths-of-percent) tier breakdown.
    pub per_tier: BTreeMap<(String, u32), TierLoad>,
    /// Per-phase breakdown under a shaped open-loop schedule, keyed by
    /// the [`ArrivalShape::phase_of`] label (`pre`/`during`/`post` for
    /// a flash crowd, `q1`–`q4` for a diurnal cycle). Phases are
    /// assigned from the *scheduled* send time, so queueing during the
    /// crowd is charged to the crowd's phase. Empty for steady shapes
    /// and closed loops.
    pub per_phase: BTreeMap<&'static str, TierLoad>,
    /// The slowest successful requests (worst first, at most
    /// [`SLOWEST_RETAINED`]), with server request IDs for trace
    /// correlation.
    pub slowest: Vec<SlowRequest>,
}

/// How many of the slowest requests a [`LoadReport`] retains.
pub const SLOWEST_RETAINED: usize = 16;

impl LoadReport {
    /// Achieved throughput over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.wall.as_secs_f64()
        }
    }

    /// Overall latency percentile (ms); `None` if nothing succeeded.
    pub fn latency_ms(&self, q: f64) -> Option<f64> {
        percentile(&self.latencies_ms, q).ok()
    }

    fn absorb(&mut self, outcome: &RequestOutcome) {
        self.sent += 1;
        if outcome.wire_fault {
            self.wire_faults_injected += 1;
        }
        if outcome.retry_waited {
            self.retry_waits += 1;
        }
        // The cache's hard safety line, checked from the client's own
        // vantage: a strict (tolerance-0) request must never be
        // answered by a semantic (non-exact) cache match.
        assert!(
            !(outcome.tier.1 == 0 && outcome.cache == Some(CacheFact::HitSemantic)),
            "strict tier {:?} served a semantic cache hit",
            outcome.tier
        );
        if let Some(phase) = outcome.phase {
            let slot = self.per_phase.entry(phase).or_default();
            match outcome.status {
                Some(200) => {
                    slot.ok += 1;
                    slot.latencies_ms.push(outcome.latency.as_secs_f64() * 1e3);
                    if outcome.brownout {
                        slot.browned_out += 1;
                    }
                }
                Some(429) => slot.rejected += 1,
                Some(503) => slot.shed += 1,
                _ => {}
            }
        }
        let slot = self.per_tier.entry(outcome.tier.clone()).or_default();
        match outcome.cache {
            Some(CacheFact::HitExact) => {
                self.cache_hits += 1;
                slot.cache_hits_exact += 1;
            }
            Some(CacheFact::HitSemantic) => {
                self.cache_hits += 1;
                slot.cache_hits_semantic += 1;
            }
            Some(CacheFact::Miss) => {
                self.cache_misses += 1;
                slot.cache_misses += 1;
            }
            Some(CacheFact::Bypass) => {
                self.cache_bypass += 1;
                slot.cache_bypass += 1;
            }
            None => {}
        }
        match outcome.status {
            Some(200) => {
                self.ok += 1;
                let ms = outcome.latency.as_secs_f64() * 1e3;
                self.latencies_ms.push(ms);
                slot.ok += 1;
                slot.latencies_ms.push(ms);
                if outcome.brownout {
                    self.browned_out += 1;
                    slot.browned_out += 1;
                }
                if let Some(node) = outcome.served_by {
                    *self.served_by.entry(node).or_insert(0) += 1;
                }
                self.slowest.push(SlowRequest {
                    latency_ms: ms,
                    request_id: outcome.request_id,
                    trace_id: outcome.trace_id,
                    tier: outcome.tier.clone(),
                });
            }
            Some(status) => {
                self.rejected += 1;
                if status == 429 {
                    self.rejected_429 += 1;
                    slot.rejected += 1;
                } else if status == 503 {
                    slot.shed += 1;
                }
            }
            None => self.transport_errors += 1,
        }
    }

    /// Keep only the worst [`SLOWEST_RETAINED`] latencies, worst first.
    fn trim_slowest(&mut self) {
        self.slowest.sort_by(|a, b| {
            b.latency_ms
                .partial_cmp(&a.latency_ms)
                .expect("finite latencies")
        });
        self.slowest.truncate(SLOWEST_RETAINED);
    }
}

/// One request's fate, as the client saw it.
struct RequestOutcome {
    tier: (String, u32),
    /// Shaped-schedule phase label, from the scheduled send time.
    phase: Option<&'static str>,
    status: Option<u16>,
    request_id: Option<u64>,
    trace_id: Option<u64>,
    latency: Duration,
    brownout: bool,
    wire_fault: bool,
    retry_waited: bool,
    served_by: Option<u32>,
    cache: Option<CacheFact>,
}

/// The parts of a response the report cares about.
#[derive(Clone, Copy, Default)]
struct ReplyFacts {
    status: u16,
    request_id: Option<u64>,
    trace_id: Option<u64>,
    brownout: bool,
    retry_after_secs: Option<u64>,
    served_by: Option<u32>,
    cache: Option<CacheFact>,
}

/// Extract `"request_id": N` from a response body without a JSON
/// parser (the value is a bare integer in the service's own dialect).
fn parse_request_id(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let at = text.find("\"request_id\":")?;
    let digits: String = text[at + "\"request_id\":".len()..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn tier_key(request: &ServiceRequest) -> (String, u32) {
    (
        request.objective.to_string(),
        (request.tolerance.value() * 1000.0).round() as u32,
    )
}

fn render_request(request: &ServiceRequest, close: bool) -> String {
    let body = format!("payload-{}", request.payload);
    format!(
        "POST /compute HTTP/1.1\r\nTolerance: {}\r\nObjective: {}\r\nPayload: {}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n{}",
        request.tolerance.value(),
        request.objective,
        request.payload,
        body.len(),
        if close { "close" } else { "keep-alive" },
        body,
    )
}

/// A persistent client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    limits: Limits,
    /// Scratch for one header line, reused across responses.
    line: Vec<u8>,
    /// Scratch for one response body, reused across responses.
    body: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr, limits: Limits) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            limits,
            line: Vec::new(),
            body: Vec::new(),
        })
    }

    /// Parse one response into the facts the report needs, without
    /// materializing the header map [`read_response`] builds — at
    /// bench concurrencies the per-line string allocations are
    /// measurable on the driving core, and the client only ever looks
    /// at four headers. Enforces the same head/header-count/body
    /// limits as the full parser.
    fn read_facts(&mut self) -> Result<ReplyFacts, HttpError> {
        fn next_line<'a>(
            reader: &mut BufReader<TcpStream>,
            line: &'a mut Vec<u8>,
            budget: &mut usize,
        ) -> Result<&'a [u8], HttpError> {
            line.clear();
            let n =
                io::BufRead::read_until(reader, b'\n', line).map_err(|_| HttpError::Truncated)?;
            if n == 0 {
                return Err(HttpError::Truncated);
            }
            if n > *budget {
                return Err(HttpError::HeadersTooLarge);
            }
            *budget -= n;
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            Ok(line.as_slice())
        }

        let mut budget = self.limits.max_head_bytes;
        let status = {
            let line = next_line(&mut self.reader, &mut self.line, &mut budget)?;
            line.split(|&b| b == b' ')
                .nth(1)
                .and_then(|code| std::str::from_utf8(code).ok())
                .and_then(|code| code.parse::<u16>().ok())
                .ok_or_else(|| HttpError::BadRequest("bad status line".to_string()))?
        };
        let mut facts = ReplyFacts {
            status,
            ..ReplyFacts::default()
        };
        let mut content_length = 0usize;
        let mut headers = 0usize;
        let mut semantic_match = false;
        loop {
            let line = next_line(&mut self.reader, &mut self.line, &mut budget)?;
            if line.is_empty() {
                break;
            }
            headers += 1;
            if headers > self.limits.max_headers {
                return Err(HttpError::HeadersTooLarge);
            }
            let Some(colon) = line.iter().position(|&b| b == b':') else {
                continue;
            };
            let (name, value) = line.split_at(colon);
            let value = std::str::from_utf8(&value[1..])
                .map(str::trim)
                .unwrap_or("");
            if name.eq_ignore_ascii_case(b"content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("bad content-length".to_string()))?;
            } else if name.eq_ignore_ascii_case(b"brownout") {
                facts.brownout = true;
            } else if name.eq_ignore_ascii_case(b"retry-after") {
                facts.retry_after_secs = value.parse().ok();
            } else if name.eq_ignore_ascii_case(b"served-by") {
                facts.served_by = value.strip_prefix("node-").and_then(|n| n.parse().ok());
            } else if name.eq_ignore_ascii_case(b"x-trace-id") {
                facts.trace_id = value.parse().ok();
            } else if name.eq_ignore_ascii_case(b"x-cache") {
                facts.cache = match value {
                    // Refined to HitSemantic by X-Cache-Match below.
                    "hit" => Some(CacheFact::HitExact),
                    "miss" => Some(CacheFact::Miss),
                    "bypass" => Some(CacheFact::Bypass),
                    _ => None,
                };
            } else if name.eq_ignore_ascii_case(b"x-cache-match") {
                semantic_match = value.eq_ignore_ascii_case("semantic");
            }
        }
        if semantic_match && facts.cache == Some(CacheFact::HitExact) {
            facts.cache = Some(CacheFact::HitSemantic);
        }
        if content_length > self.limits.max_body_bytes {
            return Err(HttpError::PayloadTooLarge);
        }
        self.body.resize(content_length, 0);
        io::Read::read_exact(&mut self.reader, &mut self.body).map_err(|_| HttpError::Truncated)?;
        facts.request_id = parse_request_id(&self.body);
        Ok(facts)
    }

    fn roundtrip(
        &mut self,
        request: &ServiceRequest,
        close: bool,
    ) -> Result<ReplyFacts, HttpError> {
        self.shaped_roundtrip(request, close, WireFaultOutcome::None)
    }

    /// Round-trip with the request write shaped by a wire fault:
    /// `Reset` sends nothing, `PartialWrite` abandons the request after
    /// a prefix, `SlowWrite` trickles it out byte by byte (slow loris).
    /// Faulted writes that cannot yield a response return `Truncated`.
    fn shaped_roundtrip(
        &mut self,
        request: &ServiceRequest,
        close: bool,
        fault: WireFaultOutcome,
    ) -> Result<ReplyFacts, HttpError> {
        let wire = render_request(request, close);
        let bytes = wire.as_bytes();
        match fault {
            WireFaultOutcome::None => self
                .writer
                .write_all(bytes)
                .map_err(|_| HttpError::Truncated)?,
            WireFaultOutcome::Reset => {
                // Abandon before the first byte; the server sees a
                // connection that opened and died.
                let _ = self.writer.shutdown(std::net::Shutdown::Both);
                return Err(HttpError::Truncated);
            }
            WireFaultOutcome::PartialWrite { fraction } => {
                let n = ((bytes.len() as f64) * fraction).floor() as usize;
                let n = n.clamp(1, bytes.len().saturating_sub(1));
                let _ = self.writer.write_all(&bytes[..n]);
                let _ = self.writer.shutdown(std::net::Shutdown::Both);
                return Err(HttpError::Truncated);
            }
            WireFaultOutcome::SlowWrite { pause_us } => {
                for chunk in bytes.chunks(1) {
                    self.writer
                        .write_all(chunk)
                        .map_err(|_| HttpError::Truncated)?;
                    std::thread::sleep(Duration::from_micros(pause_us));
                }
            }
        }
        self.read_facts()
    }
}

/// The structured body of a `202 Accepted` drain acknowledgement,
/// from a node's (or the front tier's) `POST /drain`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainAck {
    /// Always `true` on a 202.
    pub draining: bool,
    /// Requests still in flight on the draining server at ack time.
    pub in_flight: i64,
    /// The rules epoch the server was on when it accepted the drain.
    pub epoch: u64,
    /// Who acked: a node index, or the front tier itself.
    pub node: DrainedBy,
}

/// Which server acknowledged a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainedBy {
    /// The fleet's front tier.
    Front,
    /// Node `i` of the fleet (or a standalone server's `node_id`).
    Node(u32),
}

/// Pull a scalar field's raw token out of a flat JSON object without a
/// JSON parser (the drain ack is in the service's own perfjson
/// dialect: flat, no nesting, no escaped quotes in values).
fn field_token<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let at = text.find(&pattern)? + pattern.len();
    let rest = text[at..].trim_start();
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if !*in_str && (c == ',' || c == '}') {
                None
            } else {
                Some(i + c.len_utf8())
            }
        })
        .last()
        .unwrap_or(0);
    Some(rest[..end].trim())
}

impl DrainAck {
    /// Parse a drain ack body; `None` when the expected fields are
    /// missing or malformed.
    pub fn parse(body: &[u8]) -> Option<DrainAck> {
        let text = std::str::from_utf8(body).ok()?;
        let draining = field_token(text, "draining")? == "true";
        let in_flight = field_token(text, "in_flight")?.parse::<i64>().ok()?;
        let epoch = field_token(text, "epoch")?.parse::<u64>().ok()?;
        let node = match field_token(text, "node")? {
            "\"front\"" => DrainedBy::Front,
            raw => DrainedBy::Node(raw.parse::<u32>().ok()?),
        };
        Some(DrainAck {
            draining,
            in_flight,
            epoch,
            node,
        })
    }
}

/// Send `POST /drain` (optionally `?node=i` against a fleet front
/// tier) and return the parsed structured acknowledgement.
///
/// # Errors
///
/// Fails on connection errors, a non-202 status, or an ack body
/// missing the documented fields.
pub fn post_drain(addr: SocketAddr, limits: &Limits, node: Option<usize>) -> io::Result<DrainAck> {
    let target = match node {
        Some(id) => format!("/drain?node={id}"),
        None => "/drain".to_string(),
    };
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writer.write_all(format!("POST {target} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())?;
    let response = read_response(&mut reader, limits)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if response.status != 202 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("drain answered {} not 202", response.status),
        ));
    }
    DrainAck::parse(&response.body).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unparseable drain ack: {}", response.text()),
        )
    })
}

/// Issue one request on a fresh connection (open-loop discipline).
fn one_shot(
    addr: SocketAddr,
    limits: Limits,
    request: &ServiceRequest,
    fault: WireFaultOutcome,
) -> Option<ReplyFacts> {
    let mut client = Client::connect(addr, limits).ok()?;
    client.shaped_roundtrip(request, true, fault).ok()
}

/// Drive `addr` per `config` and collect the report.
///
/// # Errors
///
/// Fails only on setup errors (no connection at all); per-request
/// transport failures are counted, not fatal.
///
/// # Panics
///
/// Panics if `config.requests == 0`, `payloads == 0`, a closed-loop
/// concurrency of 0, or a non-positive open-loop rate.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> io::Result<LoadReport> {
    assert!(config.requests > 0, "load needs at least one request");
    assert!(config.payloads > 0, "load needs a payload population");
    let requests = config.mix.sample_keyed(
        config.requests,
        config.payloads,
        config.seed,
        &config.keyspace,
    );
    // Fail fast if the server is not there at all.
    drop(TcpStream::connect(addr)?);

    let started = Instant::now();
    let outcomes = match config.mode {
        LoadMode::Closed { concurrency } => {
            assert!(concurrency > 0, "closed loop needs at least one client");
            run_closed(addr, config, &requests, concurrency)
        }
        LoadMode::Open { rate_per_sec } => {
            assert!(
                rate_per_sec > 0.0 && rate_per_sec.is_finite(),
                "open loop needs a positive rate"
            );
            run_open(addr, config, &requests, rate_per_sec)
        }
    };
    let mut report = LoadReport {
        wall: started.elapsed(),
        ..LoadReport::default()
    };
    for outcome in &outcomes {
        report.absorb(outcome);
    }
    report.trim_slowest();
    Ok(report)
}

/// Closed loop: split the request list round-robin across `concurrency`
/// clients; each fires as fast as its own responses return, honoring
/// `Retry-After` hints (capped) and injecting any configured wire
/// faults from its own seeded stream.
fn run_closed(
    addr: SocketAddr,
    config: &LoadConfig,
    requests: &[ServiceRequest],
    concurrency: usize,
) -> Vec<RequestOutcome> {
    let limits = config.limits;
    let retry_cap = config.retry_after_cap;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|lane| {
                let slice: Vec<ServiceRequest> = requests
                    .iter()
                    .skip(lane)
                    .step_by(concurrency)
                    .cloned()
                    .collect();
                // Each lane draws from its own stream of the shared
                // plan, so cloning keeps lanes independent and
                // deterministic regardless of interleaving.
                let mut faults = config.wire_faults.clone();
                scope.spawn(move || {
                    let mut outcomes = Vec::with_capacity(slice.len());
                    let mut client = Client::connect(addr, limits).ok();
                    for (i, request) in slice.iter().enumerate() {
                        let close = i + 1 == slice.len();
                        let fault = faults
                            .as_mut()
                            .map_or(WireFaultOutcome::None, |plan| plan.draw(lane));
                        let injected = fault != WireFaultOutcome::None;
                        let fired = Instant::now();
                        let reply = if injected {
                            // An injected fault is the experiment, not
                            // an accident: no reconnect-and-retry. The
                            // connection is assumed dead afterwards
                            // unless the fault still delivers.
                            let attempt = match &mut client {
                                Some(c) => c.shaped_roundtrip(request, close, fault).ok(),
                                None => None,
                            };
                            if attempt.is_none() {
                                client = None;
                            }
                            attempt
                        } else {
                            match &mut client {
                                Some(c) => match c.roundtrip(request, close) {
                                    Ok(reply) => Some(reply),
                                    Err(_) => {
                                        // One reconnect per failure: the
                                        // server may have reaped an idle
                                        // keep-alive connection.
                                        client = Client::connect(addr, limits).ok();
                                        client
                                            .as_mut()
                                            .and_then(|c| c.roundtrip(request, close).ok())
                                    }
                                },
                                None => {
                                    client = Client::connect(addr, limits).ok();
                                    client
                                        .as_mut()
                                        .and_then(|c| c.roundtrip(request, close).ok())
                                }
                            }
                        };
                        let latency = fired.elapsed();
                        let mut retry_waited = false;
                        if let Some(facts) = reply {
                            if matches!(facts.status, 429 | 503) {
                                if let Some(secs) = facts.retry_after_secs {
                                    retry_waited = true;
                                    std::thread::sleep(Duration::from_secs(secs).min(retry_cap));
                                }
                            }
                        }
                        outcomes.push(RequestOutcome {
                            tier: tier_key(request),
                            phase: None,
                            status: reply.map(|facts| facts.status),
                            request_id: reply.and_then(|facts| facts.request_id),
                            trace_id: reply.and_then(|facts| facts.trace_id),
                            latency,
                            brownout: reply.is_some_and(|facts| facts.brownout),
                            wire_fault: injected,
                            retry_waited,
                            served_by: reply.and_then(|facts| facts.served_by),
                            cache: reply.and_then(|facts| facts.cache),
                        });
                    }
                    outcomes
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load lane panicked"))
            .collect()
    })
}

/// Open loop: a seeded arrival schedule assigns each request a send
/// time; worker threads sleep until their request is due, then fire it
/// on a fresh connection. Latency runs from the *scheduled* time, so
/// server-side queueing is charged to the server, not hidden by the
/// client (no coordinated omission).
fn run_open(
    addr: SocketAddr,
    config: &LoadConfig,
    requests: &[ServiceRequest],
    rate_per_sec: f64,
) -> Vec<RequestOutcome> {
    let limits = config.limits;
    let arrivals = config
        .arrival
        .process(rate_per_sec, config.seed)
        .expect("valid arrival shape")
        .take(requests.len());
    let schedule: Vec<(Duration, &ServiceRequest)> = arrivals
        .zip(requests.iter())
        .map(|(at, request)| (Duration::from_micros(at.as_micros()), request))
        .collect();
    // Enough lanes that a straggling response does not delay later
    // scheduled sends (bounded, to stay a polite loopback citizen).
    let lanes = requests.len().clamp(1, 32);
    let epoch = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lanes)
            .map(|lane| {
                let slice: Vec<(Duration, &ServiceRequest)> =
                    schedule.iter().skip(lane).step_by(lanes).copied().collect();
                let mut faults = config.wire_faults.clone();
                scope.spawn(move || {
                    let mut outcomes = Vec::with_capacity(slice.len());
                    for (due, request) in slice {
                        if let Some(wait) = due.checked_sub(epoch.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let fault = faults
                            .as_mut()
                            .map_or(WireFaultOutcome::None, |plan| plan.draw(lane));
                        let reply = one_shot(addr, limits, request, fault);
                        // Open loop never stalls for Retry-After — the
                        // schedule is the experiment; the hint still
                        // lands in the report via the status split.
                        outcomes.push(RequestOutcome {
                            tier: tier_key(request),
                            phase: config.arrival.phase_of(due),
                            status: reply.map(|facts| facts.status),
                            request_id: reply.and_then(|facts| facts.request_id),
                            trace_id: reply.and_then(|facts| facts.trace_id),
                            latency: epoch.elapsed().saturating_sub(due),
                            brownout: reply.is_some_and(|facts| facts.brownout),
                            wire_fault: fault != WireFaultOutcome::None,
                            retry_waited: false,
                            served_by: reply.and_then(|facts| facts.served_by),
                            cache: reply.and_then(|facts| facts.cache),
                        });
                    }
                    outcomes
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load lane panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_core::objective::Objective;
    use tt_core::request::Tolerance;

    #[test]
    fn rendered_requests_follow_the_paper_shape() {
        let request = ServiceRequest::new(7, Tolerance::new(0.05).unwrap(), Objective::Cost);
        let wire = render_request(&request, false);
        assert!(wire.starts_with("POST /compute HTTP/1.1\r\n"));
        assert!(wire.contains("Tolerance: 0.05\r\n"));
        assert!(wire.contains("Objective: cost\r\n"));
        assert!(wire.contains("Payload: 7\r\n"));
        assert!(wire.contains("Connection: keep-alive\r\n"));
        assert!(wire.ends_with("\r\n\r\npayload-7"));
    }

    #[test]
    fn report_folds_outcomes_by_tier() {
        let mut report = LoadReport {
            wall: Duration::from_secs(2),
            ..LoadReport::default()
        };
        for (status, id, ms, brownout) in [
            (Some(200), Some(11), 4.0, false),
            (Some(200), Some(12), 8.0, true),
            (Some(503), None, 0.0, false),
            (Some(429), None, 0.0, false),
            (None, None, 0.0, false),
        ] {
            report.absorb(&RequestOutcome {
                tier: ("cost".to_string(), 50),
                phase: None,
                status,
                request_id: id,
                trace_id: id,
                latency: Duration::from_secs_f64(ms / 1e3),
                brownout,
                wire_fault: status.is_none(),
                retry_waited: status == Some(429),
                served_by: if status == Some(200) { Some(1) } else { None },
                cache: None,
            });
        }
        report.trim_slowest();
        assert_eq!(report.sent, 5);
        assert_eq!(report.ok, 2);
        assert_eq!(report.browned_out, 1);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.rejected_429, 1);
        assert_eq!(report.transport_errors, 1);
        assert_eq!(report.wire_faults_injected, 1);
        assert_eq!(report.retry_waits, 1);
        let tier = &report.per_tier[&("cost".to_string(), 50)];
        assert_eq!(tier.browned_out, 1);
        assert_eq!(tier.shed, 1);
        assert_eq!(tier.rejected, 1);
        assert_eq!(report.throughput_rps(), 1.0);
        assert_eq!(report.latency_ms(0.5), Some(6.0));
        assert_eq!(report.per_tier[&("cost".to_string(), 50)].ok, 2);
        // Slowest first, carrying the server's request ID.
        assert_eq!(report.slowest.len(), 2);
        assert_eq!(report.slowest[0].latency_ms, 8.0);
        assert_eq!(report.slowest[0].request_id, Some(12));
        // Served-By folds per node, 200s only.
        assert_eq!(report.served_by.get(&1), Some(&2));
        assert_eq!(report.served_by.values().sum::<usize>(), report.ok);
    }

    #[test]
    fn drain_acks_parse_node_and_front_bodies() {
        let node = DrainAck::parse(br#"{"draining": true, "in_flight": 3, "epoch": 7, "node": 2}"#)
            .unwrap();
        assert_eq!(
            node,
            DrainAck {
                draining: true,
                in_flight: 3,
                epoch: 7,
                node: DrainedBy::Node(2),
            }
        );
        let front =
            DrainAck::parse(br#"{"draining": true, "in_flight": 0, "epoch": 1, "node": "front"}"#)
                .unwrap();
        assert_eq!(front.node, DrainedBy::Front);
        assert!(DrainAck::parse(b"{\"draining\": true}").is_none());
        assert!(DrainAck::parse(b"\xff\xfe").is_none());
    }

    #[test]
    fn slowest_retention_is_bounded_and_worst_first() {
        let mut report = LoadReport::default();
        for i in 0..40u64 {
            report.absorb(&RequestOutcome {
                tier: ("cost".to_string(), 0),
                phase: None,
                status: Some(200),
                request_id: Some(i),
                trace_id: Some(i),
                latency: Duration::from_millis(i),
                brownout: false,
                wire_fault: false,
                retry_waited: false,
                served_by: Some((i % 3) as u32),
                cache: None,
            });
        }
        report.trim_slowest();
        assert_eq!(report.slowest.len(), SLOWEST_RETAINED);
        assert_eq!(report.slowest[0].request_id, Some(39));
        assert!(report
            .slowest
            .windows(2)
            .all(|w| w[0].latency_ms >= w[1].latency_ms));
    }

    #[test]
    fn request_ids_parse_out_of_response_bodies() {
        assert_eq!(
            parse_request_id(b"{\"answered_by\": \"fast\", \"request_id\": 42}"),
            Some(42)
        );
        assert_eq!(parse_request_id(b"{\"request_id\":7}"), Some(7));
        assert_eq!(parse_request_id(b"{\"answered_by\": \"fast\"}"), None);
        assert_eq!(parse_request_id(b"\xff\xfe"), None);
    }

    fn cached_outcome(tier: (String, u32), cache: Option<CacheFact>) -> RequestOutcome {
        RequestOutcome {
            tier,
            phase: None,
            status: Some(200),
            request_id: None,
            trace_id: None,
            latency: Duration::from_millis(1),
            brownout: false,
            wire_fault: false,
            retry_waited: false,
            served_by: None,
            cache,
        }
    }

    #[test]
    fn report_folds_cache_dispositions_per_tier() {
        let mut report = LoadReport::default();
        let tier = ("cost".to_string(), 50);
        for cache in [
            Some(CacheFact::HitExact),
            Some(CacheFact::HitSemantic),
            Some(CacheFact::Miss),
            Some(CacheFact::Bypass),
            None,
        ] {
            report.absorb(&cached_outcome(tier.clone(), cache));
        }
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_bypass, 1);
        let slot = &report.per_tier[&tier];
        assert_eq!(slot.cache_hits_exact, 1);
        assert_eq!(slot.cache_hits_semantic, 1);
        assert_eq!(slot.cache_misses, 1);
        assert_eq!(slot.cache_bypass, 1);
        assert_eq!(slot.cache_hit_ratio(), Some(2.0 / 3.0));
        // A tier that never consulted the cache has no ratio.
        assert_eq!(TierLoad::default().cache_hit_ratio(), None);
    }

    #[test]
    #[should_panic(expected = "semantic cache hit")]
    fn strict_tier_semantic_hits_trip_the_client_assertion() {
        let mut report = LoadReport::default();
        report.absorb(&cached_outcome(
            ("cost".to_string(), 0),
            Some(CacheFact::HitSemantic),
        ));
    }

    #[test]
    fn strict_tier_exact_hits_are_fine() {
        let mut report = LoadReport::default();
        report.absorb(&cached_outcome(
            ("cost".to_string(), 0),
            Some(CacheFact::HitExact),
        ));
        assert_eq!(report.cache_hits, 1);
    }

    #[test]
    fn arrival_shapes_classify_phases_from_scheduled_time() {
        let flash = ArrivalShape::Flash {
            multiplier: 5.0,
            start: Duration::from_secs(2),
            duration: Duration::from_secs(3),
        };
        assert_eq!(flash.phase_of(Duration::from_secs(1)), Some("pre"));
        assert_eq!(flash.phase_of(Duration::from_secs(2)), Some("during"));
        assert_eq!(flash.phase_of(Duration::from_millis(4_999)), Some("during"));
        assert_eq!(flash.phase_of(Duration::from_secs(5)), Some("post"));

        let diurnal = ArrivalShape::Diurnal {
            amplitude: 0.8,
            period: Duration::from_secs(8),
        };
        assert_eq!(diurnal.phase_of(Duration::from_secs(1)), Some("q1"));
        assert_eq!(diurnal.phase_of(Duration::from_secs(3)), Some("q2"));
        assert_eq!(diurnal.phase_of(Duration::from_secs(5)), Some("q3"));
        assert_eq!(diurnal.phase_of(Duration::from_secs(7)), Some("q4"));
        // A second cycle wraps back around.
        assert_eq!(diurnal.phase_of(Duration::from_secs(9)), Some("q1"));

        assert_eq!(ArrivalShape::Steady.phase_of(Duration::ZERO), None);
    }

    #[test]
    fn shaped_outcomes_fold_into_phase_slots() {
        let mut report = LoadReport::default();
        for (phase, status, ms) in [
            (Some("pre"), Some(200), 4.0),
            (Some("during"), Some(200), 40.0),
            (Some("during"), Some(429), 0.0),
            (Some("during"), Some(503), 0.0),
            (Some("post"), Some(200), 6.0),
        ] {
            report.absorb(&RequestOutcome {
                tier: ("cost".to_string(), 50),
                phase,
                status,
                request_id: None,
                trace_id: None,
                latency: Duration::from_secs_f64(ms / 1e3),
                brownout: false,
                wire_fault: false,
                retry_waited: false,
                served_by: None,
                cache: None,
            });
        }
        assert_eq!(report.per_phase.len(), 3);
        assert_eq!(report.per_phase["pre"].ok, 1);
        let during = &report.per_phase["during"];
        assert_eq!((during.ok, during.rejected, during.shed), (1, 1, 1));
        assert_eq!(during.latency_ms(0.5), Some(40.0));
        assert_eq!(report.per_phase["post"].latency_ms(0.5), Some(6.0));
    }

    #[test]
    fn request_sample_is_deterministic() {
        let config = LoadConfig::closed(64, 4, 20, 123);
        let a = config
            .mix
            .sample(config.requests, config.payloads, config.seed);
        let b = config
            .mix
            .sample(config.requests, config.payloads, config.seed);
        assert_eq!(a, b);
    }
}
