//! Live observability for the wire service: a bounded metrics
//! registry, request-scoped tracing, and the tier-guarantee SLO
//! sentinel, assembled from [`tt_obs`] and wired to the deployment's
//! *advertised* guarantees.
//!
//! The interesting part is the wiring, not the plumbing: at service
//! construction the frontend's routing rules are replayed through
//! [`RoutingRules::guarantees`] to extract, per tier, the tolerance ε
//! and the predicted latency at a chosen quantile. Those predictions
//! become [`SloTarget`]s, so the sentinel holds live traffic against
//! exactly what the rule generator promised — the paper's contract
//! ("this tier degrades accuracy at most ε versus the premium tier")
//! made observable at runtime.
//!
//! Everything the hot path records is integer-accumulated (fixed-point
//! quality errors, histogram bucket counts), so a fixed request set
//! produces bit-identical `/metrics` totals regardless of thread
//! interleaving.

use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tt_core::objective::Objective;
use tt_core::profile::ProfileMatrix;
use tt_core::rulegen::RoutingRules;
use tt_obs::{
    AdmissionOutcome, BucketScheme, Counter, EventLog, HistogramHandle, MetricsRegistry,
    SloSentinel, SloTarget, TierTelemetry, Tracer, WindowStore,
};
use tt_serve::frontend::TieredFrontend;

/// Observability tuning for a [`crate::service::ComputeService`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch; `false` removes the registry, tracer, and
    /// sentinel entirely (the uninstrumented baseline the overhead
    /// benchmark compares against).
    pub enabled: bool,
    /// Finished request traces retained in the tracer's ring.
    pub trace_capacity: usize,
    /// Optional JSONL file sink mirroring every finished trace.
    pub trace_file: Option<PathBuf>,
    /// Sliding-window length for SLO verdicts.
    pub slo_window: Duration,
    /// Minimum window requests per tier before a verdict is rendered.
    pub slo_min_requests: u64,
    /// Quantile at which tier latency is predicted and checked.
    pub latency_quantile: f64,
    /// Live latency may exceed the prediction by this factor before
    /// the tier is ruled out of contract (live serving pays queueing
    /// and scheduling costs the profile does not model).
    pub latency_headroom: f64,
    /// `Some(n)`: the service's event trace keeps only the newest `n`
    /// events (per-tier aggregates still cover the whole stream).
    /// `None`: retain everything, as the simulation recorders do.
    pub trace_retention: Option<usize>,
    /// Duration of one telemetry window ([`WindowStore`]), sealed by
    /// the idle-tick heartbeat.
    pub telemetry_window: Duration,
    /// Sealed telemetry windows retained in the bounded ring.
    pub window_capacity: usize,
    /// Control-plane events retained in the bounded event log.
    pub event_capacity: usize,
}

impl ObsConfig {
    /// Instrumentation on, with bounded retention everywhere.
    pub fn defaults() -> Self {
        ObsConfig {
            enabled: true,
            trace_capacity: 256,
            trace_file: None,
            slo_window: Duration::from_millis(250),
            slo_min_requests: 20,
            latency_quantile: 0.99,
            latency_headroom: 2.0,
            trace_retention: Some(4096),
            telemetry_window: Duration::from_millis(250),
            window_capacity: 64,
            event_capacity: 1024,
        }
    }

    /// Instrumentation fully off (unbounded trace, no registry).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            trace_retention: None,
            ..ObsConfig::defaults()
        }
    }
}

/// Everything [`Observability::record_served`] needs to know about
/// one served request.
#[derive(Debug, Clone, Copy)]
pub struct ServedSample {
    /// The request's objective annotation.
    pub objective: Objective,
    /// The request's tolerance annotation.
    pub tolerance: f64,
    /// Simulated (accounted) latency of the serving policy.
    pub sim_latency_us: u64,
    /// Quality error of the version that answered.
    pub quality_err: f64,
    /// The baseline (premium-tier) version's error on the same
    /// payload.
    pub baseline_err: f64,
    /// Whether resilience degraded the request to a cheaper version.
    pub degraded: bool,
    /// Model invocations the request consumed (retries, hedges).
    pub invocations: u64,
    /// The model version that answered — keys the telemetry windows'
    /// per-version service-time histograms (the planner's input).
    pub version: usize,
}

/// The stable tier key used across `/metrics`, SLO verdicts, and
/// `/healthz` degradation reasons: `"{objective}/{tolerance:.3}"`,
/// e.g. `"cost/0.050"`.
pub fn tier_key(objective: Objective, tolerance: f64) -> String {
    format!("{objective}/{tolerance:.3}")
}

/// How the semantic result cache disposed of one compute request, for
/// the per-tier counters on `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// Served from cache on a bit-equal input fingerprint.
    HitExact,
    /// Served from cache via the semantic admissibility rule.
    HitSemantic,
    /// Cache consulted, no admissible entry; the request executed.
    Miss,
    /// Cache not consulted (disabled, epoch-fenced node, brownout, or
    /// client `Cache-Control: no-cache`).
    Bypass,
}

/// One objective's deployed tiers: ascending tolerances with their
/// telemetry sinks, plus the baseline (premium) version index.
#[derive(Clone)]
struct ObjectiveTiers {
    objective: Objective,
    /// `(tolerance, telemetry)` ascending by tolerance.
    slots: Vec<(f64, Arc<TierTelemetry>)>,
    baseline_version: usize,
}

/// Build sentinel targets and tier wiring for a deployment, reusing
/// telemetry sinks from `reuse` (matched by objective + tolerance) so
/// a rebind keeps lifetime series continuous.
fn build_tiers(
    matrix: &ProfileMatrix,
    frontend: &TieredFrontend,
    config: &ObsConfig,
    reuse: &[ObjectiveTiers],
) -> (Vec<(SloTarget, Arc<TierTelemetry>)>, Vec<ObjectiveTiers>) {
    let recycled = |objective: Objective, tolerance: f64| -> Option<Arc<TierTelemetry>> {
        let tiers = reuse.iter().find(|t| t.objective == objective)?;
        tiers
            .slots
            .iter()
            .find(|(tol, _)| (tol - tolerance).abs() < 1e-12)
            .map(|(_, tel)| Arc::clone(tel))
    };
    let mut targets = Vec::new();
    let mut tiers = Vec::new();
    // The frontend stores rules per objective in a hash map;
    // sort so sentinel registration (and thus verdict order on
    // `/metrics`) is identical across runs.
    let mut rule_sets: Vec<&RoutingRules> = frontend.rules().collect();
    rule_sets.sort_by_key(|r| r.objective().to_string());
    for rules in rule_sets {
        let guarantees = rules
            .guarantees(matrix, config.latency_quantile)
            .expect("deployed rules must evaluate against their own matrix");
        let mut slots = Vec::with_capacity(guarantees.len());
        for g in &guarantees {
            let telemetry = recycled(g.objective, g.tolerance)
                .unwrap_or_else(|| Arc::new(TierTelemetry::new(BucketScheme::DEFAULT)));
            let max_latency_us =
                (g.predicted_latency_us as f64 * config.latency_headroom.max(1.0)).ceil() as u64;
            targets.push((
                SloTarget {
                    key: tier_key(g.objective, g.tolerance),
                    max_degradation: g.tolerance,
                    latency_quantile: g.latency_quantile,
                    max_latency_us,
                    min_requests: config.slo_min_requests,
                },
                Arc::clone(&telemetry),
            ));
            slots.push((g.tolerance, telemetry));
        }
        slots.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite tolerances"));
        tiers.push(ObjectiveTiers {
            objective: rules.objective(),
            slots,
            baseline_version: rules.baseline_version(),
        });
    }
    (targets, tiers)
}

/// The service's live observability: registry, tracer, sentinel, and
/// the per-tier telemetry the hot path feeds.
///
/// The sentinel and tier wiring sit behind a lock so a routing-rules
/// hot-swap can [`Observability::rebind`] them to the new deployment's
/// guarantees; telemetry sinks are *reused* across rebinds (matched by
/// tier key), so lifetime series on `/metrics` never reset.
pub struct Observability {
    registry: MetricsRegistry,
    tracer: Tracer,
    windows: WindowStore,
    events: EventLog,
    sentinel: RwLock<Arc<SloSentinel>>,
    tiers: RwLock<Vec<ObjectiveTiers>>,
    /// Windows evaluated by sentinels retired in earlier rebinds.
    windows_carried: AtomicU64,
    config: ObsConfig,
    started: Instant,
    // Pre-resolved hot-path handles: record without touching the
    // registry's shard locks.
    requests_total: Arc<Counter>,
    requests_degraded: Arc<Counter>,
    requests_dropped: Arc<Counter>,
    model_invocations: Arc<Counter>,
    sim_latency: HistogramHandle,
    cache_hit: Arc<Counter>,
    cache_hit_semantic: Arc<Counter>,
    cache_miss: Arc<Counter>,
    cache_bypass: Arc<Counter>,
    cache_hit_latency: HistogramHandle,
}

impl Observability {
    /// Wire observability to a deployment: one [`SloTarget`] and one
    /// [`TierTelemetry`] per advertised tier, targets taken from the
    /// routing rules' own predictions.
    ///
    /// `started` is the monotonic anchor all span timestamps and
    /// sentinel windows are measured from (share the service's so one
    /// clock rules the whole request path).
    ///
    /// # Panics
    ///
    /// Panics if a deployed policy cannot be evaluated against
    /// `matrix` (the frontend would have panicked serving it anyway).
    pub fn new(
        matrix: &ProfileMatrix,
        frontend: &TieredFrontend,
        config: &ObsConfig,
        started: Instant,
    ) -> Self {
        let registry = MetricsRegistry::default();
        let tracer = match &config.trace_file {
            Some(path) => Tracer::new(config.trace_capacity)
                .with_file_sink(path)
                .unwrap_or_else(|_| Tracer::new(config.trace_capacity)),
            None => Tracer::new(config.trace_capacity),
        };
        let (targets, tiers) = build_tiers(matrix, frontend, config, &[]);
        let sentinel = SloSentinel::new(config.slo_window.as_micros().max(1) as u64, targets);
        Observability {
            requests_total: registry.counter("requests_total"),
            requests_degraded: registry.counter("requests_degraded"),
            requests_dropped: registry.counter("requests_dropped"),
            model_invocations: registry.counter("model_invocations"),
            sim_latency: registry.histogram("sim_latency_us"),
            cache_hit: registry.counter("cache_hit"),
            cache_hit_semantic: registry.counter("cache_hit_semantic"),
            cache_miss: registry.counter("cache_miss"),
            cache_bypass: registry.counter("cache_bypass"),
            cache_hit_latency: registry.histogram("cache_hit_latency_us"),
            registry,
            tracer,
            windows: WindowStore::new(
                config.telemetry_window.as_micros().max(1) as u64,
                config.window_capacity.max(1),
            ),
            events: EventLog::new(config.event_capacity.max(1)),
            sentinel: RwLock::new(Arc::new(sentinel)),
            tiers: RwLock::new(tiers),
            windows_carried: AtomicU64::new(0),
            config: config.clone(),
            started,
        }
    }

    /// Re-wire the sentinel and tier telemetry to a *new* deployment
    /// (a routing-rules hot-swap): fresh [`SloTarget`]s from the new
    /// rules' own guarantees, telemetry sinks reused by tier key so
    /// lifetime `/metrics` series stay continuous, and the new
    /// sentinel rebased to the present instant so its first window
    /// judges only post-swap traffic.
    pub fn rebind(&self, matrix: &ProfileMatrix, frontend: &TieredFrontend) {
        let old_tiers = self.tiers.read().clone();
        let (targets, tiers) = build_tiers(matrix, frontend, &self.config, &old_tiers);
        let sentinel = SloSentinel::new(self.config.slo_window.as_micros().max(1) as u64, targets);
        sentinel.rebase(self.now_us());
        let carried = self.sentinel.read().windows_evaluated();
        self.windows_carried.fetch_add(carried, Ordering::SeqCst);
        // Publish tiers first, then the sentinel: a racing reader sees
        // a coherent (new tiers, old sentinel) or (new, new) pairing,
        // never a sentinel watching tiers that no longer exist.
        *self.tiers.write() = tiers;
        *self.sentinel.write() = Arc::new(sentinel);
    }

    /// The metrics registry (for `/metrics` and ad-hoc series).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The request tracer (for `/trace/recent`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The windowed telemetry store (for `/metrics/windows` and the
    /// capacity planner's input contract).
    pub fn windows(&self) -> &WindowStore {
        &self.windows
    }

    /// The control-plane event log (for `/events`).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Record a control-plane event stamped with the service clock.
    pub fn event(&self, kind: &'static str, detail: impl Into<String>) -> u64 {
        self.events.record(self.now_us(), kind, detail)
    }

    /// The SLO sentinel (for `/metrics` verdicts and `/healthz`).
    /// Returned by handle: a rules hot-swap replaces the sentinel, and
    /// a caller holding the old handle keeps a coherent (if stale)
    /// view instead of a dangling one.
    pub fn sentinel(&self) -> Arc<SloSentinel> {
        Arc::clone(&self.sentinel.read())
    }

    /// Windows evaluated across the whole service lifetime, including
    /// sentinels retired by rules hot-swaps.
    pub fn windows_evaluated(&self) -> u64 {
        self.windows_carried.load(Ordering::SeqCst) + self.sentinel.read().windows_evaluated()
    }

    /// Microseconds since the service's monotonic anchor — the
    /// timestamp base for spans and sentinel windows.
    pub fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Advance the sentinel and the telemetry window store; evaluates
    /// a sentinel window (and seals a telemetry window) when one has
    /// elapsed. Called from the server's accept loop between accepts.
    pub fn tick(&self) -> bool {
        let now = self.now_us();
        self.windows.tick(now);
        let sentinel = self.sentinel();
        sentinel.tick(now)
    }

    /// The baseline (premium) version for an objective's tiers.
    pub fn baseline_version(&self, objective: Objective) -> Option<usize> {
        self.tiers
            .read()
            .iter()
            .find(|t| t.objective == objective)
            .map(|t| t.baseline_version)
    }

    /// The telemetry sink serving a consumer-requested tolerance: the
    /// *largest* deployed tolerance not exceeding the request's (the
    /// routing tables' downward-compatibility rule).
    pub fn telemetry(&self, objective: Objective, tolerance: f64) -> Option<Arc<TierTelemetry>> {
        let tiers = self.tiers.read();
        let tiers = tiers.iter().find(|t| t.objective == objective)?;
        let mut hit = None;
        for (tol, telemetry) in &tiers.slots {
            if *tol <= tolerance + 1e-12 {
                hit = Some(telemetry);
            } else {
                break;
            }
        }
        hit.map(Arc::clone)
    }

    /// Per-tier lifetime telemetry as `(key, telemetry)` pairs sorted
    /// by key — the deterministic iteration `/metrics` renders from.
    pub fn tier_telemetry(&self) -> Vec<(String, Arc<TierTelemetry>)> {
        let mut out = Vec::new();
        for tiers in self.tiers.read().iter() {
            for (tol, telemetry) in &tiers.slots {
                out.push((tier_key(tiers.objective, *tol), Arc::clone(telemetry)));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Record one served request into the registry, its tier's
    /// telemetry, and the open telemetry window's per-version
    /// service-time histogram. All hot-path registry operations are
    /// atomics; the window record is one short uncontended lock.
    pub fn record_served(&self, sample: &ServedSample) {
        self.requests_total.inc();
        if sample.degraded {
            self.requests_degraded.inc();
        }
        self.model_invocations.add(sample.invocations);
        self.sim_latency.record(sample.sim_latency_us);
        self.windows
            .record_service(sample.version, sample.sim_latency_us);
        if let Some(telemetry) = self.telemetry(sample.objective, sample.tolerance) {
            telemetry.record(
                sample.sim_latency_us,
                sample.quality_err,
                sample.baseline_err,
                sample.degraded,
            );
        }
    }

    /// Record one request no version could answer: global counters
    /// plus a shed count on the tier's open telemetry window.
    pub fn record_dropped(&self, objective: Objective, tolerance: f64) {
        self.requests_total.inc();
        self.requests_dropped.inc();
        self.windows.record_admission(
            &self.window_tier(objective, tolerance),
            AdmissionOutcome::Shed,
        );
    }

    /// Record one request arriving for a tier (pre-admission) into the
    /// open telemetry window — the planner's per-tier arrival rate.
    pub fn record_arrival(&self, objective: Objective, tolerance: f64) {
        self.windows
            .record_arrival(&self.window_tier(objective, tolerance));
    }

    /// Record the admission controller's decision for one request into
    /// the open telemetry window.
    pub fn record_admission(
        &self,
        objective: Objective,
        tolerance: f64,
        outcome: AdmissionOutcome,
    ) {
        self.windows
            .record_admission(&self.window_tier(objective, tolerance), outcome);
    }

    /// The telemetry-window tier key for a requested tolerance: the
    /// *deployed* tier's key (downward-compatibility rule, same as
    /// telemetry), falling back to the raw request key when no tier
    /// matches.
    fn window_tier(&self, objective: Objective, tolerance: f64) -> String {
        let tier = self
            .deployed_tier(objective, tolerance)
            .unwrap_or(tolerance);
        tier_key(objective, tier)
    }

    /// Record one cache disposition: the global counters, the hit-path
    /// latency histogram (the deterministic accounted hit latency, not
    /// wall clock, so `/metrics` totals stay run-identical), and a
    /// per-tier counter named `cache_{hit,miss,bypass}:{tier_key}`
    /// under the request's *deployed* tier (downward-compatibility
    /// rule, same as telemetry). Per-tier series resolve through the
    /// bounded registry, so tier cardinality can degrade fidelity but
    /// never memory.
    pub fn record_cache(&self, objective: Objective, tolerance: f64, event: CacheEvent) {
        let kind = match event {
            CacheEvent::HitExact => {
                self.cache_hit.inc();
                self.cache_hit_latency
                    .record(crate::service::CACHE_HIT_SIM_LATENCY_US);
                "cache_hit"
            }
            CacheEvent::HitSemantic => {
                self.cache_hit.inc();
                self.cache_hit_semantic.inc();
                self.cache_hit_latency
                    .record(crate::service::CACHE_HIT_SIM_LATENCY_US);
                "cache_hit"
            }
            CacheEvent::Miss => {
                self.cache_miss.inc();
                "cache_miss"
            }
            CacheEvent::Bypass => {
                self.cache_bypass.inc();
                "cache_bypass"
            }
        };
        // Hits and misses (actual cache consults) also land on the
        // tier's open telemetry window; bypasses don't consult.
        match event {
            CacheEvent::HitExact | CacheEvent::HitSemantic => {
                self.windows
                    .record_cache(&self.window_tier(objective, tolerance), true);
            }
            CacheEvent::Miss => {
                self.windows
                    .record_cache(&self.window_tier(objective, tolerance), false);
            }
            CacheEvent::Bypass => {}
        }
        if let Some(tier) = self.deployed_tier(objective, tolerance) {
            self.registry
                .counter(&format!("{kind}:{}", tier_key(objective, tier)))
                .inc();
        }
    }

    /// The deployed tier tolerance serving a requested one: the
    /// largest advertised tolerance not exceeding the request's.
    fn deployed_tier(&self, objective: Objective, tolerance: f64) -> Option<f64> {
        let tiers = self.tiers.read();
        let tiers = tiers.iter().find(|t| t.objective == objective)?;
        let mut hit = None;
        for (tol, _) in &tiers.slots {
            if *tol <= tolerance + 1e-12 {
                hit = Some(*tol);
            } else {
                break;
            }
        }
        hit
    }
}

impl std::fmt::Debug for Observability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observability")
            .field("registry", &self.registry)
            .field("tracer", &self.tracer)
            .field("sentinel", &self.sentinel)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{demo_frontend, demo_matrix, DEMO_TIERS};

    fn obs() -> Observability {
        let matrix = demo_matrix(120, 5);
        let frontend = demo_frontend(&matrix, 5);
        Observability::new(&matrix, &frontend, &ObsConfig::defaults(), Instant::now())
    }

    #[test]
    fn targets_cover_every_advertised_tier() {
        let obs = obs();
        let keys: Vec<String> = obs.sentinel().targets().map(|t| t.key.clone()).collect();
        for objective in [Objective::ResponseTime, Objective::Cost] {
            for &tol in &DEMO_TIERS {
                let key = tier_key(objective, tol);
                assert!(keys.contains(&key), "missing target {key}");
            }
        }
        // Latency bounds come from predictions, scaled by headroom.
        assert!(obs.sentinel().targets().all(|t| t.max_latency_us > 0));
    }

    #[test]
    fn telemetry_lookup_uses_downward_compatibility() {
        let obs = obs();
        // 3% tolerance is served (and watched) as the 1% tier.
        let at_1pct = obs.telemetry(Objective::Cost, 0.01).expect("1% tier");
        let at_3pct = obs.telemetry(Objective::Cost, 0.03).expect("3% lookup");
        assert!(Arc::ptr_eq(&at_1pct, &at_3pct));
        at_3pct.record(1_000, 0.1, 0.1, false);
        assert_eq!(at_1pct.requests(), 1);
    }

    #[test]
    fn record_served_feeds_registry_and_tier() {
        let obs = obs();
        obs.record_served(&ServedSample {
            objective: Objective::Cost,
            tolerance: 0.05,
            sim_latency_us: 9_000,
            quality_err: 0.2,
            baseline_err: 0.1,
            degraded: true,
            invocations: 2,
            version: 1,
        });
        obs.record_dropped(Objective::Cost, 0.05);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters["requests_total"], 2);
        assert_eq!(snap.counters["requests_degraded"], 1);
        assert_eq!(snap.counters["requests_dropped"], 1);
        assert_eq!(snap.counters["model_invocations"], 2);
        assert_eq!(snap.histograms["sim_latency_us"].count(), 1);
        let tier = obs.telemetry(Objective::Cost, 0.05).unwrap();
        assert_eq!(tier.requests(), 1);
        assert_eq!(tier.degraded(), 1);
    }

    #[test]
    fn rebind_reuses_telemetry_and_carries_window_counts() {
        let matrix = demo_matrix(120, 5);
        let frontend = demo_frontend(&matrix, 5);
        let obs = Observability::new(&matrix, &frontend, &ObsConfig::defaults(), Instant::now());
        let before = obs.telemetry(Objective::Cost, 0.05).unwrap();
        before.record(1_000, 0.1, 0.1, false);
        obs.sentinel().force_tick(obs.now_us());
        obs.sentinel().force_tick(obs.now_us());
        assert_eq!(obs.windows_evaluated(), 2);

        obs.rebind(&matrix, &frontend);
        // Same tier key → same sink: lifetime series continue.
        let after = obs.telemetry(Objective::Cost, 0.05).unwrap();
        assert!(Arc::ptr_eq(&before, &after));
        assert_eq!(after.requests(), 1);
        // The retired sentinel's windows are carried, the new sentinel
        // starts unevaluated and judges only post-rebind traffic.
        assert_eq!(obs.windows_evaluated(), 2);
        assert!(obs.sentinel().verdicts().iter().all(|v| !v.evaluated));
        obs.sentinel().force_tick(obs.now_us());
        assert_eq!(obs.windows_evaluated(), 3);
        let verdicts = obs.sentinel().verdicts();
        assert!(verdicts.iter().all(|v| v.window_requests == 0));
    }

    #[test]
    fn tier_keys_are_stable_and_sorted() {
        let obs = obs();
        let tiers = obs.tier_telemetry();
        assert_eq!(tiers.len(), 8);
        assert!(tiers.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(tier_key(Objective::Cost, 0.05), "cost/0.050");
        assert_eq!(
            tier_key(Objective::ResponseTime, 0.0),
            "response-time/0.000"
        );
    }
}
