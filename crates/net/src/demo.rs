//! A deterministic synthetic deployment for examples, benchmarks, and
//! tests.
//!
//! Three model versions with the classic tolerance-tiers shape — a
//! fast/inaccurate version, a balanced middle, and a slow baseline —
//! profiled over a seeded synthetic request population, with routing
//! rules generated for both objectives at the paper's headline tiers
//! (0%, 1%, 5%, 10%). Everything is a pure function of `(payloads,
//! seed)`, so two processes building the same demo serve identical
//! answers.

use crate::service::{ComputeService, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tt_core::objective::Objective;
use tt_core::profile::{Observation, ProfileMatrix, ProfileMatrixBuilder};
use tt_core::rulegen::RoutingRuleGenerator;
use tt_serve::frontend::TieredFrontend;

/// The tolerance tiers the demo deployment advertises.
pub const DEMO_TIERS: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

/// Build the demo profile matrix: `payloads` requests profiled against
/// versions `fast`, `balanced`, and `accurate`.
///
/// # Panics
///
/// Panics if `payloads == 0`.
pub fn demo_matrix(payloads: usize, seed: u64) -> ProfileMatrix {
    assert!(payloads > 0, "demo needs at least one payload");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = ProfileMatrixBuilder::new(vec![
        "fast".to_string(),
        "balanced".to_string(),
        "accurate".to_string(),
    ]);
    for _ in 0..payloads {
        // Request difficulty drives who gets it right: easy requests
        // are right everywhere, the hardest defeat even the baseline.
        let difficulty: f64 = rng.gen();
        let row = [
            // (error threshold, latency range µs, base confidence)
            (0.70, 2_000..4_000u64, 0.92),
            (0.85, 8_000..12_000u64, 0.90),
            (0.96, 24_000..36_000u64, 0.88),
        ]
        .into_iter()
        .map(|(threshold, latency_range, confident)| {
            let wrong = difficulty > threshold;
            Observation {
                quality_err: if wrong { 1.0 } else { 0.0 },
                latency_us: rng.gen_range(latency_range),
                cost: 0.0,
                confidence: if wrong {
                    rng.gen_range(0.05..0.45)
                } else {
                    confident + rng.gen_range(0.0..0.08)
                },
            }
        })
        .collect();
        builder.push_request(row);
    }
    builder.build().expect("demo observations are valid")
}

/// Generate routing rules for both objectives over [`DEMO_TIERS`] and
/// deploy them as a frontend.
pub fn demo_frontend(matrix: &ProfileMatrix, seed: u64) -> TieredFrontend {
    let gen = RoutingRuleGenerator::with_defaults(matrix, 0.95, seed)
        .expect("demo matrix supports rule generation");
    TieredFrontend::new(vec![
        gen.generate(&DEMO_TIERS, Objective::ResponseTime)
            .expect("response-time rules generate"),
        gen.generate(&DEMO_TIERS, Objective::Cost)
            .expect("cost rules generate"),
    ])
}

/// The full demo service: matrix, frontend, and executor in one call.
pub fn demo_service(payloads: usize, seed: u64, config: ServiceConfig) -> ComputeService {
    let matrix = Arc::new(demo_matrix(payloads, seed));
    let frontend = demo_frontend(&matrix, seed);
    ComputeService::new(matrix, frontend, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_matrix_is_deterministic_per_seed() {
        let a = demo_matrix(50, 7);
        let b = demo_matrix(50, 7);
        for r in 0..50 {
            for v in 0..3 {
                assert_eq!(a.get(r, v), b.get(r, v));
            }
        }
        let c = demo_matrix(50, 8);
        let same = (0..50).all(|r| a.get(r, 0) == c.get(r, 0));
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn demo_frontend_tiers_loosen_toward_cheaper_policies() {
        let matrix = demo_matrix(400, 3);
        let frontend = demo_frontend(&matrix, 3);
        assert_eq!(frontend.rules().count(), 2);
        // The demo service must actually tier: at least one objective
        // serves its loosest tolerance with something other than the
        // strict baseline policy.
        let strict = tt_core::request::Tolerance::ZERO;
        let loose = tt_core::request::Tolerance::new(0.10).unwrap();
        let differs = [Objective::ResponseTime, Objective::Cost].iter().any(|&o| {
            let s = tt_core::request::ServiceRequest::new(0, strict, o);
            let l = tt_core::request::ServiceRequest::new(0, loose, o);
            frontend.route(&s) != frontend.route(&l)
        });
        assert!(differs, "demo tiers collapsed to one policy");
    }
}
