//! Shared perfjson builders for the ops documents.
//!
//! `/stats` and `/metrics` used to assemble their common scaffolding
//! (service identity, uptime, histogram summaries) independently;
//! this module is the single builder both route through so the two
//! documents cannot drift. It also renders the flight-recorder
//! surfaces added with the windowed telemetry store: the
//! `/metrics/windows` document (the capacity planner's input
//! contract) and the `/events` control-plane log.

use tt_bench::perfjson::{Json, JsonObject};
use tt_obs::{Event, Histogram, SealedWindow, WindowAccum, WindowStore};

/// The shared document root every ops endpoint starts from: the
/// service identity plus uptime. `/stats`, `/metrics`,
/// `/metrics/windows`, and `/events` all build on this, so the
/// identity keys cannot drift between documents.
pub fn document_root(uptime_ms: u64) -> JsonObject {
    JsonObject::new()
        .with_str("service", "toltiers")
        .with_int("uptime_ms", uptime_ms as i64)
}

/// Render one histogram's integer summary. Quantiles are nearest-rank
/// over bucket counts — integers, not interpolations.
pub fn histogram_object(hist: &Histogram) -> JsonObject {
    let mut obj = JsonObject::new()
        .with_int("count", hist.count() as i64)
        .with_int("sum", hist.sum() as i64);
    for (key, value) in [
        ("min", hist.min()),
        ("max", hist.max()),
        ("p50", hist.quantile(0.5)),
        ("p99", hist.quantile(0.99)),
        ("p999", hist.quantile(0.999)),
    ] {
        if let Some(v) = value {
            obj = obj.with_int(key, v as i64);
        }
    }
    obj
}

/// Render one window accumulator: per-tier counts in sorted-key order
/// plus per-version service-time histogram summaries. Everything is
/// integer-accumulated, so a fixed request multiset renders
/// byte-identically at any thread or node count.
pub fn accum_object(accum: &WindowAccum) -> JsonObject {
    let mut tiers = JsonObject::new();
    for (key, tier) in &accum.tiers {
        tiers = tiers.with(
            key,
            Json::Object(
                JsonObject::new()
                    .with_int("arrivals", tier.arrivals as i64)
                    .with_int("admitted", tier.admitted as i64)
                    .with_int("rejected", tier.rejected as i64)
                    .with_int("shed", tier.shed as i64)
                    .with_int("browned_out", tier.browned_out as i64)
                    .with_int("cache_hits", tier.cache_hits as i64)
                    .with_int("cache_misses", tier.cache_misses as i64),
            ),
        );
    }
    let mut versions = JsonObject::new();
    for (version, hist) in &accum.versions {
        versions = versions.with(
            &format!("v{version}"),
            Json::Object(histogram_object(hist).with_int("sum_us", hist.sum() as i64)),
        );
    }
    JsonObject::new()
        .with("tiers", Json::Object(tiers))
        .with("service_time_us", Json::Object(versions))
}

fn sealed_object(window: &SealedWindow) -> JsonObject {
    JsonObject::new()
        .with_int("index", window.index as i64)
        .with_int("start_us", window.start_us as i64)
        .with_int("end_us", window.end_us as i64)
        .with("accum", Json::Object(accum_object(&window.accum)))
}

/// The `GET /metrics/windows?n=K` document: the most recent `limit`
/// sealed windows (oldest first), ring accounting, and the cumulative
/// fold — the deterministic planner contract. Window *boundaries*
/// depend on heartbeat timing; `"cumulative"` does not, and is
/// bit-identical across thread counts and node partitions for a fixed
/// request multiset.
pub fn windows_document(store: &WindowStore, limit: usize, uptime_ms: u64) -> JsonObject {
    let sealed = store.sealed(limit);
    let windows: Vec<Json> = sealed
        .iter()
        .map(|w| Json::Object(sealed_object(w)))
        .collect();
    document_root(uptime_ms)
        .with_int("window_ms", (store.window_us() / 1_000) as i64)
        .with_int("sealed_total", store.sealed_count() as i64)
        .with_int("dropped_windows", store.dropped_windows() as i64)
        .with("windows", Json::Array(windows))
        .with(
            "cumulative",
            Json::Object(accum_object(&store.cumulative())),
        )
}

/// Render a pre-merged fleet view of per-node cumulative accumulators:
/// same shape as a node's `"cumulative"`, plus the per-node fold
/// provenance. The merge is commutative/associative, so the fleet
/// document is independent of node order.
pub fn fleet_windows_document(nodes: &[(usize, WindowAccum)], uptime_ms: u64) -> JsonObject {
    let mut merged = WindowAccum::default();
    let mut node_ids: Vec<i64> = Vec::with_capacity(nodes.len());
    for (id, accum) in nodes {
        merged.merge(accum);
        node_ids.push(*id as i64);
    }
    node_ids.sort_unstable();
    document_root(uptime_ms)
        .with(
            "nodes",
            Json::Array(node_ids.into_iter().map(Json::Int).collect()),
        )
        .with("cumulative", Json::Object(accum_object(&merged)))
}

/// The `GET /planner` document body: planner forecast state, resize
/// and regen counters, the tuner's posture, and the human-readable
/// decision log. Everything here is integer state from the pure
/// automatons, so a fixed fold sequence renders byte-identically.
pub fn capacity_object(status: &crate::service::CapacityStatus) -> JsonObject {
    let mut mix = JsonObject::new();
    for (tier, share) in &status.planner.regen_mix {
        mix = mix.with_int(tier, *share as i64);
    }
    let log: Vec<Json> = status.log.iter().map(|l| Json::Str(l.clone())).collect();
    JsonObject::new()
        .with(
            "planner",
            Json::Object(
                JsonObject::new()
                    .with_int("rounds", status.planner.rounds as i64)
                    .with_int("workers", status.planner.workers as i64)
                    .with_int("busy_ewma_us", status.planner.busy_ewma_us as i64)
                    .with_int("resizes", status.planner.resizes as i64)
                    .with_int("regens", status.planner.regens as i64)
                    .with("regen_mix_permille", Json::Object(mix)),
            ),
        )
        .with(
            "tuner",
            Json::Object(
                JsonObject::new()
                    .with_int("windows", status.windows as i64)
                    .with("surging", Json::Bool(status.surging))
                    .with_int("nudges", status.nudges as i64)
                    .with_int("batch_slack_permille", status.batch_slack_permille as i64),
            ),
        )
        .with_int("pool_workers", status.pool_workers as i64)
        .with_int("mix_regens", status.mix_regens as i64)
        .with("log", Json::Array(log))
}

fn event_object(event: &Event) -> JsonObject {
    JsonObject::new()
        .with_int("seq", event.seq as i64)
        .with_int("at_us", event.at_us as i64)
        .with_str("kind", event.kind)
        .with_str("detail", &event.detail)
}

/// The `GET /events?since=N` document: every retained event past the
/// cursor, oldest first, plus the cursor to resume from.
pub fn events_document(events: &[Event], last_seq: u64, dropped: u64) -> JsonObject {
    let items: Vec<Json> = events
        .iter()
        .map(|e| Json::Object(event_object(e)))
        .collect();
    JsonObject::new()
        .with_int("count", items.len() as i64)
        .with_int("last_seq", last_seq as i64)
        .with_int("dropped", dropped as i64)
        .with("events", Json::Array(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_obs::{AdmissionOutcome, EventLog};

    #[test]
    fn windows_document_renders_ring_and_cumulative() {
        let store = WindowStore::new(1_000, 8);
        store.record_arrival("cost/0.050");
        store.record_admission("cost/0.050", AdmissionOutcome::Admitted);
        store.record_service(2, 9_000);
        store.tick(2_000);
        store.record_cache("cost/0.050", true);
        let doc = windows_document(&store, 8, 1_234).render();
        assert!(doc.contains("\"service\": \"toltiers\""));
        assert!(doc.contains("\"window_ms\": 1"));
        assert!(doc.contains("\"sealed_total\": 1"));
        assert!(doc.contains("\"dropped_windows\": 0"));
        assert!(doc.contains("\"cost/0.050\""));
        assert!(doc.contains("\"v2\""));
        // The cache hit landed after the seal: cumulative sees it, the
        // sealed window does not.
        let cumulative_at = doc.find("\"cumulative\"").unwrap();
        assert!(doc[cumulative_at..].contains("\"cache_hits\": 1"));
        assert!(!doc[..cumulative_at].contains("\"cache_hits\": 1"));
    }

    #[test]
    fn fleet_document_merges_node_folds_order_independently() {
        let mk = |tier: &str, n: u64| {
            let s = WindowStore::new(1_000, 4);
            for _ in 0..n {
                s.record_arrival(tier);
            }
            s.record_service(1, 700);
            s.cumulative()
        };
        let a = mk("cost/0.010", 3);
        let b = mk("cost/0.050", 5);
        let ab = fleet_windows_document(&[(0, a.clone()), (1, b.clone())], 7).render();
        let ba = fleet_windows_document(&[(1, b), (0, a)], 7).render();
        assert_eq!(ab, ba);
        let nodes_at = ab.find("\"nodes\"").expect("nodes array");
        let cumulative_at = ab.find("\"cumulative\"").expect("cumulative fold");
        assert!(ab[nodes_at..cumulative_at].contains('0'));
        assert!(ab[nodes_at..cumulative_at].contains('1'));
        assert!(ab.contains("\"arrivals\": 3"));
        assert!(ab.contains("\"arrivals\": 5"));
    }

    #[test]
    fn events_document_carries_the_cursor() {
        let log = EventLog::new(8);
        log.record(5, "epoch_publish", "epoch 2");
        log.record(9, "node_fence", "node-1 stale epoch 1 < 2");
        let doc = events_document(&log.since(1), log.last_seq(), log.dropped()).render();
        assert!(doc.contains("\"count\": 1"));
        assert!(doc.contains("\"last_seq\": 2"));
        assert!(doc.contains("\"kind\": \"node_fence\""));
        assert!(!doc.contains("epoch_publish"));
    }
}
